"""E17 — multi-session server soak (the ``ServerLoop`` at fleet scale).

The §7 runapp argument scaled one machine to many applications; the
server loop scales one process to many *users*.  This soak builds a
§9-weighted fleet of simulated sessions (``sim.loadmodel.fleet_profile``
draws each user an application, window geometry and session length),
lowers each user's deterministic edit stream
(``workloads.sessions.generate_session``) to keystrokes, and feeds the
whole fleet through one asyncio ``ServerLoop`` with bounded per-session
queues — producers retry on backpressure, the scheduler slices fairly.

Reported from the obs registry and per-session stats: p95 frame (slice)
latency across the fleet, the fairness spread (worst session p95 over
the fleet median), throughput, and backpressure totals.  Outputs
``BENCH_sessions.json``; CI uploads it and gates ``*_ns`` fields
against the committed baseline.

``ANDREW_SOAK_SESSIONS`` sets the fleet size (default 1000; the
acceptance range is 1k–10k).
"""

import asyncio
import json
import os
import time

from conftest import report
from repro.components.text.textdata import TextData
from repro.components.text.textview import TextView
from repro.server import ServerLoop
from repro.sim.loadmodel import compare, fleet_profile
from repro.wm import AsciiWindowSystem
from repro.workloads.sessions import actions_to_keys, generate_session

SESSIONS = int(os.environ.get("ANDREW_SOAK_SESSIONS", "1000"))
FLEET_SEED = 2026
QUEUE_LIMIT = 64
SLICE_EVENTS = 8


def build_fleet(loop, count):
    """One session per fleet-profile entry, each a focused editor."""
    ws = AsciiWindowSystem()
    fleet = []
    for profile in fleet_profile(count, seed=FLEET_SEED):
        session = loop.add_session(
            window_system=ws,
            width=profile["width"], height=profile["height"],
            queue_limit=QUEUE_LIMIT,
        )
        view = TextView(TextData(f"[{profile['app']}]\n"))
        session.im.set_child(view)
        session.im.process_events()
        keys = actions_to_keys(
            generate_session(profile["actions"], profile["session_seed"])
        )
        fleet.append((session, view, profile, keys))
    return fleet


async def soak(loop, fleet):
    """Feed every session its keystream from its own asyncio task."""

    async def feed(session, keys):
        for key in keys:
            while not session.submit_key(key):
                await asyncio.sleep(0)  # backpressure: retry next cycle

    feeders = [asyncio.ensure_future(feed(session, keys))
               for session, _view, _profile, keys in fleet]
    handled = await loop.run(idle_cycles=4)
    await asyncio.gather(*feeders)
    handled += loop.run_until_idle()
    return handled


def test_bench_session_soak(metrics):
    loop = ServerLoop(slice_events=SLICE_EVENTS)
    fleet = build_fleet(loop, SESSIONS)
    total_keys = sum(len(keys) for _s, _v, _p, keys in fleet)

    start = time.perf_counter_ns()
    handled = asyncio.run(soak(loop, fleet))
    elapsed_ns = time.perf_counter_ns() - start

    stats = loop.fleet_stats()
    registry_snapshot = metrics.snapshot()

    # Conservation: every keystroke of every stream landed exactly once
    # (refusals were retried, never lost) and nothing is still queued.
    assert handled == total_keys, (handled, total_keys)
    assert stats["events_in"] == stats["events_processed"] == total_keys
    assert stats["max_queue_depth"] == 0
    assert stats["errors"] == 0
    # Backpressure engaged somewhere in a fleet this size (streams are
    # longer than the queue bound), and every refusal was counted.
    assert stats["events_dropped"] > 0
    # Fairness: no session's p95 slice latency may run away from the
    # fleet median (loose bound — shared-runner clocks are noisy).
    assert 1.0 <= stats["frame_p95_spread"] < 20.0, stats

    per_session = [s.stats for s, _v, _p, _k in fleet]
    p95s = sorted(st.frame_ns.percentile(0.95) for st in per_session)
    app_mix = {}
    for _s, _v, profile, _k in fleet:
        app_mix[profile["app"]] = app_mix.get(profile["app"], 0) + 1

    # §7 context: the same population mix through the loadmodel worlds
    # (a small sample — the soak itself is the headline).
    sample = [p["app"] for _s, _v, p, _k in fleet[:24]]
    static_world, runapp_world = compare(sample, memory_kb=512, steps=200)

    summary = {
        "sessions": SESSIONS,
        "slice_events": SLICE_EVENTS,
        "queue_limit": QUEUE_LIMIT,
        "total_keys": total_keys,
        "cycles": stats["cycles"],
        "events_dropped_then_retried": stats["events_dropped"],
        "throughput_events_per_s": round(
            total_keys / (elapsed_ns / 1e9), 1
        ),
        "session_frame_p50_ns": p95s and sorted(
            st.frame_ns.percentile(0.50) for st in per_session
        )[len(per_session) // 2] or 0,
        "session_frame_p95_ns": stats["frame_p95_ns_median"],
        "session_frame_p95_worst_ns": stats["frame_p95_ns_worst"],
        "fairness_spread": stats["frame_p95_spread"],
        "app_mix": app_mix,
        "runapp_context": {
            "sample_apps": len(sample),
            "static_fetch_kb": static_world["fetch_kb"],
            "runapp_fetch_kb": runapp_world["fetch_kb"],
            "static_faults": static_world["faults"],
            "runapp_faults": runapp_world["faults"],
        },
    }
    with open("BENCH_sessions.json", "w") as fh:
        json.dump({"summary": summary, "registry": registry_snapshot},
                  fh, indent=2, default=str)
    report("E17 multi-session server soak", [
        f"{SESSIONS} sessions ({', '.join(f'{k}={v}' for k, v in sorted(app_mix.items()))})",
        f"{total_keys} keystrokes in {stats['cycles']} cycles "
        f"({summary['throughput_events_per_s']:.0f} ev/s)",
        f"frame p95: median={stats['frame_p95_ns_median']}ns "
        f"worst={stats['frame_p95_ns_worst']}ns "
        f"spread={stats['frame_p95_spread']}x",
        f"backpressure refusals (retried): {stats['events_dropped']}",
        f"runapp context (n={len(sample)}): fetch "
        f"{static_world['fetch_kb']:.0f}kb static vs "
        f"{runapp_world['fetch_kb']:.0f}kb shared",
        "snapshot written to BENCH_sessions.json",
    ])
    loop.close()


def test_bench_server_cycle(benchmark):
    """pytest-benchmark timing of one fair pass over a ready fleet."""
    loop = ServerLoop(slice_events=SLICE_EVENTS)
    fleet = build_fleet(loop, 64)

    def refill_and_cycle():
        for session, _v, _p, _k in fleet:
            session.submit_key("x")
        return loop.run_cycle()

    handled = benchmark(refill_and_cycle)
    assert handled == len(fleet)
    loop.close()
