"""E8 — Figure 3: the messages reading window.

"The panel on the left gives a list of message folders ... It currently
contains a list of all the messages folders available on campus [1414].
The panel at the top [right] contains the list of messages in the
selected folder.  The message being displayed contains a drawing within
the text of the message."

Builds a campus-scale folder store (1414 folders, like the snapshot's
title bar), populates ``andrew.messages`` with 19 messages of which one
embeds a drawing, and regenerates the three-pane window.
"""

import pytest

from conftest import report
from repro.apps import FolderStore, Message, MessagesApp
from repro.components import TextData
from repro.workloads import build_fig3_message_body

FOLDER_COUNT = 1414


def build_campus_store():
    store = FolderStore()
    # The snapshot's folder names, then filler up to the campus count.
    seeds = [
        "andrew.messages.demo", "andrew.bugs", "andrew.gripes",
        "andrew.gnu-emacs", "andrew.helpsys", "andrew.kernel",
        "andrew.unix", "mail.dow-jones", "mail.networks",
        "andrew.newbboards", "andrew.opinion", "andrew.pcserver",
        "andrew.picture.animals", "andrew.preview.cartoons",
    ]
    for name in seeds:
        store.folder(name)
    for index in range(FOLDER_COUNT - len(seeds) - 1):
        store.folder(f"campus.bboard.{index:04d}")
    folder = "andrew.messages"
    for number in range(18):
        store.deliver(folder, Message(
            "somebody", "bboard", f"posting {number}",
            TextData(f"body of posting {number}\n"), "23-Oct-87",
        ))
    store.deliver(folder, Message(
        "Nathaniel Borenstein", "bboard", "The big picture",
        build_fig3_message_body(), "23-Oct-87",
    ))
    return store


def test_bench_build_window(benchmark, ascii_ws):
    store = build_campus_store()
    app = benchmark(lambda: MessagesApp(store, window_system=ascii_ws))
    assert store.folder_count() == FOLDER_COUNT
    app.open_folder("andrew.messages")
    app.open_message(18)
    snapshot = app.snapshot()
    assert "The big picture" in snapshot
    assert "Nathaniel Borenstein" in snapshot
    report("E8 Figure-3 snapshot (three panes, drawing in body)",
           snapshot.splitlines())
    report("E8 scale", [
        f"All {store.folder_count()} Folders (the snapshot's title row)",
        f"folder holds {len(store.folder('andrew.messages').messages)} "
        "messages, 1 with an embedded drawing",
    ])


def test_bench_open_folder(benchmark, ascii_ws):
    store = build_campus_store()
    app = MessagesApp(store, window_system=ascii_ws)
    benchmark(lambda: app.open_folder("andrew.messages"))
    assert len(app.caption_list.items) == 19


def test_bench_open_drawing_message(benchmark, ascii_ws):
    """Opening the multi-media message parses its body datastream and
    realizes the embedded drawing view."""
    store = build_campus_store()
    app = MessagesApp(store, window_system=ascii_ws)
    app.open_folder("andrew.messages")
    benchmark(lambda: app.open_message(18))
    body = app.body_view.data
    assert body.embeds()[0].data.type_tag == "drawing"


def test_bench_folder_list_scroll(benchmark, ascii_ws):
    """Scrolling a 1414-entry list stays cheap (rows drawn, not items)."""
    store = build_campus_store()
    app = MessagesApp(store, window_system=ascii_ws)
    positions = iter(range(0, FOLDER_COUNT, 97))
    state = {"pos": 0}

    def scroll():
        state["pos"] = (state["pos"] + 97) % FOLDER_COUNT
        app.folder_list.set_scroll_pos(state["pos"])
        app.im.flush_updates()

    benchmark(scroll)
