"""E13 — §3: parental authority vs the geometric baseline.

Routes the same event set through the toolkit's parental dispatch and
through :class:`~repro.baselines.geometric_router.GeometricRouter` (the
"global, physical model" of the Andrew Base Editor prototype) and
scores correctness on the paper's two failure cases, then compares
dispatch cost: the thesis is that parental routing buys correctness at
comparable (per-event) cost.
"""

import pytest

from conftest import report
from repro.baselines import GeometricRouter
from repro.components import Frame, GRAB_SLOP, TextData, TextView
from repro.components.drawing import DrawView, DrawingData, LineShape
from repro.core import InteractionManager
from repro.graphics import Point, Rect
from repro.wm import AsciiWindowSystem
from repro.wm.events import MouseAction, MouseEvent


def build_drawing_case():
    ws = AsciiWindowSystem()
    im = InteractionManager(ws, width=50, height=14)
    drawing = DrawingData(50, 14)
    drawing.add_text(Rect(5, 2, 30, 4), TextData("text under the line"))
    line = drawing.add_shape(LineShape(0, 4, 45, 4))
    view = DrawView(drawing)
    im.set_child(view)
    im.process_events()
    return im, view, line


def build_frame_case():
    ws = AsciiWindowSystem()
    im = InteractionManager(ws, width=40, height=12)
    body = TextView(TextData("frame body\n" * 8))
    frame = Frame(body)
    im.set_child(frame)
    im.process_events()
    return im, frame, body


CASES = [
    # (label, builder, probe point fn, expected handler fn)
    ("line over text",
     build_drawing_case,
     lambda root, extra: Point(10, 4),
     lambda root, extra: root),                       # DrawView claims line
    ("text beside line",
     build_drawing_case,
     lambda root, extra: Point(10, 2),
     lambda root, extra: root.children[0]),           # the TextView
    ("divider grab zone",
     build_frame_case,
     lambda root, extra: Point(5, root.divider_row - GRAB_SLOP),
     lambda root, extra: root),                       # Frame claims it
    ("plain body click",
     build_frame_case,
     lambda root, extra: Point(5, 1),
     lambda root, extra: root.body),                  # the TextView
]


def test_bench_correctness_scorecard(benchmark):
    def score():
        rows = []
        parental_correct = geometric_correct = 0
        for label, builder, probe_fn, expected_fn in CASES:
            im, root, extra = builder()
            probe = probe_fn(root, extra)
            expected = expected_fn(root, extra)

            handled = root.dispatch_mouse(
                MouseEvent(MouseAction.DOWN, probe)
            )
            root.dispatch_mouse(MouseEvent(MouseAction.UP, probe))
            parental_ok = handled is expected
            parental_correct += parental_ok

            im2, root2, extra2 = builder()
            probe2 = probe_fn(root2, extra2)
            expected2 = expected_fn(root2, extra2)
            router = GeometricRouter(root2)
            target = router.target_at(probe2)
            # Geometric credit: the rectangle target is the right view.
            geometric_ok = target is expected2
            geometric_correct += geometric_ok
            rows.append((label, parental_ok, geometric_ok))
        return rows, parental_correct, geometric_correct

    rows, parental, geometric = benchmark(score)
    lines = [f"{'case':22s} {'parental':>9s} {'geometric':>10s}"]
    for label, p_ok, g_ok in rows:
        lines.append(f"{label:22s} {str(bool(p_ok)):>9s} "
                     f"{str(bool(g_ok)):>10s}")
    lines.append(
        f"score: parental {parental}/{len(rows)}, "
        f"geometric {geometric}/{len(rows)} — geometry fails exactly the "
        "two §3 cases"
    )
    report("E13 routing correctness", lines)
    assert parental == len(rows)
    assert geometric == len(rows) - 2


def test_bench_parental_dispatch_cost(benchmark):
    im, view, line = build_drawing_case()
    event = MouseEvent(MouseAction.MOVE, Point(10, 2))
    benchmark(lambda: view.dispatch_mouse(event))


def test_bench_geometric_dispatch_cost(benchmark):
    im, view, line = build_drawing_case()
    router = GeometricRouter(view)
    benchmark(lambda: router.target_at(Point(10, 2)))


def test_bench_cost_comparison(benchmark):
    """Head-to-head over a scripted event mix on the frame case."""
    im, frame, body = build_frame_case()
    router = GeometricRouter(frame)
    points = [Point(x, y) for x in range(2, 38, 7) for y in range(0, 11, 2)]

    def both():
        for point in points:
            frame.dispatch_mouse(MouseEvent(MouseAction.MOVE, point))
            router.target_at(point)

    benchmark(both)
    report("E13 cost", [
        "parental dispatch is one routing decision per tree level;",
        "the geometric router flattens the whole tree per event —",
        "correctness was never bought with dispatch cost",
    ])
