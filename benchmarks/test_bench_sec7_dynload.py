"""E5 — §§1, 7: dynamic loading of a never-linked component.

The music-department scenario: EZ opens a document embedding a ``music``
component it was never linked with.  Measures the one-time cold load
(the paper's "slight delay to load the code") against warm resolutions
and against a statically present component, and verifies the editor
needed no rebuild — the plugin file on the class path is the whole
story.
"""

import time

import pytest

from conftest import PLUGIN_DIR, report
from repro.class_system import ClassLoader, is_registered, unregister
from repro.components import TableData
from repro.core import read_document, write_document


MUSIC_DOCUMENT = (
    "\\begindata{text, 1}\n"
    "A score from the music department:\\\n"
    "\\begindata{music, 2}\n"
    "@note C 4 1\n"
    "@note E 4 1\n"
    "@note G 4 2\n"
    "\\enddata{music, 2}\n"
    "\\view{musicview, 2}\n"
    "\n"
    "\\enddata{text, 1}\n"
)


def test_bench_cold_vs_warm_load(benchmark, metrics):
    loader = ClassLoader(path=[PLUGIN_DIR])

    # One measured cold load, by hand (benchmark() would re-run it warm).
    unregister("music")
    unregister("musicview")
    loader.forget("music")
    start = time.perf_counter()
    loader.load("music")
    cold_seconds = time.perf_counter() - start

    warm = benchmark(lambda: loader.load("music"))
    assert warm is not None

    # Resolution kinds and latency now come from the unified telemetry
    # registry (which absorbed the per-loader LoadRecord history).
    assert metrics.counter("loader.cold") == 1
    assert metrics.counter("loader.static") >= 1  # warm hits the registry
    load_timer = metrics.timer("loader.load_ns")
    warm_seconds = load_timer.percentile(0.50) / 1e9
    cold_record = loader.cold_loads()[-1]
    report("E5 the 'slight delay' (§1)", [
        f"cold load : {cold_seconds * 1e3:8.3f} ms  (read + compile + exec)",
        f"warm load : {warm_seconds * 1e6:8.1f} us  (registry hit, p50)",
        f"cold/warm : {cold_seconds / max(warm_seconds, 1e-9):8.0f}x",
        f"loads     : {metrics.counter('loader.loads')} total, "
        f"{metrics.counter('loader.cold')} cold",
        f"plugin    : {cold_record.path}",
    ])


def test_bench_open_document_with_unknown_component(benchmark,
                                                    plugins_on_path):
    """Reading a document pulls in the component code it needs."""
    unregister("music")
    unregister("musicview")
    plugins_on_path.forget("music")

    doc = read_document(MUSIC_DOCUMENT)  # triggers the cold load
    music = doc.embeds()[0].data
    assert music.notes == [("C", 4, 1), ("E", 4, 1), ("G", 4, 2)]
    assert is_registered("musicview")

    # Subsequent opens are at statically-loaded cost.
    warm_doc = benchmark(lambda: read_document(MUSIC_DOCUMENT))
    assert warm_doc.embeds()[0].data.notes == music.notes
    report("E5 document open", [
        "first open dynamically loaded 'music'; the editor was not",
        "recompiled, relinked, or otherwise modified (§1)",
    ])


def test_bench_static_component_baseline(benchmark):
    """Baseline: embedding a statically present component (table)."""
    doc = TableData(2, 2)
    doc.set_cell(0, 0, 1)
    stream = write_document(doc)
    restored = benchmark(lambda: read_document(stream))
    assert restored.value_at(0, 0) == 1.0


def test_bench_ez_insert_music(benchmark, plugins_on_path, ascii_ws):
    """The end-to-end editor path: Insert > Other... music."""
    from repro.apps import EZApp

    ez = EZApp(window_system=ascii_ws)

    def insert():
        music = ez.insert_component("music")
        assert music is not None
        # Remove it again so the benchmark loop doesn't grow the doc.
        ez.document.delete(ez.document.embeds()[-1].pos, 1)
        return music

    benchmark(insert)
    report("E5 EZ insert", [
        "Insert > Other... 'music' resolves through the class loader;",
        "all users of the text component acquire the ability (§1)",
    ])
