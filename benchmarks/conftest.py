"""Shared fixtures and reporting helpers for the benchmark harness.

Each benchmark file regenerates one of the paper's figures/claims (see
DESIGN.md's experiment index).  Benchmarks both *time* the relevant
operation (pytest-benchmark) and *print* the rows/series the paper
reports, so running ``pytest benchmarks/ --benchmark-only -s`` shows
the reproduced results next to the timings.
"""

import os
import sys

import pytest

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
PLUGIN_DIR = os.path.join(ROOT, "plugins")

os.environ.setdefault("ANDREW_WM", "ascii")


def report(title, lines):
    """Print a result block that survives pytest's capture (via -s) and
    is easy to grep in bench output."""
    print()
    print(f"== {title} ==")
    for line in lines:
        print(f"   {line}")


@pytest.fixture
def metrics():
    """Toolkit telemetry, on for this test and reset to empty.

    Benches read the process-wide registry (``repro.obs``) instead of
    per-object private counters, so every figure shares one measurement
    source.  Restores the previous switch state on teardown so timing
    benches still run on the no-op path.
    """
    from repro import obs

    was_on = obs.metrics_enabled()
    obs.configure(metrics=True)
    obs.registry.reset()
    yield obs.registry
    obs.configure(metrics=was_on)


@pytest.fixture
def ascii_ws():
    from repro.wm import AsciiWindowSystem

    return AsciiWindowSystem()


@pytest.fixture
def raster_ws():
    from repro.wm import RasterWindowSystem

    return RasterWindowSystem()


@pytest.fixture
def plugins_on_path():
    from repro.class_system import default_loader

    loader = default_loader()
    loader.append_path(PLUGIN_DIR)
    yield loader
    loader.remove_path(PLUGIN_DIR)
