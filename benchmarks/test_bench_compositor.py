"""E15 — the per-view backing-store compositor on a multi-pane window.

The 1988 window systems under the toolkit (X.11 in particular) did not
guarantee a backing store: every expose re-entered the application's
draw code.  This bench drives a three-pane window — a text editor next
to a table over a drawing, the shape of the paper's application
figures — through an editing session where every keystroke into the
text pane is followed by a full-window expose.  Without the
compositor, both clean panes re-execute their draw code on every
expose; with it, their portion of the damage is satisfied by one blit
each.

Outputs ``BENCH_compositor.json`` (blit-vs-redraw ratios, repaint p50,
telemetry snapshot) in the working directory; CI uploads it as an
artifact.
"""

import json
import time

from conftest import report
from repro.components.drawing.drawdata import DrawingData
from repro.components.drawing.drawview import DrawView
from repro.components.drawing.shapes import EllipseShape, RectShape
from repro.components.split import SplitView
from repro.components.table.tabledata import TableData
from repro.components.table.tableview import TableView
from repro.components.text.textdata import TextData
from repro.components.text.textview import TextView
from repro.core import InteractionManager, compositor
from repro.graphics import Rect
from repro.wm import AsciiWindowSystem

KEYSTROKES = 40

_WORK_COUNTERS = (
    "view.cache_hits",
    "view.cache_misses",
    "view.cache_evictions",
    "wm.blits",
    "im.repaint_area_saved",
    "im.repaint_area",
    "wm.ascii.requests",
)


def build_workspace():
    """Text | (table / drawing), the panes opted into backing stores."""
    ws = AsciiWindowSystem()
    im = InteractionManager(ws, width=78, height=22)
    text_view = TextView(TextData(
        "\n".join(f"paragraph {i:03d}: the quick brown fox" for i in range(40))
    ))
    table = TableData(8, 3)
    for row in range(8):
        for col in range(3):
            table.set_cell(row, col, row * 10 + col)
    table_view = TableView(table)
    drawing = DrawingData()
    drawing.add_shape(RectShape(Rect(1, 1, 12, 5)))
    drawing.add_shape(EllipseShape(Rect(3, 2, 8, 4)))
    draw_view = DrawView(drawing)
    split = SplitView(text_view,
                      SplitView(table_view, draw_view, vertical=False),
                      vertical=True)
    for pane in (text_view, table_view, draw_view):
        pane.set_backing_store(True)
    im.set_child(split)
    im.set_focus(text_view)
    im.process_events()
    return im, text_view, table_view, draw_view


def editing_session(im, registry, timer_name):
    """Keystrokes into the text pane, each followed by a full expose —
    the X-without-backing-store workload the compositor targets."""
    for _ in range(KEYSTROKES):
        im.window.inject_key("x")
        im.window.inject_expose()
        start = time.perf_counter_ns()
        im.process_events()
        registry.observe_ns(timer_name, time.perf_counter_ns() - start)


def run_arm(metrics, compositing, timer_name):
    was = compositor.enabled
    compositor.configure(compositing)
    try:
        im, text_view, table_view, draw_view = build_workspace()
        metrics.reset()
        draws_before = (table_view.draw_count, draw_view.draw_count)
        editing_session(im, metrics, timer_name)
        counters = {name: metrics.counter(name) for name in _WORK_COUNTERS}
        counters["clean_pane_redraws"] = (
            (table_view.draw_count - draws_before[0])
            + (draw_view.draw_count - draws_before[1])
        )
        timer = metrics.timer(timer_name)
        counters["repaint_p50_ns"] = timer.percentile(0.5) if timer else 0
        return counters
    finally:
        compositor.configure(was)


def test_bench_compositor_blit_vs_redraw(metrics):
    off = run_arm(metrics, compositing=False, timer_name="bench.live_ns")
    metrics.reset()
    on = run_arm(metrics, compositing=True, timer_name="bench.composited_ns")
    registry_snapshot = metrics.snapshot()

    # The headline claim: clean panes stop re-executing draw code.
    # Without the compositor every full expose redraws the table and
    # the drawing; with it they blit, so their draw counts barely move.
    redraws_off = off["clean_pane_redraws"]
    redraws_on = max(1, on["clean_pane_redraws"])
    redraw_ratio = redraws_off / redraws_on
    assert redraws_off >= 2 * KEYSTROKES, off
    assert redraw_ratio >= 5.0, (off, on)
    assert on["wm.blits"] > 0
    assert on["view.cache_hits"] > 0
    assert on["im.repaint_area_saved"] > 0
    # The off arm never touches a surface or records a blit.
    assert off["wm.blits"] == 0 and off["view.cache_hits"] == 0

    blit_ratio = on["wm.blits"] / max(1, on["view.cache_misses"])
    summary = {
        "keystrokes": KEYSTROKES,
        "panes": ["text (edited)", "table (clean)", "drawing (clean)"],
        "clean_pane_redraw_ratio_off_over_on": round(redraw_ratio, 1),
        "blits_per_rerender": round(blit_ratio, 1),
        "off": off,
        "on": on,
    }
    with open("BENCH_compositor.json", "w") as fh:
        json.dump({"summary": summary, "registry": registry_snapshot},
                  fh, indent=2, default=str)
    report("E15 compositor", [
        f"{KEYSTROKES} keystrokes into the text pane, each followed by "
        "a full-window expose",
        f"clean-pane redraws: off={redraws_off} "
        f"on={on['clean_pane_redraws']} ({redraw_ratio:.0f}x less)",
        f"blits={on['wm.blits']} cache_hits={on['view.cache_hits']} "
        f"cache_misses={on['view.cache_misses']}",
        f"damage area satisfied by blits: {on['im.repaint_area_saved']} "
        f"of {on['im.repaint_area']} cells",
        f"repaint p50: off={off['repaint_p50_ns']}ns "
        f"on={on['repaint_p50_ns']}ns",
        "snapshot written to BENCH_compositor.json",
    ])


def test_bench_composited_expose_timing(benchmark, metrics):
    """pytest-benchmark timing of one expose with warm backing stores."""
    was = compositor.enabled
    compositor.configure(True)
    try:
        im, _, _, _ = build_workspace()
        im.window.inject_expose()
        im.process_events()  # warm every cache
        metrics.reset()

        def one_expose():
            im.window.inject_expose()
            im.process_events()

        benchmark(one_expose)
        assert metrics.counter("view.cache_hits") > 0
    finally:
        compositor.configure(was)
