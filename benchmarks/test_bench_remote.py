"""E20 — remote display wire traffic (the ``repro.remote`` port).

The remote port's whole value proposition is that a frame costs a few
hundred bytes, not a full screen.  This bench drives the E16 editing
session — typing, scrolling, full exposes on the three-pane workspace
— through a :class:`~repro.remote.RemoteWindowSystem` twice, with
frame delta-encoding off and on, and reports bytes shipped per frame.
Delta-on elides unchanged ops, ships scroll copies verbatim plus a
cell-level repair diff, and skips flushes that changed nothing at all,
so both the per-frame and the whole-session byte counts must collapse.

Outputs ``BENCH_remote.json`` (byte counts per arm, encoder counters,
the reduction ratio) in the working directory; CI uploads it as an
artifact and compares it against the committed copy, with a hard
bytes/frame budget on the delta arm in ``check_regression.py``.
"""

import json
import time

from conftest import report
from repro.components.drawing.drawdata import DrawingData
from repro.components.drawing.drawview import DrawView
from repro.components.drawing.shapes import EllipseShape, RectShape
from repro.components.split import SplitView
from repro.components.table.tabledata import TableData
from repro.components.table.tableview import TableView
from repro.components.text.textdata import TextData
from repro.components.text.textview import TextView
from repro.core import InteractionManager
from repro.graphics import Rect
from repro.remote import CaptureSink, RemoteRenderer, RemoteWindowSystem

KEYSTROKES = 30
SCROLLS = 12
EXPOSES = 20


def build_workspace(ws):
    """The E16 three-pane workspace, on the caller's window system."""
    im = InteractionManager(ws, width=78, height=22)
    text_view = TextView(TextData(
        "\n".join(f"paragraph {i:03d}: the quick brown fox jumps over "
                  "the lazy dog" for i in range(60))
    ))
    table = TableData(8, 3)
    for row in range(8):
        for col in range(3):
            table.set_cell(row, col, row * 10 + col)
    table_view = TableView(table)
    drawing = DrawingData()
    drawing.add_shape(RectShape(Rect(1, 1, 12, 5)))
    drawing.add_shape(EllipseShape(Rect(3, 2, 8, 4)))
    draw_view = DrawView(drawing)
    split = SplitView(text_view,
                      SplitView(table_view, draw_view, vertical=False),
                      vertical=True)
    im.set_child(split)
    im.set_focus(text_view)
    im.process_events()
    return im, text_view


def session(im, text_view, registry, timer_name):
    """The E16 editing session: typing, scrolling and full exposes."""
    for i in range(KEYSTROKES):
        im.window.inject_key("x")
        if i % 3 == 2:
            im.window.inject_expose()
        start = time.perf_counter_ns()
        im.process_events()
        registry.observe_ns(timer_name, time.perf_counter_ns() - start)
    for i in range(SCROLLS):
        text_view.set_scroll_pos(i * 3)
        im.process_events()
    for _ in range(EXPOSES):
        im.window.inject_expose()
        im.process_events()


def run_arm(metrics, delta, timer_name):
    sink = CaptureSink()
    ws = RemoteWindowSystem("ascii", delta=delta, sink=sink)
    im, text_view = build_workspace(ws)
    metrics.reset()
    session(im, text_view, metrics, timer_name)
    im.window.flush()

    # The stream is only a valid measurement if it reproduces the
    # sender's screen: decode it and compare before counting bytes.
    renderer = RemoteRenderer()
    renderer.feed(sink.stream())
    window = ws.windows[0]
    assert renderer.surface.lines() == window.surface.lines(), (
        f"delta={delta}: decoded replica diverged from the sender"
    )
    assert renderer.resyncs == 0 and renderer.frames_skipped == 0

    encoder = window._encoder
    frames = len(sink.frames)
    counters = {
        "frames_sent_frames": frames,
        "keyframes_sent_frames": encoder.keyframes_sent,
        "total_bytes": sink.total_bytes,
        "per_frame_bytes": round(sink.total_bytes / max(1, frames), 1),
        "ops_elided": encoder.ops_elided,
        "cell_diff_cells": encoder.cell_diff_cells,
    }
    timer = metrics.timer(timer_name)
    counters["frame_p50_ns"] = timer.percentile(0.5) if timer else 0
    return counters


def test_bench_remote_bytes_per_frame(metrics):
    off = run_arm(metrics, delta=False, timer_name="bench.nodelta_ns")
    metrics.reset()
    on = run_arm(metrics, delta=True, timer_name="bench.delta_ns")
    registry_snapshot = metrics.snapshot()

    # The headline claim: delta-encoding cuts wire traffic >= 5x, both
    # per shipped frame and over the whole session (delta additionally
    # skips flushes that changed nothing, so session bytes fall even
    # further than frame size alone).
    frame_ratio = off["per_frame_bytes"] / max(1.0, on["per_frame_bytes"])
    session_ratio = off["total_bytes"] / max(1, on["total_bytes"])
    assert off["total_bytes"] > 50_000, off  # the workload ships real data
    assert frame_ratio >= 5.0, (off, on)
    assert session_ratio >= 5.0, (off, on)
    # The compression actually engaged, in both of its modes.
    assert on["ops_elided"] > 0, on
    assert on["cell_diff_cells"] > 0, on
    # Delta never ships *more* frames than the literal arm.
    assert on["frames_sent_frames"] <= off["frames_sent_frames"], (off, on)

    summary = {
        "workload": {
            "keystrokes": KEYSTROKES,
            "scrolls": SCROLLS,
            "full_exposes": EXPOSES,
        },
        "bytes_ratio_off_over_on": round(session_ratio, 1),
        "frame_bytes_ratio_off_over_on": round(frame_ratio, 1),
        "nodelta": off,
        "delta": on,
    }
    with open("BENCH_remote.json", "w") as fh:
        json.dump({"summary": summary, "registry": registry_snapshot},
                  fh, indent=2, default=str)
    report("E20 remote display delta-encoding", [
        f"{KEYSTROKES} keystrokes (expose every 3rd), {SCROLLS} scrolls, "
        f"{EXPOSES} full exposes on the three-pane workspace",
        f"session bytes: off={off['total_bytes']} on={on['total_bytes']} "
        f"({session_ratio:.1f}x fewer)",
        f"bytes/frame: off={off['per_frame_bytes']} "
        f"on={on['per_frame_bytes']} ({frame_ratio:.1f}x smaller)",
        f"frames: off={off['frames_sent_frames']} "
        f"on={on['frames_sent_frames']} "
        f"(keyframes {off['keyframes_sent_frames']}/"
        f"{on['keyframes_sent_frames']})",
        f"delta arm: ops_elided={on['ops_elided']} "
        f"cell_diff_cells={on['cell_diff_cells']}",
        "snapshot written to BENCH_remote.json",
    ])


def test_bench_remote_flush_timing(benchmark, metrics):
    """pytest-benchmark timing of one delta-encoded expose+ship."""
    sink = CaptureSink()
    ws = RemoteWindowSystem("ascii", delta=True, sink=sink)
    im, _ = build_workspace(ws)
    im.window.inject_expose()
    im.process_events()

    def one_expose():
        im.window.inject_expose()
        im.process_events()

    benchmark(one_expose)
    assert sink.frames
