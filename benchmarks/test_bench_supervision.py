"""E21 — session supervision under a seeded kill-storm soak.

Two arms over one process, mirroring the conformance kill-storm
(``tests/conformance/test_killstorm.py``) at bench scale:

* **kill arm** — a supervised text-editing fleet with the
  ``server.pump`` fault seam firing at rate while every session keeps
  receiving keystrokes.  Every crash escalates (contain_strikes=0)
  into a checkpoint-restore restart riding the timer wheel.
* **drop arm** — a remote-viewer fleet whose renderers are yanked and
  rejoin mid-stream through the seq-resume handshake.

The headline numbers are **deterministic counters**, not clock
samples: crashes == escalations == restarts (conservation), zero
sessions dead, zero characters lost, resumes == rejoin handshakes ==
replays + keyframes, and the exact bytes of checkpoint state written.
Timing fields (`*_ns`) are advisory context for the regression gate.

Outputs ``BENCH_supervision.json``; CI uploads it and compares the
deterministic fields against ``benchmarks/baselines/``.
"""

import collections
import json
import time

from conftest import report
from repro.components.text.textdata import TextData
from repro.components.text.textview import TextView
from repro.remote import RemoteRenderer, RendererSink
from repro.server import (
    DocumentBinding,
    ServerLoop,
    Session,
    Supervisor,
    SupervisorPolicy,
    add_remote_session,
    session_window,
)
from repro.testing import faultinject
from repro.wm import AsciiWindowSystem

FLEET = 8
KILL_CYCLES = 240
KILL_RATE = 0.05
KILL_SEED = 20260807
DROP_STEPS = 120


def _counters(registry):
    return registry.snapshot()["counters"]


def _text_binding():
    return DocumentBinding(
        "doc",
        get=lambda s: s.im.child.data,
        install=lambda s, obj: s.im.set_child(TextView(obj)),
    )


def build_supervised_fleet(loop, sup):
    import random
    rng = random.Random(KILL_SEED)
    entries, typed = {}, collections.defaultdict(collections.Counter)
    for index in range(FLEET):
        sid = f"k{index}"
        ws = AsciiWindowSystem()
        session = loop.add_session(session_id=sid, window_system=ws,
                                   width=40, height=10)
        session.im.set_child(TextView(TextData("")))
        session.im.process_events()

        def build(sid=sid, ws=ws):
            fresh = Session(sid, window_system=ws, width=40, height=10)
            fresh.im.set_child(TextView(TextData("")))
            return fresh

        entries[sid] = sup.supervise(session, build=build,
                                     documents=[_text_binding()])
    return entries, typed, rng


def run_kill_arm(metrics, checkpoint_dir):
    loop = ServerLoop()
    sup = Supervisor(loop, checkpoint_dir=checkpoint_dir,
                     policy=SupervisorPolicy(
                         contain_strikes=0, max_strikes=10 ** 6,
                         backoff_base=1, backoff_cap=4, jitter_span=1,
                         checkpoint_interval=8))
    entries, typed, rng = build_supervised_fleet(loop, sup)
    start = time.perf_counter_ns()
    faultinject.configure(KILL_SEED, KILL_RATE, seams=("server.pump",))
    try:
        for _ in range(KILL_CYCLES):
            for sid in rng.sample(sorted(entries), 2):
                live = loop._sessions.get(sid)
                if live is not None and not live.closed:
                    char = chr(rng.randrange(ord("a"), ord("z") + 1))
                    if live.submit_key(char):
                        typed[sid][char] += 1
            loop.run_cycle()
    finally:
        faultinject.configure(None)
    loop.run_until_idle(max_cycles=5000)
    soak_ns = time.perf_counter_ns() - start

    counters = _counters(metrics)
    crashes = counters.get("server.crashes", 0)
    assert crashes > 0
    assert counters.get("server.crash_escalations", 0) == crashes
    assert counters.get("server.restarts", 0) == crashes
    assert counters.get("server.restart_errors", 0) == 0
    assert counters.get("server.sessions_dead", 0) == 0
    chars_lost = 0
    for sid, entry in entries.items():
        assert entry.state == "running"
        final = collections.Counter(entry.session.im.child.data.text())
        chars_lost += sum((typed[sid] - final).values())
    assert chars_lost == 0

    # One clean checkpoint round for the byte + latency figures.
    checkpoint_start = time.perf_counter_ns()
    for sid in entries:
        sup.checkpoint(sid)
    checkpoint_ns = (time.perf_counter_ns() - checkpoint_start) // FLEET
    checkpoint_bytes = sum(
        (checkpoint_dir / f"{sid}.doc.ad").stat().st_size
        for sid in entries
    )
    summary = {
        "fleet": FLEET,
        "cycles": KILL_CYCLES,
        "kill_rate": KILL_RATE,
        "crashes": crashes,
        "escalations": counters.get("server.crash_escalations", 0),
        "restarts": counters.get("server.restarts", 0),
        "sessions_dead": 0,
        "chars_lost": chars_lost,
        "checkpoints": counters.get("server.checkpoints", 0),
        "checkpoint_state_bytes": checkpoint_bytes,
        "checkpoint_mean_ns": checkpoint_ns,
        "soak_ns": soak_ns,
    }
    loop.close()
    return summary


def run_drop_arm(metrics):
    import random
    rng = random.Random(KILL_SEED + 1)
    loop = ServerLoop()
    sessions, stayed, roaming, dropped = [], {}, {}, {}
    for index in range(FLEET):
        sid = f"d{index}"
        viewer = RemoteRenderer()
        session = add_remote_session(loop, session_id=sid,
                                     keyframe_interval=8, renderer=viewer,
                                     width=30, height=6)
        session.im.set_child(TextView(TextData("")))
        session.im.process_events()
        sessions.append(session)
        stayed[sid] = viewer
        roamer = RemoteRenderer()
        sink = RendererSink(roamer)
        session_window(session).attach_sink(sink)
        roaming[sid] = (roamer, sink)
    loop.run_until_idle()

    resumes = 0
    for step in range(DROP_STEPS):
        for session in rng.sample(sessions, 3):
            session.submit_key(chr(rng.randrange(ord("a"), ord("z") + 1)))
        if step % 9 == 4:
            sid = rng.choice([s.id for s in sessions if s.id not in dropped])
            roamer, sink = roaming[sid]
            session_window(loop.session(sid)).detach_sink(sink)
            dropped[sid] = roamer
        if step % 13 == 11 and dropped:
            sid = rng.choice(sorted(dropped))
            roamer = dropped.pop(sid)
            window = session_window(loop.session(sid))
            roaming[sid] = (roamer, window.resume_renderer(roamer))
            resumes += 1
        loop.run_cycle()
    for sid in sorted(dropped):
        roamer = dropped.pop(sid)
        window = session_window(loop.session(sid))
        roaming[sid] = (roamer, window.resume_renderer(roamer))
        resumes += 1
    loop.run_until_idle(max_cycles=2000)

    diverged = 0
    for session in sessions:
        roamer, _ = roaming[session.id]
        if roamer.surface.lines() != stayed[session.id].surface.lines():
            diverged += 1
    counters = _counters(metrics)
    assert diverged == 0
    assert counters.get("remote.resumes", 0) == resumes
    assert resumes == (counters.get("remote.resume_replays", 0)
                       + counters.get("remote.resume_keyframes", 0))
    summary = {
        "fleet": FLEET,
        "steps": DROP_STEPS,
        "resumes": resumes,
        "resume_replays": counters.get("remote.resume_replays", 0),
        "resume_keyframes": counters.get("remote.resume_keyframes", 0),
        "frames_replayed": counters.get("remote.resume_frames_replayed", 0),
        "viewers_diverged": diverged,
    }
    loop.close()
    return summary


def test_bench_supervision_soak(metrics, tmp_path):
    kill = run_kill_arm(metrics, tmp_path)
    metrics.reset()
    drop = run_drop_arm(metrics)
    registry_snapshot = metrics.snapshot()

    summary = {"kill": kill, "resume": drop}
    with open("BENCH_supervision.json", "w") as fh:
        json.dump({"summary": summary, "registry": registry_snapshot},
                  fh, indent=2, default=str)
    report("E21 supervision kill-storm soak", [
        f"kill arm: {kill['fleet']} sessions x {kill['cycles']} cycles "
        f"@ rate {kill['kill_rate']}",
        f"crashes={kill['crashes']} escalations={kill['escalations']} "
        f"restarts={kill['restarts']} dead={kill['sessions_dead']} "
        f"chars_lost={kill['chars_lost']}",
        f"checkpoints={kill['checkpoints']} "
        f"state={kill['checkpoint_state_bytes']}b "
        f"mean={kill['checkpoint_mean_ns']}ns",
        f"drop arm: resumes={drop['resumes']} "
        f"(replay={drop['resume_replays']} "
        f"keyframe={drop['resume_keyframes']}, "
        f"{drop['frames_replayed']} frames replayed) "
        f"diverged={drop['viewers_diverged']}",
        "snapshot written to BENCH_supervision.json",
    ])


def test_bench_checkpoint_cycle(benchmark, tmp_path):
    """pytest-benchmark timing of one full-fleet checkpoint round."""
    loop = ServerLoop()
    sup = Supervisor(loop, checkpoint_dir=tmp_path)
    entries, _typed, _rng = build_supervised_fleet(loop, sup)
    for session in list(loop.sessions):
        session.submit_text("the quick brown fox " * 10)
    loop.run_until_idle(max_cycles=2000)

    def checkpoint_fleet():
        total = 0
        for sid in entries:
            total += sup.checkpoint(sid)
        return total

    written = benchmark(checkpoint_fleet)
    assert written == FLEET
    loop.close()
