"""E6 — §8: window system independence.

"To port the toolkit to another window system, six classes must be
written, encompassing approximately 70 routines ... we are currently
able to run applications on two different window systems without any
recompilation."

Reports the measured porting surface of each backend next to the
paper's numbers, verifies the same application produces identical
*document-level* behaviour on both, and times a full-window redraw per
backend.
"""

import pytest

from conftest import report
from repro.apps import EZApp
from repro.core import write_document
from repro.wm import (
    AsciiWindowSystem,
    PORTING_CLASSES,
    RasterWindowSystem,
    get_window_system,
    porting_surface,
)
from repro.wm.ascii_ws import AsciiGraphic, AsciiOffscreen, AsciiWindow
from repro.wm.raster_ws import RasterGraphic, RasterOffscreen, RasterWindow
from repro.workloads import build_expense_letter


BACKENDS = {
    "ascii": (AsciiWindowSystem, AsciiWindow, AsciiGraphic, AsciiOffscreen),
    "raster": (RasterWindowSystem, RasterWindow, RasterGraphic,
               RasterOffscreen),
}


def test_bench_porting_surface(benchmark):
    surfaces = benchmark(lambda: {
        name: porting_surface(*classes) for name, classes in BACKENDS.items()
    })
    lines = [f"paper: six classes, ~70 routines "
             f"(~50 of them graphics transformations)"]
    for name, surface in surfaces.items():
        total = sum(len(v) for v in surface.values())
        per_class = ", ".join(
            f"{cls}:{len(surface[cls])}" for cls in PORTING_CLASSES
        )
        lines.append(f"{name:7s}: {len(surface)} classes, {total} routines "
                     f"({per_class})")
        assert set(surface) == set(PORTING_CLASSES)
        assert 40 <= total <= 110
    report("E6 porting surface", lines)


@pytest.mark.parametrize("backend", ["ascii", "raster"])
def test_bench_redraw(benchmark, backend, metrics):
    """Full-window redraw of the same document on each backend."""
    scale = 1 if backend == "ascii" else 8
    ez = EZApp(
        window_system=get_window_system(backend),
        document=build_expense_letter(),
        width=70 * scale, height=20 * scale,
    )
    ez.process()
    benchmark(ez.im.redraw)
    stats = ez.window_system.stats()
    # Both backends tally device requests into one registry namespace
    # (wm.ascii.* / wm.raster.*) — the unified RequestCounter.
    requests = metrics.counter(f"wm.{backend}.requests")
    assert requests > 0
    per_op = ", ".join(
        "{}={}".format(name.rsplit(".", 1)[1], value)
        for name, value in metrics.counters_matching(f"wm.{backend}.").items()
        if not name.endswith(".requests")
    )
    report(f"E6 redraw on {backend}", [
        f"backend stats: {stats}",
        f"device requests: {requests} ({per_op})",
    ])


def test_bench_identical_behaviour(benchmark):
    """Same input stream on both backends -> identical documents.

    This is the no-recompilation claim in executable form: nothing but
    the ANDREW_WM-style selection differs between the two runs.
    """

    def run_on(backend):
        ez = EZApp(window_system=get_window_system(backend),
                   width=60, height=18)
        ez.im.window.inject_keys("portable document\n")
        ez.process()
        table = ez.insert_component("table")
        table.set_cell(0, 0, "=6*7")
        ez.im.window.inject_click(3, 0)
        ez.process()
        return write_document(ez.document)

    streams = benchmark(lambda: {b: run_on(b) for b in BACKENDS})
    assert streams["ascii"] == streams["raster"]
    report("E6 behaviour", [
        "identical input streams on ascii and raster backends produced",
        "byte-identical documents; applications ran unmodified (§8)",
    ])


def test_bench_third_backend_is_a_plugin(benchmark, tmp_path):
    """Adding a window system needs no toolkit changes: it is a plugin
    resolved through the dynamic loader, like any component."""
    (tmp_path / "inkjetws.py").write_text(
        "from repro.wm.ascii_ws import AsciiWindowSystem\n"
        "class InkjetWS(AsciiWindowSystem):\n"
        "    atk_name = 'inkjetws'\n"
        "    name = 'inkjet'\n"
    )
    from repro.class_system import default_loader, unregister

    loader = default_loader()
    loader.append_path(tmp_path)
    try:
        ws = get_window_system("inkjet")
        assert ws.name == "inkjet"
        window = benchmark(lambda: ws.create_window("t", 20, 5))
        assert window.snapshot_lines()
        report("E6 third backend", [
            "a new window system loaded from a plugin file and ran a",
            "toolkit window with zero changes to repro itself",
        ])
    finally:
        loader.remove_path(tmp_path)
        unregister("inkjetws")
        from repro.wm.switch import _FACTORIES

        _FACTORIES.pop("inkjet", None)
