"""E2 — §5: the external representation.

Reproduces the section's example shape, then measures the three paths:
writing, full parsing, and the marker-only scan that locates every
object's extent *without parsing bodies* — which must be much cheaper
than parsing and linear in bytes.
"""

import pytest

from conftest import report
from repro.components.table import TableData
from repro.components.text import TextData
from repro.core import read_document, scan_extents, write_document


def build_document(paragraphs=40, embed_depth=3):
    """A text document with a chain of nested embedded texts + a table."""
    root = TextData(
        "\n".join(f"paragraph {i}: " + "words " * 10
                  for i in range(paragraphs)) + "\n"
    )
    node = root
    for level in range(embed_depth):
        child = TextData(f"nested level {level}\n" + "filler " * 20)
        node.append_object(child, "textview")
        node = child
    table = TableData(6, 4)
    for row in range(6):
        table.set_cell(row, 0, row * 1.5)
    table.set_cell(0, 3, "=SUM(A1:A6)")
    root.append_object(table, "spread")
    return root


def test_bench_write(benchmark):
    doc = build_document()
    stream = benchmark(lambda: write_document(doc))
    lines = stream.splitlines()
    assert all(len(l) <= 80 for l in lines)
    report("E2 write", [
        f"document -> {len(stream)} bytes, {len(lines)} lines",
        "all lines <= 80 columns, 7-bit ASCII (the §5 guidelines)",
    ])


def test_bench_read(benchmark):
    stream = write_document(build_document())
    doc = benchmark(lambda: read_document(stream))
    assert write_document(doc) == stream


def test_bench_scan_without_parsing(benchmark):
    stream = write_document(build_document())
    extents = benchmark(lambda: scan_extents(stream))
    assert len(extents) == 5  # root + 3 nested texts + table
    report("E2 scan vs parse", [
        f"{len(extents)} object extents located",
        "scanner touches markers only; no component code runs",
    ])


@pytest.mark.parametrize("depth", [1, 4, 16, 64])
def test_bench_scan_depth(benchmark, depth):
    """Scan cost is linear in bytes, not in nesting depth."""
    root = TextData("top\n")
    node = root
    for level in range(depth):
        child = TextData(f"level {level}\n")
        node.append_object(child, "textview")
        node = child
    stream = write_document(root)
    extents = benchmark(lambda: scan_extents(stream))
    assert len(extents) == depth + 1
    assert max(e.depth for e in extents) == depth


def test_bench_roundtrip_fidelity(benchmark):
    """Timed full cycle; byte-stable on the second write."""
    doc = build_document(paragraphs=10, embed_depth=2)

    def cycle():
        stream = write_document(doc)
        return write_document(read_document(stream))

    second = benchmark(cycle)
    assert second == write_document(doc)
    report("E2 roundtrip", ["write -> read -> write is byte-stable"])


def test_bench_section5_example_shape(benchmark):
    """The exact example from §5: text embedding a table."""
    doc = TextData("text data ...\nmore text data ...\n")
    table = TableData(2, 2)
    table.set_cell(0, 0, "the table data goes here ...")
    doc.insert_object(doc.search("more"), table, "spread")
    doc.append("rest of text data ...\n")
    stream = benchmark(lambda: write_document(doc))
    lines = stream.splitlines()
    shape = [
        lines[0].startswith("\\begindata{text, 1}"),
        "\\begindata{table, 2}" in lines,
        "\\enddata{table, 2}" in lines,
        "\\view{spread, 2}" in lines,
        lines[-1] == "\\enddata{text, 1}",
    ]
    assert all(shape)
    report("E2 the §5 example stream", lines)
