"""E3 — §2: multiple views on one data object.

Measures the delayed-update pipeline: one data object, N attached
views, an edit storm driven through one of them.  Reports notification
fan-out cost and repaint counts, plus the chart two-hop case (table →
chart data → chart views).
"""

import pytest

from conftest import report
from repro.components import ChartData, PieChartView, TableData, TextData, TextView
from repro.core import InteractionManager
from repro.wm import AsciiWindowSystem


def build_views(fanout):
    ws = AsciiWindowSystem()
    data = TextData("shared buffer\n" * 5)
    windows = []
    views = []
    for _ in range(fanout):
        im = InteractionManager(ws, width=30, height=8)
        view = TextView(data)
        im.set_child(view)
        im.process_events()
        windows.append(im)
        views.append(view)
    return data, windows, views


@pytest.mark.parametrize("fanout", [1, 4, 16, 64])
def test_bench_edit_fanout(benchmark, fanout):
    data, windows, views = build_views(fanout)

    def edit_and_update():
        data.insert(0, "x")
        for im in windows:
            im.flush_updates()
        data.delete(0, 1)
        for im in windows:
            im.flush_updates()

    benchmark(edit_and_update)
    assert data.observer_count == fanout
    report(
        f"E3 fan-out {fanout}",
        [f"{fanout} live views observe one text; "
         "every edit repaints each window once"],
    )


def test_bench_notification_only(benchmark):
    """Pure observer fan-out without painting: the mechanism's floor."""
    data = TextData("x")
    from repro.class_system import FunctionObserver

    hits = []
    for _ in range(64):
        data.add_observer(FunctionObserver(lambda c: hits.append(1)))

    benchmark(lambda: data.changed("edit"))
    assert data.observer_count == 64


def test_bench_repaint_counts_are_exact(benchmark, metrics):
    """Each edit repaints each view exactly once (coalescing works).

    Reads the unified telemetry registry rather than private queue
    counters: ``update.enqueued``/``update.coalesced`` say what the
    delayed-update queue absorbed, ``im.flush_passes`` says how many
    screen passes came out the other end.
    """
    data, windows, views = build_views(8)
    for im in windows:
        im.redraw()
    before = [view.draw_count for view in views]
    metrics.reset()

    def five_edits_one_flush():
        for _ in range(5):
            data.insert(0, "y")
        for im in windows:
            im.flush_updates()

    five_edits_one_flush()
    after = [view.draw_count for view in views]
    deltas = [b - a for a, b in zip(before, after)]
    assert deltas == [1] * 8  # 5 edits coalesced into one repaint each
    enqueued = metrics.counter("update.enqueued")
    coalesced = metrics.counter("update.coalesced")
    passes = metrics.counter("im.flush_passes")
    assert enqueued == 5 * 8           # every edit reached every view
    assert coalesced == 4 * 8          # 4 of 5 per view were absorbed
    assert passes == 8                 # one screen pass per window
    benchmark(five_edits_one_flush)
    report("E3 coalescing", [
        "5 edits between flushes -> exactly 1 repaint per view",
        f"update.enqueued={enqueued} update.coalesced={coalesced} "
        f"im.flush_passes={passes}",
        f"per-view repaint deltas: {deltas}",
    ])


def test_bench_chart_two_hop(benchmark):
    """Table edit -> chart data recompute -> chart view repaint (§2)."""
    ws = AsciiWindowSystem()
    table = TableData(6, 1)
    for row in range(6):
        table.set_cell(row, 0, row + 1)
    chart = ChartData(table, series_axis="col", series_index=0)
    im = InteractionManager(ws, width=40, height=10)
    im.set_child(PieChartView(chart))
    im.process_events()

    toggle = [1.0]

    def edit_through_chain():
        toggle[0] = 11.0 - toggle[0]
        table.set_cell(0, 0, toggle[0])
        im.flush_updates()

    benchmark(edit_through_chain)
    assert chart.recompute_count > 0
    report("E3 chart chain", [
        f"chart recomputed {chart.recompute_count} times, "
        "one per table edit (the paper's auxiliary-object design)",
    ])
