"""E4 — §7: runapp vs static linking, the five performance bullets.

"paging activity is reduced; key portions of the code are almost always
paged in ...; virtual memory use decreases; file fetch time decreases
if running under a distributed file system; the file size of an
application is reduced."

Regenerates the comparison as a table over 1-6 concurrent applications.
Expected shape: runapp ~breaks even at one application and wins on all
five bullets from two applications up, with the margin growing.
"""

import pytest

from conftest import report
from repro.sim import compare

APPS = ["ez", "messages", "help", "console", "typescript", "preview"]
STEPS = 250


def run_comparison(count):
    return compare(APPS[:count], steps=STEPS)


@pytest.mark.parametrize("count", [1, 2, 4, 6])
def test_bench_runapp_vs_static(benchmark, count):
    static, runapp = benchmark(lambda: run_comparison(count))

    rows = [
        f"{'metric':16s} {'static':>10s} {'runapp':>10s} {'runapp wins':>12s}",
    ]
    bullets = [
        ("faults", "paging activity", True),
        ("key_residency", "key residency", False),   # higher is better
        ("virtual_kb", "virtual memory", True),
        ("fetch_ms", "file fetch time", True),
        ("mean_binary_kb", "binary size", True),
    ]
    wins = 0
    for key, label, lower_is_better in bullets:
        s, r = static[key], runapp[key]
        win = r < s if lower_is_better else r > s
        wins += win
        rows.append(f"{label:16s} {s:10.1f} {r:10.1f} {str(win):>12s}")
    report(f"E4 runapp vs static, {count} concurrent app(s)", rows)

    if count >= 2:
        # The paper's claim: all five bullets favour runapp.
        assert wins == 5, rows


def test_bench_scaling_shape(benchmark):
    """The win grows with concurrency (the sharing argument)."""
    def sweep():
        out = []
        for count in (2, 4, 6):
            static, runapp = run_comparison(count)
            out.append(static["faults"] / max(1.0, runapp["faults"]))
        return out

    ratios = benchmark(sweep)
    assert ratios == sorted(ratios)
    report("E4 fault-ratio scaling", [
        f"{count} apps: static/runapp faults = {ratio:.2f}x"
        for count, ratio in zip((2, 4, 6), ratios)
    ])


def test_bench_binary_size_bullet(benchmark):
    """Bullet five in install-size terms: what the file server stores."""
    from repro.sim import build_runapp_world, build_static_world

    apps = APPS
    static_world = benchmark(lambda: build_static_world(apps))
    runapp_world = build_runapp_world(apps)
    static_total = static_world.store.total_published_kb()
    runapp_total = runapp_world.store.total_published_kb()
    assert runapp_total < static_total
    report("E4 published binaries on the file server", [
        f"static : {static_total} KB across {len(apps)} binaries",
        f"runapp : {runapp_total} KB (one base + {len(apps)} modules)",
        f"savings: {100 * (1 - runapp_total / static_total):.0f}%",
    ])
