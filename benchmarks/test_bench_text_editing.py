"""E7 — per-keystroke editing cost on a large document.

The paper's editor ("a WYSIWYG multi-font text editor is one of the
toolkit's standard components") must stay responsive on real
documents.  This bench types, deletes and restyles inside a
2,000-paragraph buffer through the full event path (edit -> change
records -> delayed update -> clipped repaint) and compares the
incremental paragraph-cache relayout against a control view that
re-wraps from scratch on every layout.

Outputs ``BENCH_text_editing.json`` (a telemetry-registry snapshot
plus the computed summary) in the working directory; CI uploads it as
an artifact.
"""

import json
import time

from conftest import report
from repro.components.text import TextData, TextView
from repro.core import InteractionManager
from repro.wm import AsciiWindowSystem

PARAGRAPHS = 2000
KEYSTROKES = 60

_WORK_COUNTERS = (
    "text.layout_full",
    "text.layout_incremental",
    "text.lines_wrapped",
    "text.lines_reused",
    "font.metrics_hits",
    "font.metrics_misses",
)


def build_editor(incremental):
    ws = AsciiWindowSystem()
    text = "\n".join(
        f"paragraph {i:04d}: the quick brown fox jumps over the lazy dog"
        for i in range(PARAGRAPHS)
    )
    data = TextData(text)
    im = InteractionManager(ws, width=70, height=20)
    view = TextView(data)
    if not incremental:
        view.incremental_enabled = False  # the control arm
    im.set_child(view)
    im.redraw()
    return im, view, data


def keystroke_session(im, view, data, registry, timer_name):
    """A mid-document editing burst: type, backspace, restyle."""
    view.set_dot(data.length // 2)
    for i in range(KEYSTROKES):
        start = time.perf_counter_ns()
        if i % 10 == 8:
            view.delete_selection_or(view.dot - 1, 1)  # backspace
        elif i % 10 == 9:
            data.add_style(view.dot - 8, view.dot - 2, "bold")
        else:
            view.insert_text("x")
        im.flush_updates()
        registry.observe_ns(timer_name, time.perf_counter_ns() - start)


def run_arm(metrics, incremental, timer_name):
    im, view, data = build_editor(incremental)
    metrics.reset()
    keystroke_session(im, view, data, metrics, timer_name)
    counters = {name: metrics.counter(name) for name in _WORK_COUNTERS}
    timer = metrics.timer(timer_name)
    counters["keystroke_p50_ns"] = timer.percentile(0.5) if timer else 0
    return counters


def test_bench_incremental_vs_full_relayout(metrics):
    full = run_arm(metrics, incremental=False, timer_name="bench.full_ns")
    metrics.reset()
    incremental = run_arm(metrics, incremental=True,
                          timer_name="bench.incremental_ns")
    registry_snapshot = metrics.snapshot()

    # The headline claim: per-keystroke wrap work drops at least 5x.
    # (In practice the control arm re-wraps ~2,000 lines per keystroke
    # while the paragraph cache re-wraps ~1.)
    wrapped_full = full["text.lines_wrapped"]
    wrapped_incremental = max(1, incremental["text.lines_wrapped"])
    work_ratio = wrapped_full / wrapped_incremental
    assert work_ratio >= 5.0, (full, incremental)
    assert incremental["text.layout_full"] == 0
    assert incremental["text.lines_reused"] > KEYSTROKES * (PARAGRAPHS - 10)
    # Metrics caching: after warm-up, font lookups are all hits.
    assert (incremental["font.metrics_hits"]
            > 100 * max(1, incremental["font.metrics_misses"]))
    # Wall clock must follow the work reduction (enormous margin).
    assert incremental["keystroke_p50_ns"] < full["keystroke_p50_ns"]

    summary = {
        "paragraphs": PARAGRAPHS,
        "keystrokes": KEYSTROKES,
        "work_ratio_full_over_incremental": round(work_ratio, 1),
        "full": full,
        "incremental": incremental,
    }
    with open("BENCH_text_editing.json", "w") as fh:
        json.dump({"summary": summary, "registry": registry_snapshot},
                  fh, indent=2, default=str)
    speedup = (full["keystroke_p50_ns"]
               / max(1, incremental["keystroke_p50_ns"]))
    report("E7 text editing", [
        f"{PARAGRAPHS}-paragraph document, {KEYSTROKES} keystrokes "
        "at mid-document",
        f"lines wrapped per session: full={wrapped_full} "
        f"incremental={incremental['text.lines_wrapped']} "
        f"({work_ratio:.0f}x less wrap work)",
        f"lines reused: {incremental['text.lines_reused']}",
        f"keystroke p50: full={full['keystroke_p50_ns']}ns "
        f"incremental={incremental['keystroke_p50_ns']}ns "
        f"({speedup:.1f}x)",
        "snapshot written to BENCH_text_editing.json",
    ])


def test_bench_keystroke_timing(benchmark, metrics):
    """pytest-benchmark timing of one keystroke on the incremental arm."""
    im, view, data = build_editor(incremental=True)
    view.set_dot(data.length // 2)
    im.flush_updates()
    metrics.reset()

    def one_keystroke():
        view.insert_text("x")
        im.flush_updates()

    benchmark(one_keystroke)
    assert metrics.counter("text.layout_full") == 0
