"""E11 — §4: printing by drawable swap.

"When a view receives a print request for a specific type of printer it
can temporarily shift its pointer to a drawable for that printer type
and do a redraw of its image."

Times printing a compound document against redrawing it on screen —
the same code path through a different drawable — and verifies the
screen image is untouched by the print.
"""

import pytest

from conftest import report
from repro.apps import EZApp
from repro.components import TextView
from repro.core import InteractionManager
from repro.wm import AsciiWindowSystem, PrinterJob
from repro.workloads import build_expense_letter, build_fig5_document


def test_bench_print_letter(benchmark, ascii_ws):
    im = InteractionManager(ascii_ws, width=70, height=20)
    view = TextView(build_expense_letter())
    im.set_child(view)
    im.process_events()

    def print_it():
        job = PrinterJob(title="expenses")
        view.print_to(job.new_page().child(job.page_bounds()))
        return job

    job = benchmark(print_it)
    text = job.render()
    assert "Dear David," in text
    assert "800" in text  # the spreadsheet total printed too
    report("E11 printed page (excerpt)", text.splitlines()[:14])


def test_bench_screen_redraw_baseline(benchmark, ascii_ws):
    """The comparison: same view, same draw code, screen drawable."""
    im = InteractionManager(ascii_ws, width=70, height=20)
    view = TextView(build_expense_letter())
    im.set_child(view)
    im.process_events()
    benchmark(im.redraw)


def test_bench_print_fig5(benchmark, ascii_ws):
    ez = EZApp(document=build_fig5_document(), window_system=ascii_ws,
               width=90, height=50)
    ez.process()

    def print_document():
        job = PrinterJob(title="pascal", page_width=90, page_height=60)
        ez.textview.print_to(job.new_page().child(job.page_bounds()))
        return job

    job = benchmark(print_document)
    printed = "\n".join(job.page_lines(0))
    assert "Pascal's Triangle" in printed


def test_bench_screen_untouched_by_printing(benchmark, ascii_ws):
    im = InteractionManager(ascii_ws, width=40, height=10)
    view = TextView(build_expense_letter())
    im.set_child(view)
    im.redraw()
    before = list(im.snapshot_lines())

    def print_once():
        job = PrinterJob()
        view.print_to(job.new_page())

    benchmark(print_once)
    im.redraw()
    assert im.snapshot_lines() == before
    report("E11 isolation", [
        "printing redrew through a printer drawable; the window's",
        "cells were never written — the view held no screen pointer",
    ])
