"""E12 — §9: the adoption claim.

"While we were developing that system ... programmers at the ITC used
emacs to edit programs.  Since the release of EZ, use of emacs has
dramatically decreased.  This has been accomplished without sacrificing
the usability of the system by our campus user community."

We can't resurvey the 1988 campus; the measurable shape is *capability
coverage*: replay the same mixed editing sessions (typing, styling,
embedding — the campus task mix) against EZ's text view and against a
plain-text-only editor model, and score what fraction of the intended
work each completes, plus the editing throughput EZ sustains.
"""

import pytest

from conftest import report
from repro.components import TextData, TextView
from repro.core import InteractionManager
from repro.wm import AsciiWindowSystem
from repro.workloads import (
    generate_session,
    replay_on_textview,
    score_editor_capabilities,
)

SESSION_LENGTH = 300
USERS = 5


def fresh_view():
    ws = AsciiWindowSystem()
    im = InteractionManager(ws, width=60, height=16)
    view = TextView(TextData())
    im.set_child(view)
    im.process_events()
    return im, view


def test_bench_ez_full_capability(benchmark):
    def one_user():
        _im, view = fresh_view()
        return replay_on_textview(view, generate_session(SESSION_LENGTH, 7))

    counts = benchmark(one_user)
    assert counts["unsupported"] == 0
    assert score_editor_capabilities(counts) == 1.0


def test_bench_plain_editor_baseline(benchmark):
    def one_user():
        _im, view = fresh_view()
        return replay_on_textview(
            view, generate_session(SESSION_LENGTH, 7),
            allow_styles=False, allow_embeds=False,
        )

    counts = benchmark(one_user)
    assert counts["unsupported"] > 0
    assert score_editor_capabilities(counts) < 1.0


def test_bench_population_comparison(benchmark):
    def survey():
        rows = []
        for user in range(USERS):
            session = generate_session(SESSION_LENGTH, seed=100 + user)
            _im, ez_view = fresh_view()
            ez_counts = replay_on_textview(ez_view, session)
            _im2, plain_view = fresh_view()
            plain_counts = replay_on_textview(
                plain_view, session,
                allow_styles=False, allow_embeds=False,
            )
            rows.append((
                user,
                score_editor_capabilities(ez_counts),
                score_editor_capabilities(plain_counts),
                ez_counts["embeds"],
            ))
        return rows

    rows = benchmark(survey)
    lines = [f"{'user':>4s} {'EZ coverage':>12s} {'plain editor':>13s} "
             f"{'embeds':>7s}"]
    for user, ez_score, plain_score, embeds in rows:
        lines.append(
            f"{user:4d} {ez_score:12.2%} {plain_score:13.2%} {embeds:7d}"
        )
        assert ez_score == 1.0
        assert plain_score < ez_score
    mean_plain = sum(r[2] for r in rows) / len(rows)
    lines.append(
        f"mean plain-editor coverage {mean_plain:.1%}: the work users "
        "could only do in EZ is why emacs use dropped (§9)"
    )
    report("E12 capability coverage, EZ vs plain editor", lines)


def test_bench_keystroke_throughput(benchmark):
    """Raw interactive typing rate through the full event path."""
    im, view = fresh_view()
    burst = "the quick brown fox "

    def type_burst():
        im.window.inject_keys(burst)
        im.process_events()

    benchmark(type_burst)
    assert burst in view.data.text()
