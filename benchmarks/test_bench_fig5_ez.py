"""E10 — Figure 5: the compound EZ document.

"an ez window containing a number of embedded objects (text, equations,
and an animation) within a table that is contained inside of text."

Regenerates the document (Pascal's Triangle in four representations),
renders it in EZ, runs the animation from the menu as the caption
instructs, recalculates the spreadsheet, and round-trips the whole
thing through the external representation.
"""

import pytest

from conftest import report
from repro.apps import EZApp
from repro.components import AnimationView, TableView
from repro.core import read_document, scan_extents, write_document
from repro.workloads import build_fig5_document


def build_fig5_ez(ascii_ws):
    ez = EZApp(document=build_fig5_document(), window_system=ascii_ws,
               width=92, height=56)
    table_view = next(
        c for c in ez.textview.children if isinstance(c, TableView)
    )
    table_view.col_widths[0] = 26
    table_view.col_widths[1] = 40
    # The embed's size offer changed: re-negotiate the text layout.
    ez.textview._needs_layout = True
    table_view._needs_layout = True
    ez.im.redraw()
    return ez, table_view


def test_bench_render(benchmark, ascii_ws):
    ez, table_view = build_fig5_ez(ascii_ws)
    benchmark(ez.im.redraw)
    snapshot = ez.snapshot()
    assert "Pascal's Triangle" in snapshot
    assert "This table contains" in snapshot      # inner text component
    assert "v" in snapshot and "i,j" in snapshot  # the equations
    assert "The End" in snapshot
    report("E10 Figure-5 snapshot", snapshot.splitlines())


def test_bench_spreadsheet_recalc(benchmark, ascii_ws):
    ez, table_view = build_fig5_ez(ascii_ws)
    spreadsheet = next(
        cell.content for _r, _c, cell in table_view.data.cells()
        if cell.kind == "object" and cell.content.type_tag == "table"
    )

    def perturb_and_recalc():
        spreadsheet.set_cell(0, 0, 1)  # dirty the dependency graph
        return spreadsheet.value_at(4, 2)

    value = benchmark(perturb_and_recalc)
    assert value == 6.0  # the middle of row five: 1 4 6 4 1
    report("E10 spreadsheet", [
        "Pascal's Triangle recomputed through the formula engine:",
        f"row 5 = {[spreadsheet.value_at(4, c) for c in range(5)]}",
    ])


def test_bench_animation(benchmark, ascii_ws):
    """'Click into the cell and choose the animate item from the menus.'"""
    ez, table_view = build_fig5_ez(ascii_ws)
    anim_view = next(
        c for c in table_view.children if isinstance(c, AnimationView)
    )
    rect = anim_view.rect_in_window()
    ez.im.window.inject_click(rect.left + 1, rect.top + 1)
    ez.process()
    assert ez.im.focus is anim_view
    ez.im.window.inject_menu("Animation", "Animate")
    ez.process()
    assert anim_view.playing

    def one_frame():
        ez.im.tick()
        ez.process()

    benchmark(one_frame)
    assert anim_view.current > 0
    report("E10 animation", [
        f"animation advanced to frame {anim_view.current} of "
        f"{anim_view.data.frame_count} via menu + timer",
    ])


def test_bench_document_roundtrip(benchmark, ascii_ws):
    document = build_fig5_document()
    stream = write_document(document)

    def cycle():
        return write_document(read_document(stream))

    again = benchmark(cycle)
    assert again == stream
    extents = scan_extents(stream)
    report("E10 external representation", [
        f"{len(stream)} bytes, {len(stream.splitlines())} lines, "
        f"{len(extents)} nested objects:",
        *[f"  {e.type_tag:10s} depth={e.depth} "
          f"lines {e.start_line}..{e.end_line}" for e in extents],
    ])
