"""E18 — dependency-graph incremental recalc on a 100k-cell sheet.

The production-spreadsheet scenario from the ROADMAP: a 10,000 x 10
sheet of numbers carrying a 2,000-cell running-sum chain (each formula
reads the previous chain cell plus its row's input — the deep-cone
shape) and one 9,000-cell ``SUM`` fan-in aggregate.  The sheet is
materialised once (one full recalculation, every cell evaluated), then
single cells are edited mid-chain.

The claim under test: an edit pays for its dependency *cone*, not the
sheet.  ``table.cells_recomputed`` after one edit must be the cone size
(seed + downstream chain + the aggregate), at least 100x fewer
evaluations than the full pass, with values provably identical to a
from-scratch recalculation (the equivalence fuzzer in
``tests/test_table_incremental.py`` carries the general proof; this
bench asserts it at scale on the chain tail and aggregate).

Outputs ``BENCH_recalc.json``; CI uploads it and gates the ``*_ns``
timings and ``*_ratio`` claims against the committed baseline via
``benchmarks/check_regression.py``.

``ANDREW_RECALC_ROWS`` scales the sheet (default 10000 rows x 10 cols).
"""

import json
import os
import time

from conftest import report
from repro.components.table import TableData

ROWS = int(os.environ.get("ANDREW_RECALC_ROWS", "10000"))
COLS = 10
CHAIN = min(2000, ROWS // 5)          # running-sum chain down column B
FANIN = min(9000, ROWS - ROWS // 10)  # =SUM(A1:A<FANIN>) aggregate
EDIT_ROW = CHAIN * 3 // 4             # mid-chain edit: cone = tail + SUM


def build_sheet():
    """Every cell non-empty: numbers everywhere, formulas in col B."""
    table = TableData(ROWS, COLS)
    for row in range(ROWS):
        for col in range(COLS):
            table.set_cell(row, col, float(row + col))
    table.set_cell(0, 1, "=A1")
    for row in range(1, CHAIN):
        # 1-based names: B<row> is the previous chain cell, A<row+1>
        # this row's input — the deep dependency chain.
        table.set_cell(row, 1, f"=B{row}+A{row + 1}")
    table.set_cell(0, 2, f"=SUM(A1:A{FANIN})")  # the wide fan-in
    return table


def chain_tail_expected(table):
    return sum(table.value_at(row, 0) for row in range(CHAIN))


def test_bench_incremental_recalc(metrics):
    build_start = time.perf_counter_ns()
    table = build_sheet()
    build_ns = time.perf_counter_ns() - build_start
    cells = ROWS * COLS
    formulas = CHAIN + 1
    # The gauge is maintained at assign time, so read it post-build
    # (metrics.reset() clears gauges along with counters).
    deps_edges = metrics.gauge_value("table.deps_edges")

    metrics.reset()
    full_start = time.perf_counter_ns()
    assert table.value_at(CHAIN - 1, 1) == chain_tail_expected(table)
    full_ns = time.perf_counter_ns() - full_start
    full_recomputed = metrics.counter("table.cells_recomputed")
    assert metrics.counter("table.recalc_full") == 1
    assert full_recomputed == cells
    assert deps_edges == 2 * (CHAIN - 1) + 1 + FANIN

    # Single mid-chain edits: each cone is the seed, the chain tail
    # below it, and the SUM aggregate.
    cone = (CHAIN - EDIT_ROW) + 2
    edit_ns = []
    expected_tail = table.value_at(CHAIN - 1, 1)
    expected_sum = table.value_at(0, 2)
    for trial in range(5):
        metrics.reset()
        old = table.value_at(EDIT_ROW, 0)
        start = time.perf_counter_ns()
        table.set_cell(EDIT_ROW, 0, old + 1.0)
        edit_ns.append(time.perf_counter_ns() - start)
        assert metrics.counter("table.recalc_full") == 0
        assert metrics.counter("table.recalc_incremental") == 1
        assert metrics.counter("table.cells_recomputed") == cone
        expected_tail += 1.0
        expected_sum += 1.0
        assert table.value_at(CHAIN - 1, 1) == expected_tail
        assert table.value_at(0, 2) == expected_sum
    edit_p50_ns = sorted(edit_ns)[len(edit_ns) // 2]

    # An edit with no dependents at all: the cone is one cell.
    metrics.reset()
    table.set_cell(ROWS - 1, COLS - 1, 0.0)
    assert metrics.counter("table.cells_recomputed") == 1

    # The acceptance bar: >= 100x fewer evaluations than the full pass.
    recompute_ratio = full_recomputed / cone
    assert recompute_ratio >= 100.0, (full_recomputed, cone)

    summary = {
        "cells": cells,
        "formulas": formulas,
        "chain_len": CHAIN,
        "fanin": FANIN,
        "deps_edges": int(deps_edges),
        "build_ns": build_ns,
        "full_recalc_ns": full_ns,
        "edit_recalc_p50_ns": edit_p50_ns,
        "cells_recomputed_full": full_recomputed,
        "cells_recomputed_edit": cone,
        "recompute_ratio": round(recompute_ratio, 1),
        "speedup_ratio": round(full_ns / max(1, edit_p50_ns), 1),
    }
    registry_snapshot = metrics.snapshot()
    with open("BENCH_recalc.json", "w") as fh:
        json.dump({"summary": summary, "registry": registry_snapshot},
                  fh, indent=2, default=str)
    report("E18 incremental recalc (100k-cell sheet)", [
        f"{cells} cells, {formulas} formulas "
        f"(chain {CHAIN}, fan-in {FANIN}), {int(deps_edges)} graph edges",
        f"full recalc: {cells} evaluations in {full_ns / 1e6:.1f}ms",
        f"one edit: {cone} evaluations in {edit_p50_ns / 1e6:.2f}ms (p50)",
        f"recompute reduction: {recompute_ratio:.0f}x fewer evaluations, "
        f"{full_ns / max(1, edit_p50_ns):.0f}x faster",
        "snapshot written to BENCH_recalc.json",
    ])


def test_bench_single_edit(benchmark):
    """pytest-benchmark timing of one mid-chain edit + cone repair."""
    table = TableData(1000, 4)
    for row in range(1000):
        table.set_cell(row, 0, float(row))
    table.set_cell(0, 1, "=A1")
    for row in range(1, 500):
        table.set_cell(row, 1, f"=B{row}+A{row + 1}")
    table.value_at(499, 1)  # materialise

    state = {"value": 0.0}

    def edit():
        state["value"] += 1.0
        table.set_cell(250, 0, state["value"])
        return table.value_at(499, 1)

    benchmark(edit)
