"""E1 — Figure 1: the view tree and its event walkthrough (§3).

Regenerates the figure's window (frame ⊃ scroll bar ⊃ text ⊃ table,
plus the message line), verifies the narrated event dispositions, and
measures mouse-event dispatch cost — flat and as a function of tree
depth (the cost model of parental routing is per-level, so it should
grow linearly and stay in the microsecond range).
"""

import pytest

from conftest import report
from repro.components import Frame, ScrollBar, TableView, TextView
from repro.core import InteractionManager, View
from repro.graphics import Point, Rect
from repro.wm import AsciiWindowSystem
from repro.wm.events import MouseAction, MouseEvent
from repro.workloads import build_expense_letter


def build_fig1_window():
    ws = AsciiWindowSystem()
    im = InteractionManager(ws, title="fig1", width=60, height=18)
    text_view = TextView(build_expense_letter())
    frame = Frame(ScrollBar(text_view))
    im.set_child(frame)
    im.process_events()
    im.redraw()
    return im, frame, text_view


def test_bench_fig1_dispatch(benchmark):
    im, frame, text_view = build_fig1_window()
    event = MouseEvent(MouseAction.DOWN, Point(10, 3))

    def dispatch():
        return frame.dispatch_mouse(event)

    result = benchmark(dispatch)
    assert result is text_view

    # The figure's walkthrough, re-verified against a fresh tree per
    # case (clicks scroll/drag, so state must not leak between cases).
    lines = []
    for label, pick in (
        ("divider grab zone",
         lambda f, t, tv: (Point(10, f.divider_row - 1), f)),
        ("scroll bar column", lambda f, t, tv: (Point(0, 5), f.body)),
        ("text body", lambda f, t, tv: (Point(10, 1), t)),
        ("embedded table",
         lambda f, t, tv: (Point(tv.rect_in_window().left + 5,
                                 tv.rect_in_window().top + 3), tv)),
    ):
        _im, fresh_frame, fresh_text = build_fig1_window()
        table_view = next(
            c for c in fresh_text.children if isinstance(c, TableView)
        )
        point, expected = pick(fresh_frame, fresh_text, table_view)
        handled = fresh_frame.dispatch_mouse(
            MouseEvent(MouseAction.DOWN, point)
        )
        fresh_frame.dispatch_mouse(MouseEvent(MouseAction.UP, point))
        ok = handled is expected
        lines.append(
            f"{label:20s} -> {type(handled).__name__:12s} "
            f"({'as the paper narrates' if ok else 'MISMATCH'})"
        )
        assert ok, (label, handled, expected)
    report("E1 Figure-1 event dispositions", lines)


@pytest.mark.parametrize("depth", [2, 8, 32, 64])
def test_bench_fig1_dispatch_depth(benchmark, depth):
    """Dispatch cost vs nesting depth: one routing decision per level."""
    ws = AsciiWindowSystem()
    im = InteractionManager(ws, width=200, height=200)

    class Leaf(View):
        atk_register = False

        def handle_mouse(self, event):
            return True

    root = View()
    im.set_child(root)
    node = root
    for level in range(depth - 1):
        child = Leaf() if level == depth - 2 else View()
        node.add_child(child, Rect(1, 1, 198 - level, 198 - level))
        node = child
    im.process_events()
    event = MouseEvent(MouseAction.DOWN, Point(depth, depth))

    handled = benchmark(lambda: root.dispatch_mouse(event))
    assert handled is not None
    report(
        f"E1 dispatch at depth {depth}",
        [f"levels traversed: {depth}", "cost grows ~linearly with depth"],
    )
