"""Compare fresh ``BENCH_*.json`` snapshots against committed baselines.

CI runs the benchmarks (which write ``BENCH_*.json`` into the working
directory) and then this script.  Every numeric ``*_ns`` field in a
fresh snapshot is compared against the same field in the committed
baseline under ``benchmarks/baselines/``; a value more than
``THRESHOLD`` slower prints a warning.  Warnings are advisory — shared
CI runners have noisy clocks — so the default exit code is 0; pass
``--strict`` to turn warnings into a failing exit for local A/B runs.

Ratio fields (request/redraw reductions) are checked the other way:
a baseline claim (e.g. "13x fewer requests") that *drops* by more than
the threshold is also flagged, catching coalescer regressions that
timing noise would hide.

Usage::

    python benchmarks/check_regression.py [--strict] [BENCH_x.json ...]

With no file arguments, every ``BENCH_*.json`` in the current
directory that has a committed baseline is checked.
"""

from __future__ import annotations

import glob
import json
import sys
from pathlib import Path

THRESHOLD = 0.20  # warn beyond 20% in the losing direction

BASELINE_DIR = Path(__file__).parent / "baselines"


def _numeric_leaves(obj, prefix=""):
    """Flatten to {dotted.path: number} for every int/float leaf."""
    out = {}
    if isinstance(obj, dict):
        for key, value in obj.items():
            out.update(_numeric_leaves(value, f"{prefix}{key}."))
    elif isinstance(obj, (int, float)) and not isinstance(obj, bool):
        out[prefix[:-1]] = obj
    return out


def compare(fresh_path: Path, baseline_path: Path) -> list:
    # Only the curated ``summary`` block is compared: the raw registry
    # dump carries every timer percentile and would drown the signal
    # in shared-runner clock noise.
    fresh = _numeric_leaves(json.loads(fresh_path.read_text()).get("summary", {}))
    baseline = _numeric_leaves(
        json.loads(baseline_path.read_text()).get("summary", {})
    )
    warnings = []
    for field, base in baseline.items():
        if base <= 0 or field not in fresh:
            continue
        new = fresh[field]
        leaf = field.rsplit(".", 1)[-1]
        if leaf.endswith("_ns"):
            # Timings: slower is worse.
            if new > base * (1 + THRESHOLD):
                warnings.append(
                    f"{fresh_path.name}: {field} slowed "
                    f"{base:.0f} -> {new:.0f} ns "
                    f"(+{(new / base - 1) * 100:.0f}%)"
                )
        elif "ratio" in leaf:
            # Reduction claims: smaller is worse.
            if new < base * (1 - THRESHOLD):
                warnings.append(
                    f"{fresh_path.name}: {field} dropped "
                    f"{base:.1f} -> {new:.1f} "
                    f"(-{(1 - new / base) * 100:.0f}%)"
                )
    return warnings


def main(argv) -> int:
    strict = "--strict" in argv
    paths = [Path(a) for a in argv if not a.startswith("-")]
    if not paths:
        paths = [Path(p) for p in sorted(glob.glob("BENCH_*.json"))]
    checked = 0
    warnings = []
    for fresh in paths:
        baseline = BASELINE_DIR / fresh.name
        if not baseline.exists():
            print(f"note: no committed baseline for {fresh.name}; skipped")
            continue
        if not fresh.exists():
            print(f"note: {fresh} not present; skipped")
            continue
        checked += 1
        warnings.extend(compare(fresh, baseline))
    if warnings:
        print(f"bench regression warnings ({len(warnings)}):")
        for line in warnings:
            print(f"  WARNING: {line}")
    else:
        print(f"bench regression check: {checked} snapshot(s) within "
              f"{THRESHOLD:.0%} of committed baselines")
    return 1 if (strict and warnings) else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
