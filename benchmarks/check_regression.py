"""Compare fresh ``BENCH_*.json`` snapshots against committed baselines.

CI runs the benchmarks (which write ``BENCH_*.json`` into the working
directory) and then this script.  Every numeric ``*_ns`` field in a
fresh snapshot is compared against the same field in the committed
baseline under ``benchmarks/baselines/``; a value more than
``THRESHOLD`` slower is flagged.  Ratio fields (request/redraw
reductions) are checked the other way: a baseline claim (e.g. "13x
fewer requests") that *drops* by more than the threshold is also
flagged, catching coalescer regressions that timing noise would hide.

Most flags are advisory — shared CI runners have noisy clocks — so
they print as warnings and the exit code stays 0 (pass ``--strict``
to turn every warning into a failure for local A/B runs).  The
**budgeted** interactive-latency metrics in :data:`BUDGETS` are the
exception: they are the product's responsiveness contract (keystroke
p50, scroll p95, expose p95), so for them both an absolute ceiling
and a >``THRESHOLD`` regression against the baseline *fail the run*.
``--budget PATTERN`` demotes budgeted metrics whose dotted path
matches the substring ``PATTERN`` back to warnings — the escape hatch
for runners known to blow the absolute numbers.

Usage::

    python benchmarks/check_regression.py [--strict] [--budget PATTERN]
                                          [BENCH_x.json ...]

With no file arguments, every ``BENCH_*.json`` in the current
directory is checked (budgets apply even without a committed
baseline; baseline comparisons are skipped for files that lack one).
"""

from __future__ import annotations

import glob
import json
import sys
from pathlib import Path

THRESHOLD = 0.20  # flag beyond 20% in the losing direction

BASELINE_DIR = Path(__file__).parent / "baselines"

#: Hard ceilings per snapshot file and dotted summary path — latency
#: metrics in nanoseconds, wire costs in bytes (``*_bytes``).  Values
#: are deliberately several times the observed numbers so they catch a
#: lost optimisation (a disabled cache, a full-pane scroll repaint, a
#: delta encoder shipping literals), not clock jitter.
BUDGETS = {
    "BENCH_text_editing.json": {
        "incremental.keystroke_p50_ns": 10_000_000,   # 10 ms per keystroke
    },
    "BENCH_scroll.json": {
        "blit.scroll_p95_ns": 10_000_000,             # 10 ms per scroll tick
        "blit.expose_p95_ns": 40_000_000,             # 40 ms per full expose
    },
    "BENCH_remote.json": {
        "delta.per_frame_bytes": 600,                 # wire cost per frame
    },
}


def _numeric_leaves(obj, prefix=""):
    """Flatten to {dotted.path: number} for every int/float leaf."""
    out = {}
    if isinstance(obj, dict):
        for key, value in obj.items():
            out.update(_numeric_leaves(value, f"{prefix}{key}."))
    elif isinstance(obj, (int, float)) and not isinstance(obj, bool):
        out[prefix[:-1]] = obj
    return out


def _summary_leaves(path: Path):
    # Only the curated ``summary`` block is compared: the raw registry
    # dump carries every timer percentile and would drown the signal
    # in shared-runner clock noise.
    return _numeric_leaves(json.loads(path.read_text()).get("summary", {}))


def _is_budgeted(name: str, field: str, waivers) -> bool:
    if field not in BUDGETS.get(name, {}):
        return False
    return not any(pat in field or pat in name for pat in waivers)


def check_budgets(fresh_path: Path, fresh: dict, waivers) -> tuple:
    """Absolute ceilings: these hold even without a baseline."""
    errors, warnings = [], []
    for field, ceiling in BUDGETS.get(fresh_path.name, {}).items():
        if field not in fresh:
            errors.append(
                f"{fresh_path.name}: budgeted metric {field} missing "
                "from snapshot"
            )
            continue
        new = fresh[field]
        if new > ceiling:
            unit = "bytes" if field.endswith("_bytes") else "ns"
            line = (
                f"{fresh_path.name}: {field} = {new:.0f} {unit} exceeds "
                f"the {ceiling:.0f} {unit} budget "
                f"(+{(new / ceiling - 1) * 100:.0f}%)"
            )
            if _is_budgeted(fresh_path.name, field, waivers):
                errors.append(line)
            else:
                warnings.append(f"{line} [budget waived]")
    return errors, warnings


def compare(fresh_path: Path, fresh: dict, baseline_path: Path,
            waivers) -> tuple:
    baseline = _summary_leaves(baseline_path)
    errors, warnings = [], []
    for field, base in baseline.items():
        if base <= 0 or field not in fresh:
            continue
        new = fresh[field]
        leaf = field.rsplit(".", 1)[-1]
        line = None
        if leaf.endswith("_ns"):
            # Timings: slower is worse.
            if new > base * (1 + THRESHOLD):
                line = (
                    f"{fresh_path.name}: {field} slowed "
                    f"{base:.0f} -> {new:.0f} ns "
                    f"(+{(new / base - 1) * 100:.0f}%)"
                )
        elif leaf.endswith("_bytes"):
            # Wire/storage costs: bigger is worse (and deterministic,
            # so drift here is a real codec change, not clock noise).
            if new > base * (1 + THRESHOLD):
                line = (
                    f"{fresh_path.name}: {field} grew "
                    f"{base:.0f} -> {new:.0f} bytes "
                    f"(+{(new / base - 1) * 100:.0f}%)"
                )
        elif "ratio" in leaf:
            # Reduction claims: smaller is worse.
            if new < base * (1 - THRESHOLD):
                line = (
                    f"{fresh_path.name}: {field} dropped "
                    f"{base:.1f} -> {new:.1f} "
                    f"(-{(1 - new / base) * 100:.0f}%)"
                )
        if line is None:
            continue
        if _is_budgeted(fresh_path.name, field, waivers):
            errors.append(line)
        else:
            warnings.append(line)
    return errors, warnings


def main(argv) -> int:
    strict = "--strict" in argv
    waivers = []
    positional = []
    it = iter(argv)
    for arg in it:
        if arg == "--budget":
            waivers.append(next(it, ""))
        elif not arg.startswith("-"):
            positional.append(arg)
    paths = [Path(a) for a in positional]
    if not paths:
        paths = [Path(p) for p in sorted(glob.glob("BENCH_*.json"))]
    checked = 0
    errors = []
    warnings = []
    for fresh_path in paths:
        if not fresh_path.exists():
            print(f"note: {fresh_path} not present; skipped")
            continue
        checked += 1
        fresh = _summary_leaves(fresh_path)
        errs, warns = check_budgets(fresh_path, fresh, waivers)
        errors.extend(errs)
        warnings.extend(warns)
        baseline = BASELINE_DIR / fresh_path.name
        if baseline.exists():
            errs, warns = compare(fresh_path, fresh, baseline, waivers)
            errors.extend(errs)
            warnings.extend(warns)
        else:
            print(f"note: no committed baseline for {fresh_path.name}; "
                  "budgets only")
    if warnings:
        print(f"bench regression warnings ({len(warnings)}):")
        for line in warnings:
            print(f"  WARNING: {line}")
    if errors:
        print(f"bench budget FAILURES ({len(errors)}):")
        for line in errors:
            print(f"  ERROR: {line}")
    if not warnings and not errors:
        print(f"bench regression check: {checked} snapshot(s) within "
              f"{THRESHOLD:.0%} of committed baselines and budgets")
    return 1 if (errors or (strict and warnings)) else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
