"""E9 — Figure 4: the composition window with an embedded raster.

"The message being created contains a raster image."  Builds the
compose window, embeds the big-cat raster, sends the message through
the folder store (i.e. through the 7-bit transport form), re-reads it,
and verifies the raster survived — then times each leg.
"""

import pytest

from conftest import report
from repro.apps import ComposeApp, FolderStore, MessagesApp
from repro.workloads import big_cat_raster


def build_compose(ascii_ws, store=None):
    app = ComposeApp(store if store is not None else FolderStore(),
                     sender="palay", window_system=ascii_ws,
                     width=70, height=22)
    app.set_to("david")
    app.set_subject("Big Cat")
    app.body_data.append(
        "Knowing your fondness for big cats, here's a picture I "
        "recently found.\n\n"
    )
    app.body_data.append_object(big_cat_raster(), "rasterview")
    return app


def test_bench_build_window(benchmark, ascii_ws):
    app = benchmark(lambda: build_compose(ascii_ws))
    snapshot = app.snapshot()
    assert "To: david" in snapshot
    assert "Big Cat" in snapshot
    assert "fondness for big cats" in snapshot
    assert "#" in snapshot  # raster ink
    report("E9 Figure-4 snapshot (raster in the body)",
           snapshot.splitlines())


def test_bench_send(benchmark, ascii_ws):
    store = FolderStore()
    app = build_compose(ascii_ws, store)
    message = benchmark(app.send)
    assert message is not None
    assert all(ord(c) < 127 for c in message.body_stream)
    report("E9 transport", [
        f"message body serialized to {len(message.body_stream)} bytes of",
        "printable 7-bit ASCII, <=80 columns — mails anywhere (§5)",
    ])


def test_bench_roundtrip_read(benchmark, ascii_ws):
    store = FolderStore()
    app = build_compose(ascii_ws, store)
    app.send()
    reader = MessagesApp(store, window_system=ascii_ws)
    reader.open_folder("mail.david")

    def open_and_check():
        reader.open_message(0)
        return reader.body_view.data

    body = benchmark(open_and_check)
    raster = body.embeds()[0].data
    assert raster.bitmap == big_cat_raster().bitmap
    report("E9 fidelity", [
        "raster re-read pixel-identical after mail transport",
    ])


def test_bench_typing_into_body(benchmark, ascii_ws):
    app = build_compose(ascii_ws)
    app.process()

    def type_burst():
        app.im.window.inject_keys("more text ")
        app.process()

    benchmark(type_burst)
    assert "more text" in app.body_data.text()
