"""E19 — scroll cost: shift-blit vs full-area repaint.

Scrolling is the other half of interactive latency (E7 covers
keystrokes).  Without help, every one-line scroll of a reader window
repaints the whole pane even though all but one row of the result is
already on screen, one row higher.  The ``ANDREW_SCROLLBLIT`` gate
turns that move into a same-surface ``copy_area`` plus a repaint of
just the exposed strip.

This bench drives a scroll sweep through a 2,000-paragraph document
and a row-by-row storm over a 300-row table, through the full event
path, with the gate off (control) and on (subject), and compares the
rows actually repainted per tick.  It also times full-window exposes,
so the latency budgets in ``check_regression.py`` cover all three
interactive paths: keystroke p50 (E7), scroll p95 and expose p95
(both here).

Outputs ``BENCH_scroll.json`` (telemetry snapshot plus computed
summary) in the working directory; CI uploads it as an artifact and
enforces the budgets.
"""

import json
import time

from conftest import report
from repro.components.table.tabledata import TableData
from repro.components.table.tableview import TableView
from repro.components.text import TextData, TextView
from repro.core import InteractionManager, scrollblit
from repro.wm import AsciiWindowSystem

PARAGRAPHS = 2000
TICKS = 120
EXPOSES = 40
TABLE_ROWS = 300
TABLE_TICKS = 100


def build_reader():
    ws = AsciiWindowSystem()
    text = "\n".join(
        f"paragraph {i:04d}: the quick brown fox jumps over the lazy dog"
        for i in range(PARAGRAPHS)
    )
    im = InteractionManager(ws, width=70, height=20)
    view = TextView(TextData(text))
    im.set_child(view)
    im.redraw()
    return im, view


def build_table():
    ws = AsciiWindowSystem()
    data = TableData(TABLE_ROWS, 5)
    for row in range(0, TABLE_ROWS, 7):
        data.set_cell(row, row % 5, row * 3)
    im = InteractionManager(ws, width=60, height=22)
    view = TableView(data)
    im.set_child(view)
    im.redraw()
    return im, view


def scroll_sweep(im, view, registry, timer_name, ticks):
    """A reader session: mostly line-steps, periodic small jumps."""
    pos = 0
    for tick in range(ticks):
        pos += 3 if tick % 6 == 5 else 1
        start = time.perf_counter_ns()
        view.set_scroll_pos(pos)
        im.flush_updates()
        registry.observe_ns(timer_name, time.perf_counter_ns() - start)


def expose_storm(im, registry, timer_name):
    for _ in range(EXPOSES):
        start = time.perf_counter_ns()
        im.window.inject_expose()
        im.process_events()
        registry.observe_ns(timer_name, time.perf_counter_ns() - start)


def run_arm(metrics, blit_on, timer_prefix):
    was = scrollblit.enabled
    scrollblit.configure(blit_on)
    try:
        im, view = build_reader()
        metrics.reset()
        scroll_sweep(im, view, metrics, timer_prefix + ".scroll_ns", TICKS)
        expose_storm(im, metrics, timer_prefix + ".expose_ns")
        out = {
            "rows_repainted": metrics.counter("view.rows_repainted"),
            "scroll_blits": metrics.counter("view.scroll_blits"),
            "scroll_area_saved": metrics.counter("im.scroll_area_saved"),
        }
        scroll_timer = metrics.timer(timer_prefix + ".scroll_ns")
        expose_timer = metrics.timer(timer_prefix + ".expose_ns")
        out["scroll_p50_ns"] = scroll_timer.percentile(0.5) if scroll_timer else 0
        out["scroll_p95_ns"] = scroll_timer.percentile(0.95) if scroll_timer else 0
        out["expose_p95_ns"] = expose_timer.percentile(0.95) if expose_timer else 0
        return out
    finally:
        scrollblit.configure(was)


def run_table_arm(metrics, blit_on):
    was = scrollblit.enabled
    scrollblit.configure(blit_on)
    try:
        im, view = build_table()
        metrics.reset()
        for tick in range(TABLE_TICKS):
            view.set_scroll_pos(tick + 1)
            im.flush_updates()
        return {
            "rows_repainted": metrics.counter("view.rows_repainted"),
            "scroll_blits": metrics.counter("view.scroll_blits"),
        }
    finally:
        scrollblit.configure(was)


def test_bench_scroll_blit_vs_repaint(metrics):
    full = run_arm(metrics, blit_on=False, timer_prefix="bench.scroll_off")
    metrics.reset()
    blit = run_arm(metrics, blit_on=True, timer_prefix="bench.scroll_on")
    registry_snapshot = metrics.snapshot()

    table_full = run_table_arm(metrics, blit_on=False)
    metrics.reset()
    table_blit = run_table_arm(metrics, blit_on=True)

    # The headline claim: the shift-blit repaints >= 10x fewer rows per
    # scroll tick.  (A one-line scroll of a 20-row pane repaints 1 row
    # instead of 20.)
    work_ratio = full["rows_repainted"] / max(1, blit["rows_repainted"])
    assert work_ratio >= 10.0, (full, blit)
    assert blit["scroll_blits"] >= TICKS * 0.9  # nearly every tick shifted
    assert full["scroll_blits"] == 0

    table_ratio = (table_full["rows_repainted"]
                   / max(1, table_blit["rows_repainted"]))
    assert table_ratio >= 10.0, (table_full, table_blit)

    summary = {
        "paragraphs": PARAGRAPHS,
        "scroll_ticks": TICKS,
        "work_ratio_full_over_blit": round(work_ratio, 1),
        "table_work_ratio_full_over_blit": round(table_ratio, 1),
        "full": full,
        "blit": blit,
        "table_full": table_full,
        "table_blit": table_blit,
    }
    with open("BENCH_scroll.json", "w") as fh:
        json.dump({"summary": summary, "registry": registry_snapshot},
                  fh, indent=2, default=str)
    report("E19 scrolling", [
        f"{PARAGRAPHS}-paragraph document, {TICKS} scroll ticks, "
        f"{EXPOSES} full exposes; {TABLE_ROWS}-row table, "
        f"{TABLE_TICKS} row steps",
        f"rows repainted: full={full['rows_repainted']} "
        f"blit={blit['rows_repainted']} ({work_ratio:.0f}x less)",
        f"table rows repainted: full={table_full['rows_repainted']} "
        f"blit={table_blit['rows_repainted']} ({table_ratio:.0f}x less)",
        f"cells saved by shifting: {blit['scroll_area_saved']}",
        f"scroll p95: full={full['scroll_p95_ns']}ns "
        f"blit={blit['scroll_p95_ns']}ns",
        f"expose p95: {blit['expose_p95_ns']}ns",
        "snapshot written to BENCH_scroll.json",
    ])


def test_bench_scroll_tick_timing(benchmark, metrics):
    """pytest-benchmark timing of one one-line scroll with the blit on."""
    was = scrollblit.enabled
    scrollblit.configure(True)
    try:
        im, view = build_reader()
        im.flush_updates()
        metrics.reset()
        state = {"pos": 0}

        def one_tick():
            state["pos"] += 1
            view.set_scroll_pos(state["pos"])
            im.flush_updates()

        benchmark(one_tick)
        assert metrics.counter("view.scroll_blits") > 0
    finally:
        scrollblit.configure(was)
