"""E16 — batched drawable command buffers (the ``ANDREW_BATCH`` gate).

On a remote window system every device operation is one protocol
round trip, so the metric that matters is *requests issued*.  This
bench drives the standard three-pane workspace through two workloads —
a scrolling editing session and a storm of full-window exposes — with
the command buffer off and on, and reports the request reduction the
coalescer buys.  Text is the dominant term: views draw glyph by glyph,
and same-baseline runs collapse into single ``draw_text`` requests.

Outputs ``BENCH_batching.json`` (request counts per arm, coalescing
counters, flush-latency stats) in the working directory; CI uploads it
as an artifact and compares it against the committed copy.
"""

import json
import time

from conftest import report
from repro.components.drawing.drawdata import DrawingData
from repro.components.drawing.drawview import DrawView
from repro.components.drawing.shapes import EllipseShape, RectShape
from repro.components.split import SplitView
from repro.components.table.tabledata import TableData
from repro.components.table.tableview import TableView
from repro.components.text.textdata import TextData
from repro.components.text.textview import TextView
from repro.core import InteractionManager
from repro.graphics import Rect, batch
from repro.wm import AsciiWindowSystem

KEYSTROKES = 30
SCROLLS = 12
EXPOSES = 20

_WORK_COUNTERS = (
    "wm.ascii.requests",
    "wm.ascii.draw_text",
    "wm.ascii.fill_rect",
    "wm.requests_batched",
    "wm.ops_coalesced",
    "wm.batch_flushes",
    "wm.batch_ops_replayed",
)


def build_workspace():
    """Text | (table / drawing) — the paper-figure window shape."""
    ws = AsciiWindowSystem()
    im = InteractionManager(ws, width=78, height=22)
    text_view = TextView(TextData(
        "\n".join(f"paragraph {i:03d}: the quick brown fox jumps over "
                  "the lazy dog" for i in range(60))
    ))
    table = TableData(8, 3)
    for row in range(8):
        for col in range(3):
            table.set_cell(row, col, row * 10 + col)
    table_view = TableView(table)
    drawing = DrawingData()
    drawing.add_shape(RectShape(Rect(1, 1, 12, 5)))
    drawing.add_shape(EllipseShape(Rect(3, 2, 8, 4)))
    draw_view = DrawView(drawing)
    split = SplitView(text_view,
                      SplitView(table_view, draw_view, vertical=False),
                      vertical=True)
    im.set_child(split)
    im.set_focus(text_view)
    im.process_events()
    return im, text_view


def session(im, text_view, registry, timer_name):
    """Typing, scrolling and full exposes — a request-heavy session."""
    for i in range(KEYSTROKES):
        im.window.inject_key("x")
        if i % 3 == 2:
            im.window.inject_expose()
        start = time.perf_counter_ns()
        im.process_events()
        registry.observe_ns(timer_name, time.perf_counter_ns() - start)
    for i in range(SCROLLS):
        text_view.set_scroll_pos(i * 3)
        im.process_events()
    for _ in range(EXPOSES):
        im.window.inject_expose()
        im.process_events()


def run_arm(metrics, batching, timer_name):
    was = batch.enabled
    batch.configure(batching)
    try:
        im, text_view = build_workspace()
        metrics.reset()
        session(im, text_view, metrics, timer_name)
        counters = {name: metrics.counter(name) for name in _WORK_COUNTERS}
        flush = metrics.timer("wm.batch_flush_ns")
        counters["batch_flush_p50_ns"] = flush.percentile(0.5) if flush else 0
        timer = metrics.timer(timer_name)
        counters["frame_p50_ns"] = timer.percentile(0.5) if timer else 0
        return counters
    finally:
        batch.configure(was)


def test_bench_batching_request_reduction(metrics):
    off = run_arm(metrics, batching=False, timer_name="bench.immediate_ns")
    metrics.reset()
    on = run_arm(metrics, batching=True, timer_name="bench.batched_ns")
    registry_snapshot = metrics.snapshot()

    # The headline claim: the coalescer cuts device requests >= 5x.
    requests_off = off["wm.ascii.requests"]
    requests_on = max(1, on["wm.ascii.requests"])
    ratio = requests_off / requests_on
    assert requests_off > 1000, off  # the workload is request-heavy
    assert ratio >= 5.0, (off, on)
    # Every request the off arm issued was recorded, not lost.
    assert on["wm.requests_batched"] == requests_off, (off, on)
    assert on["wm.ops_coalesced"] > 0
    assert on["wm.batch_flushes"] > 0
    # Replayed ops = recorded - coalesced away.
    assert on["wm.batch_ops_replayed"] == (
        on["wm.requests_batched"] - on["wm.ops_coalesced"]
    )
    # The off arm records nothing.
    assert off["wm.requests_batched"] == 0 and off["wm.batch_flushes"] == 0

    summary = {
        "workload": {
            "keystrokes": KEYSTROKES,
            "scrolls": SCROLLS,
            "full_exposes": EXPOSES,
        },
        "requests_off": requests_off,
        "requests_on": on["wm.ascii.requests"],
        "request_ratio_off_over_on": round(ratio, 1),
        "draw_text_off": off["wm.ascii.draw_text"],
        "draw_text_on": on["wm.ascii.draw_text"],
        "off": off,
        "on": on,
    }
    with open("BENCH_batching.json", "w") as fh:
        json.dump({"summary": summary, "registry": registry_snapshot},
                  fh, indent=2, default=str)
    report("E16 batched command buffers", [
        f"{KEYSTROKES} keystrokes (expose every 3rd), {SCROLLS} scrolls, "
        f"{EXPOSES} full exposes on the three-pane workspace",
        f"device requests: off={requests_off} "
        f"on={on['wm.ascii.requests']} ({ratio:.1f}x fewer)",
        f"draw_text requests: off={off['wm.ascii.draw_text']} "
        f"on={on['wm.ascii.draw_text']}",
        f"recorded={on['wm.requests_batched']} "
        f"coalesced={on['wm.ops_coalesced']} "
        f"flushes={on['wm.batch_flushes']}",
        f"flush p50: {on['batch_flush_p50_ns']}ns; frame p50: "
        f"off={off['frame_p50_ns']}ns on={on['frame_p50_ns']}ns",
        "snapshot written to BENCH_batching.json",
    ])


def test_bench_batched_expose_timing(benchmark, metrics):
    """pytest-benchmark timing of one batched full expose."""
    was = batch.enabled
    batch.configure(True)
    try:
        im, _ = build_workspace()
        im.window.inject_expose()
        im.process_events()
        metrics.reset()

        def one_expose():
            im.window.inject_expose()
            im.process_events()

        benchmark(one_expose)
        assert metrics.counter("wm.batch_flushes") > 0
    finally:
        batch.configure(was)
