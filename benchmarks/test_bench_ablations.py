"""Ablations: the design choices DESIGN.md calls out, measured.

Each ablation disables one mechanism the paper's architecture relies on
and measures what it was buying:

* A1 delayed update + coalescing (§2) vs repaint-per-edit;
* A2 damage-clipped repaint (§3 up/down update flow) vs full-window
  redraw per request;
* A3 the interaction manager's mouse grab vs re-routing every drag
  event down the tree;
* A4 marks (sticky positions) vs recomputing embed placements by
  rescanning the buffer on every edit.
"""

import pytest

from conftest import report
from repro.components import TableData, TextData, TextView
from repro.core import InteractionManager
from repro.graphics import Point, Rect
from repro.wm import AsciiWindowSystem
from repro.wm.events import MouseAction, MouseEvent


def build_editor(width=60, height=18):
    im = InteractionManager(AsciiWindowSystem(), width=width, height=height)
    view = TextView(TextData("seed text\n" * 6))
    im.set_child(view)
    im.process_events()
    return im, view


EDITS = 40


def test_bench_a1_with_coalescing(benchmark):
    im, view = build_editor()
    data = view.data

    def burst():
        for i in range(EDITS):
            data.insert(0, "x")
        im.flush_updates()

    benchmark(burst)
    before = view.draw_count
    burst()
    repaints = view.draw_count - before
    assert repaints == 1
    report("A1 coalescing ON", [f"{EDITS} edits -> {repaints} repaint"])


def test_bench_a1_without_coalescing(benchmark):
    im, view = build_editor()
    data = view.data

    def burst():
        for i in range(EDITS):
            data.insert(0, "x")
            im.flush_updates()   # ablation: flush after every edit

    benchmark(burst)
    before = view.draw_count
    burst()
    repaints = view.draw_count - before
    assert repaints == EDITS
    report("A1 coalescing OFF", [
        f"{EDITS} edits -> {repaints} repaints; the delayed-update queue",
        "is what turns an edit storm into one screen pass (§2)",
    ])


def test_bench_a2_damage_clipped(benchmark):
    im, view = build_editor(width=120, height=40)

    def small_damage():
        view.want_update(Rect(0, 0, 4, 1))
        im.flush_updates()

    benchmark(small_damage)


def test_bench_a2_full_redraw(benchmark):
    im, view = build_editor(width=120, height=40)

    def full():
        im.redraw()   # ablation: ignore damage, repaint everything

    benchmark(full)
    report("A2 damage clipping", [
        "small-damage repaint vs full-window redraw on a 120x40 window:",
        "clipping makes caret blinks and message-line updates cheap",
    ])


def test_bench_a3_with_grab(benchmark):
    im, view = build_editor()

    def drag():
        im.window.inject_mouse(MouseAction.DOWN, 5, 2)
        for x in range(6, 26):
            im.window.inject_mouse(MouseAction.DRAG, x, 2)
        im.window.inject_mouse(MouseAction.UP, 26, 2)
        im.process_events()

    benchmark(drag)


def test_bench_a3_without_grab(benchmark):
    """Ablation: route every drag event down the tree from the root."""
    im, view = build_editor()
    root = im.child

    def drag():
        for x in range(6, 26):
            root.dispatch_mouse(
                MouseEvent(MouseAction.DRAG, Point(x, 2))
            )

    benchmark(drag)
    report("A3 mouse grab", [
        "with the grab, DRAG/UP go straight to the accepting view;",
        "without it every motion event re-walks the tree — and a drag",
        "that leaves the view's rectangle would be misrouted entirely",
    ])


def test_bench_a5_incremental_repair(benchmark):
    """Typing at the bottom of a tall window repaints only the changed
    line downward (the §2 'determine what the change is' discipline)."""
    im, view = build_editor(width=100, height=40)
    view.data.append("\n".join(f"row {i}" for i in range(38)))
    im.process_events()
    view.set_dot(view.data.length)

    def type_one():
        view.data.append("x")
        im.flush_updates()

    benchmark(type_one)


def test_bench_a5_full_repaint_baseline(benchmark):
    """Ablation: force whole-view damage for the same edit."""
    im, view = build_editor(width=100, height=40)
    view.data.append("\n".join(f"row {i}" for i in range(38)))
    im.process_events()
    view.set_dot(view.data.length)

    def type_one_full():
        view.data.append("x")
        view.want_update()        # ablation: damage everything
        im.flush_updates()

    benchmark(type_one_full)
    report("A5 incremental repair", [
        "an append near the bottom damages only its own rows; the",
        "ablated version repaints the whole 100x40 window per keystroke",
    ])


def test_bench_a4_marks(benchmark):
    """Marks keep embed positions O(marks) per edit."""
    data = TextData("padding " * 50)
    for i in range(10):
        data.insert_object(i * 20, TableData(1, 1))

    def edit():
        data.insert(0, "x")
        positions = [e.pos for e in data.embeds()]
        data.delete(0, 1)
        return positions

    positions = benchmark(edit)
    assert len(positions) == 10


def test_bench_a4_rescan(benchmark):
    """Ablation: find placeholders by scanning the whole buffer."""
    from repro.components.text.textdata import OBJECT_CHAR

    data = TextData("padding " * 50)
    for i in range(10):
        data.insert_object(i * 20, TableData(1, 1))

    def edit():
        data.insert(0, "x")
        text = data.text()
        positions = [i for i, c in enumerate(text) if c == OBJECT_CHAR]
        data.delete(0, 1)
        return positions

    positions = benchmark(edit)
    assert len(positions) == 10
    report("A4 marks vs rescan", [
        "marks adjust in O(#marks) per edit; rescanning is O(buffer)",
        "per edit and loses identity when placeholders coincide",
    ])
