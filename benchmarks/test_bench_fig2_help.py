"""E7 — Figure 2: the help-system window.

Regenerates the snapshot: the EZ help document in the left pane, the
related-tools list and other-topics list on the right, the status line
below; then times window construction, topic switching, and search.
"""

import pytest

from conftest import report
from repro.apps import HelpApp


def test_bench_build_window(benchmark, ascii_ws):
    app = benchmark(lambda: HelpApp(window_system=ascii_ws,
                                    width=90, height=24))
    snapshot = app.snapshot()
    for expected in ("EZ: A Document Editor", "What EZ is",
                     "Starting EZ", "typescript", "console"):
        assert expected in snapshot, expected
    report("E7 Figure-2 snapshot", snapshot.splitlines())


def test_bench_topic_switch(benchmark, ascii_ws):
    app = HelpApp(window_system=ascii_ws)
    topics = ["messages", "console", "ez", "preview"]
    state = {"i": 0}

    def switch():
        state["i"] = (state["i"] + 1) % len(topics)
        app.show_topic(topics[state["i"]])

    benchmark(switch)
    assert app.current is not None


def test_bench_search(benchmark, ascii_ws):
    app = HelpApp(window_system=ascii_ws)
    hits = benchmark(lambda: app.database.search("document"))
    assert "ez" in hits
    report("E7 search", [f"'document' found in topics: {hits}"])


def test_bench_related_navigation(benchmark, ascii_ws):
    """Clicking through related topics, as a user browses."""
    app = HelpApp(window_system=ascii_ws)

    def browse():
        app.show_topic("ez")
        index = app.related_list.items.index("messages")
        app.related_list.select_index(index)
        return app.current.name

    final = benchmark(browse)
    assert final == "messages"
