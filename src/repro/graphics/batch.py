"""Batched drawable command buffers (the ``ANDREW_BATCH`` gate).

The paper's drawable (§4) hides the window system behind device
primitives, but each primitive still costs one device request — the
blocker ROADMAP names for a remote/wire backend, where one request is
one round trip.  Behind the process-wide switch below, a
:class:`~repro.wm.base.BackendWindow` attaches a :class:`CommandBuffer`
to every drawable it hands out: device operations are *recorded* as
data instead of executed, and :meth:`CommandBuffer.flush` replays the
whole frame against the device in one pass.  Once drawing is a
replayable op list, a wire protocol is serialization.

Recording coalesces *runs* — consecutive compatible operations — into
single device requests:

* abutting ``fill_rect`` ops with the same value merge into one rect
  (abutting means edge-sharing and disjoint, so inversion fills are
  safe to merge too);
* consecutive ``draw_text`` ops on the same baseline, font and clip
  whose spans abut concatenate into one string (the big win: text
  views draw glyph by glyph);
* ``hline``/``vline`` spans on the same row/column union when
  contiguous (ink/background spans may overlap — both backends are
  idempotent there — inversion spans must exactly abut).

Only consecutive ops merge and replay preserves recording order, so a
batched frame is cell/pixel-identical to an unbatched one — proven
across every gate combination by ``tests/conformance/``.

Ordering rules the rest of the stack honours:

* offscreen/compositor surfaces are exempt (their graphics never carry
  a buffer), and ``OffscreenWindow.copy_to`` settles the target before
  blitting, so blits always see settled pixels;
* ``BackendWindow.flush``/``snapshot_lines``/``pending_events`` drain
  the buffer before anything observes the surface;
* ``BackendWindow.resize`` discards pending ops — the surface they
  were recorded against is gone and a full expose is queued.

Telemetry (gated on ``ANDREW_METRICS``): ``wm.requests_batched`` ops
recorded instead of issued, ``wm.ops_coalesced`` merges,
``wm.batch_flushes`` / ``wm.batch_ops_replayed`` replay passes and the
``wm.batch_flush_ns`` flush-latency timer.
"""

from __future__ import annotations

import os
import time
from typing import List, Optional

from .. import obs
from .fontdesc import FontDesc, FontMetrics
from .geometry import Rect
from .image import Bitmap

__all__ = ["BATCH_ENV", "enabled", "batch_enabled", "configure",
           "CommandBuffer", "OP_NAMES",
           "FILL", "HLINE", "VLINE", "TEXT", "PIXEL", "BLIT", "COPY"]

BATCH_ENV = "ANDREW_BATCH"

_TRUTHY = {"1", "true", "yes", "on"}


def _env_on(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in _TRUTHY


#: Hot-path switch.  ``BackendWindow`` reads this module attribute when
#: handing out a drawable: ``if batch.enabled: graphic._buffer = ...``.
enabled: bool = _env_on(BATCH_ENV)


def batch_enabled() -> bool:
    return enabled


def configure(on: Optional[bool] = None) -> None:
    """Flip batching at run time (tests, benches, embedding apps).

    ``None`` leaves the switch unchanged.  Turning the switch off does
    not drop pending ops: buffers attached to live drawables keep
    recording and drain at the next flush; newly created drawables
    simply stop attaching one.
    """
    global enabled
    if on is not None:
        enabled = bool(on)


# Op kinds.  Ops are small mutable lists so run coalescing can extend
# the last op in place.  The kinds and per-kind layouts below are the
# stable op schema the remote wire protocol serializes
# (:mod:`repro.remote.wire`):
#
# =======  ==================================================
# kind     op layout (after the kind tag)
# =======  ==================================================
# FILL     ``rect, value``
# HLINE    ``x0, x1, y, value``
# VLINE    ``x, y0, y1, value``
# TEXT     ``x, y, text, font, clip, end_x`` (end_x is a
#          recording-side coalescing cursor, not replayed)
# PIXEL    ``x, y, value``
# BLIT     ``bitmap_snapshot, x, y``
# COPY     ``rect, dx, dy``
# =======  ==================================================
FILL, HLINE, VLINE, TEXT, PIXEL, BLIT, COPY = range(7)

#: Kind tag -> name, for introspection/debugging and wire tooling.
OP_NAMES = {
    FILL: "fill", HLINE: "hline", VLINE: "vline", TEXT: "text",
    PIXEL: "pixel", BLIT: "blit", COPY: "copy",
}


def _merge_fill(a: Rect, b: Rect) -> Optional[Rect]:
    """The union of two abutting rects, or None when they don't tile.

    Abutting (edge-sharing, disjoint) is required so merging is exact
    for every fill value, inversion included.
    """
    if (a.top == b.top and a.height == b.height
            and (a.right == b.left or b.right == a.left)):
        return a.union(b)
    if (a.left == b.left and a.width == b.width
            and (a.bottom == b.top or b.bottom == a.top)):
        return a.union(b)
    return None


class CommandBuffer:
    """The per-window recorded op list, drained by ``flush``."""

    def __init__(self, window) -> None:
        self._window = window
        self._ops: List[list] = []
        # Content-hash intern of blit snapshots for the current frame:
        # (width, height, pixel bytes) -> the one shared snapshot.
        # Cleared whenever the op list drains (flush/discard).
        self._blit_cache: dict = {}

    def __len__(self) -> int:
        return len(self._ops)

    @property
    def pending(self) -> int:
        """Recorded ops not yet replayed against the device."""
        return len(self._ops)

    # -- recording -----------------------------------------------------

    def _note_recorded(self) -> None:
        if obs.metrics_on:
            obs.registry.inc("wm.requests_batched")

    def _note_coalesced(self) -> None:
        if obs.metrics_on:
            obs.registry.inc("wm.ops_coalesced")

    def record_fill(self, rect: Rect, value: int) -> None:
        self._note_recorded()
        ops = self._ops
        if ops:
            last = ops[-1]
            if last[0] == FILL and last[2] == value:
                merged = _merge_fill(last[1], rect)
                if merged is not None:
                    last[1] = merged
                    self._note_coalesced()
                    return
        ops.append([FILL, rect, value])

    def record_hline(self, x0: int, x1: int, y: int, value: int) -> None:
        self._note_recorded()
        ops = self._ops
        if ops:
            last = ops[-1]
            if last[0] == HLINE and last[3] == y and last[4] == value:
                if self._spans_mergeable(last[1], last[2], x0, x1, value):
                    last[1] = min(last[1], x0)
                    last[2] = max(last[2], x1)
                    self._note_coalesced()
                    return
        ops.append([HLINE, x0, x1, y, value])

    def record_vline(self, x: int, y0: int, y1: int, value: int) -> None:
        self._note_recorded()
        ops = self._ops
        if ops:
            last = ops[-1]
            if last[0] == VLINE and last[1] == x and last[4] == value:
                if self._spans_mergeable(last[2], last[3], y0, y1, value):
                    last[2] = min(last[2], y0)
                    last[3] = max(last[3], y1)
                    self._note_coalesced()
                    return
        ops.append([VLINE, x, y0, y1, value])

    @staticmethod
    def _spans_mergeable(a0: int, a1: int, b0: int, b1: int,
                         value: int) -> bool:
        """True when [a0,a1] and [b0,b1] union to one contiguous span.

        Ink/background spans may overlap (both backends are idempotent
        per cell); inversion spans toggle, so they must exactly abut.
        """
        if value < 0:
            return b0 == a1 + 1 or b1 == a0 - 1
        return b0 <= a1 + 1 and b1 >= a0 - 1

    def record_text(self, x: int, y: int, text: str, font: FontDesc,
                    clip: Rect, metrics: FontMetrics) -> None:
        self._note_recorded()
        # Advance includes the 4-cell tab expansion both devices apply.
        end_x = x + metrics.char_width * (len(text) + 3 * text.count("\t"))
        ops = self._ops
        if ops:
            last = ops[-1]
            if (last[0] == TEXT and last[2] == y and last[6] == x
                    and last[4] == font and last[5] == clip):
                last[3] += text
                last[6] = end_x
                self._note_coalesced()
                return
        ops.append([TEXT, x, y, text, font, clip, end_x])

    def record_pixel(self, x: int, y: int, value: int) -> None:
        self._note_recorded()
        self._ops.append([PIXEL, x, y, value])

    def record_blit(self, bitmap: Bitmap, x: int, y: int) -> None:
        self._note_recorded()
        # Defensive copy: the frame may mutate the source bitmap after
        # this draw (a later event in the same batch) but before replay.
        # Identical contents within one frame intern to a single
        # snapshot — an animation blitting the same cel N times costs
        # one copy (and the wire encoder ships the pixels once).  Keyed
        # by content, so a source mutated between blits still snapshots
        # fresh.
        key = (bitmap.width, bitmap.height, bytes(bitmap._bits))
        snapshot = self._blit_cache.get(key)
        if snapshot is None:
            snapshot = bitmap.crop(Rect(0, 0, bitmap.width, bitmap.height))
            self._blit_cache[key] = snapshot
        elif obs.metrics_on:
            obs.registry.inc("wm.blit_snapshots_deduped")
        self._ops.append([BLIT, snapshot, x, y])

    def record_copy_area(self, rect: Rect, dx: int, dy: int) -> None:
        """A same-surface shift.  Never coalesced: the copy reads pixels
        earlier ops in this buffer may still have to produce, and replay
        order alone guarantees it reads them settled."""
        self._note_recorded()
        self._ops.append([COPY, rect, dx, dy])

    # -- introspection -------------------------------------------------

    def snapshot_ops(self) -> List[list]:
        """Copies of the pending ops, safe to hold across the flush.

        Run coalescing mutates the *last* recorded op in place, so a
        consumer that outlives this recording window (the remote wire
        encoder) gets per-op copies.  Referenced objects (rects, fonts,
        blit snapshots) are immutable or frame-private and are shared.
        """
        return [list(op) for op in self._ops]

    # -- draining ------------------------------------------------------

    def discard(self) -> None:
        """Drop pending ops (the surface they target was discarded)."""
        self._ops.clear()
        self._blit_cache.clear()

    def flush(self) -> int:
        """Replay every pending op against the device, in order.

        Each coalesced op is one device request.  Text ops replay under
        their recorded clip — the device crops clip-split glyphs (tabs
        on the cell device, partial glyph columns on the raster), so
        replay must crop exactly as immediate execution would have.
        Returns the number of ops replayed.
        """
        ops = self._ops
        if not ops:
            return 0
        self._ops = []
        self._blit_cache.clear()
        graphic = self._window._raw_graphic()
        base_clip = graphic.clip
        metered = obs.metrics_on
        start = time.perf_counter_ns() if metered else 0
        for op in ops:
            kind = op[0]
            if kind == FILL:
                graphic.device_fill_rect(op[1], op[2])
            elif kind == TEXT:
                graphic.clip = op[5]
                graphic.device_draw_text(op[1], op[2], op[3], op[4])
                graphic.clip = base_clip
            elif kind == HLINE:
                graphic.device_hline(op[1], op[2], op[3], op[4])
            elif kind == VLINE:
                graphic.device_vline(op[1], op[2], op[3], op[4])
            elif kind == PIXEL:
                graphic.device_set_pixel(op[1], op[2], op[3])
            elif kind == COPY:
                graphic.device_copy_area(op[1], op[2], op[3])
            else:
                graphic.device_blit(op[1], op[2], op[3])
        if metered:
            obs.registry.inc("wm.batch_flushes")
            obs.registry.inc("wm.batch_ops_replayed", len(ops))
            obs.registry.observe_ns(
                "wm.batch_flush_ns", time.perf_counter_ns() - start
            )
        return len(ops)

    def __repr__(self) -> str:
        return f"<CommandBuffer {len(self._ops)} pending>"
