"""Geometry primitives for the graphics layer (paper section 4).

Everything in the toolkit's imaging model is expressed in terms of
points and rectangles: each view owns a rectangle completely contained
in its parent's rectangle, drawables carry a coordinate-system origin,
and update events carry damage rectangles.  :class:`Region` (a disjoint
rectangle set) backs clipping and damage accumulation.

Coordinates are integers (device pixels or character cells); the origin
is the upper-left corner with y growing downwards, as on the bitmapped
displays of the period.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

__all__ = ["Point", "Rect", "Region"]


class Point:
    """An immutable 2-D integer point."""

    __slots__ = ("x", "y")

    def __init__(self, x: int, y: int) -> None:
        object.__setattr__(self, "x", int(x))
        object.__setattr__(self, "y", int(y))

    def __setattr__(self, name, value):
        raise AttributeError("Point is immutable")

    def offset(self, dx: int, dy: int) -> "Point":
        """Return this point translated by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Point) and self.x == other.x and self.y == other.y
        )

    def __hash__(self) -> int:
        return hash((self.x, self.y))

    def __iter__(self) -> Iterator[int]:
        return iter((self.x, self.y))

    def __repr__(self) -> str:
        return f"Point({self.x}, {self.y})"


class Rect:
    """An immutable axis-aligned rectangle ``(left, top, width, height)``.

    A rectangle with non-positive width or height is *empty*: it contains
    no points, intersects nothing, and unions as the identity.
    """

    __slots__ = ("left", "top", "width", "height")

    def __init__(self, left: int, top: int, width: int, height: int) -> None:
        object.__setattr__(self, "left", int(left))
        object.__setattr__(self, "top", int(top))
        object.__setattr__(self, "width", int(width))
        object.__setattr__(self, "height", int(height))

    def __setattr__(self, name, value):
        raise AttributeError("Rect is immutable")

    @classmethod
    def from_corners(cls, x0: int, y0: int, x1: int, y1: int) -> "Rect":
        """Build a rectangle from two opposite corners (any order)."""
        left, right = sorted((int(x0), int(x1)))
        top, bottom = sorted((int(y0), int(y1)))
        return cls(left, top, right - left, bottom - top)

    @classmethod
    def empty(cls) -> "Rect":
        return cls(0, 0, 0, 0)

    # -- derived coordinates -------------------------------------------

    @property
    def right(self) -> int:
        """One past the rightmost column (exclusive)."""
        return self.left + self.width

    @property
    def bottom(self) -> int:
        """One past the bottommost row (exclusive)."""
        return self.top + self.height

    @property
    def origin(self) -> Point:
        return Point(self.left, self.top)

    @property
    def center(self) -> Point:
        return Point(self.left + self.width // 2, self.top + self.height // 2)

    @property
    def area(self) -> int:
        return 0 if self.is_empty() else self.width * self.height

    def is_empty(self) -> bool:
        return self.width <= 0 or self.height <= 0

    # -- predicates ------------------------------------------------------

    def contains_point(self, point: Point) -> bool:
        """True if ``point`` lies inside (edges inclusive on top/left)."""
        return (
            self.left <= point.x < self.right
            and self.top <= point.y < self.bottom
        )

    def contains_rect(self, other: "Rect") -> bool:
        """True if ``other`` lies entirely within this rectangle.

        An empty ``other`` is contained by anything — the view tree uses
        this when checking the invariant that children fit their parent.
        """
        if other.is_empty():
            return True
        if self.is_empty():
            return False
        return (
            self.left <= other.left
            and self.top <= other.top
            and other.right <= self.right
            and other.bottom <= self.bottom
        )

    def intersects(self, other: "Rect") -> bool:
        if self.is_empty() or other.is_empty():
            return False
        return (
            self.left < other.right
            and other.left < self.right
            and self.top < other.bottom
            and other.top < self.bottom
        )

    # -- constructions ---------------------------------------------------

    def intersection(self, other: "Rect") -> "Rect":
        """The overlapping rectangle, or an empty rect if disjoint."""
        if not self.intersects(other):
            return Rect.empty()
        left = max(self.left, other.left)
        top = max(self.top, other.top)
        return Rect(
            left,
            top,
            min(self.right, other.right) - left,
            min(self.bottom, other.bottom) - top,
        )

    def union(self, other: "Rect") -> "Rect":
        """The smallest rectangle covering both (empty rects ignored)."""
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        left = min(self.left, other.left)
        top = min(self.top, other.top)
        return Rect(
            left,
            top,
            max(self.right, other.right) - left,
            max(self.bottom, other.bottom) - top,
        )

    def offset(self, dx: int, dy: int) -> "Rect":
        return Rect(self.left + dx, self.top + dy, self.width, self.height)

    def inset(self, dx: int, dy: int) -> "Rect":
        """Shrink by ``dx`` on each side horizontally and ``dy`` vertically.

        Negative insets grow the rectangle (the frame view uses a
        negative inset to build its enlarged divider grab zone, §3).
        """
        return Rect(
            self.left + dx, self.top + dy, self.width - 2 * dx, self.height - 2 * dy
        )

    def difference(self, other: "Rect") -> List["Rect"]:
        """This rectangle minus ``other``, as up to four disjoint rects."""
        clip = self.intersection(other)
        if clip.is_empty():
            return [] if self.is_empty() else [self]
        pieces = []
        if clip.top > self.top:  # band above
            pieces.append(Rect(self.left, self.top, self.width, clip.top - self.top))
        if clip.bottom < self.bottom:  # band below
            pieces.append(
                Rect(self.left, clip.bottom, self.width, self.bottom - clip.bottom)
            )
        if clip.left > self.left:  # left slab beside the clip band
            pieces.append(
                Rect(self.left, clip.top, clip.left - self.left, clip.height)
            )
        if clip.right < self.right:  # right slab beside the clip band
            pieces.append(
                Rect(clip.right, clip.top, self.right - clip.right, clip.height)
            )
        return pieces

    # -- iteration / comparison -------------------------------------------

    def points(self) -> Iterator[Point]:
        """Iterate every integer point inside (row-major)."""
        for y in range(self.top, self.bottom):
            for x in range(self.left, self.right):
                yield Point(x, y)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        if self.is_empty() and other.is_empty():
            return True
        return (
            self.left == other.left
            and self.top == other.top
            and self.width == other.width
            and self.height == other.height
        )

    def __hash__(self) -> int:
        if self.is_empty():
            return hash("empty-rect")
        return hash((self.left, self.top, self.width, self.height))

    def __iter__(self) -> Iterator[int]:
        return iter((self.left, self.top, self.width, self.height))

    def __repr__(self) -> str:
        return f"Rect({self.left}, {self.top}, {self.width}, {self.height})"


class Region:
    """A set of points represented as disjoint rectangles.

    Used for clip shapes and damage accumulation.  The representation
    invariant — rectangles pairwise disjoint, none empty — is maintained
    by construction and checked by :meth:`check_invariants` (exercised by
    the property-based tests).
    """

    __slots__ = ("_rects",)

    def __init__(self, rects: Optional[Iterable[Rect]] = None) -> None:
        self._rects: List[Rect] = []
        for rect in rects or ():
            self.add(rect)

    @classmethod
    def from_rect(cls, rect: Rect) -> "Region":
        return cls([rect])

    def is_empty(self) -> bool:
        return not self._rects

    @property
    def rects(self) -> List[Rect]:
        """The disjoint rectangles (a copy)."""
        return list(self._rects)

    @property
    def area(self) -> int:
        return sum(r.area for r in self._rects)

    def bounding_box(self) -> Rect:
        box = Rect.empty()
        for rect in self._rects:
            box = box.union(rect)
        return box

    def contains_point(self, point: Point) -> bool:
        return any(r.contains_point(point) for r in self._rects)

    def intersects_rect(self, rect: Rect) -> bool:
        return any(r.intersects(rect) for r in self._rects)

    def add(self, rect: Rect) -> None:
        """Union ``rect`` into the region, keeping rects disjoint."""
        if rect.is_empty():
            return
        pending = [rect]
        for existing in self._rects:
            next_pending = []
            for piece in pending:
                next_pending.extend(piece.difference(existing))
            pending = next_pending
            if not pending:
                return
        self._rects.extend(pending)

    def add_region(self, other: "Region") -> None:
        for rect in other._rects:
            self.add(rect)

    def subtract(self, rect: Rect) -> None:
        """Remove ``rect``'s points from the region."""
        if rect.is_empty():
            return
        result: List[Rect] = []
        for existing in self._rects:
            result.extend(existing.difference(rect))
        self._rects = result

    def intersect_rect(self, rect: Rect) -> "Region":
        """Return a new region clipped to ``rect``."""
        clipped = Region()
        for existing in self._rects:
            piece = existing.intersection(rect)
            if not piece.is_empty():
                clipped._rects.append(piece)
        return clipped

    def clear(self) -> None:
        self._rects.clear()

    def check_invariants(self) -> None:
        """Raise AssertionError if the representation invariant is broken."""
        for rect in self._rects:
            assert not rect.is_empty(), f"empty rect {rect} in region"
        for i, a in enumerate(self._rects):
            for b in self._rects[i + 1:]:
                assert not a.intersects(b), f"overlapping rects {a} and {b}"

    def __eq__(self, other) -> bool:
        if not isinstance(other, Region):
            return NotImplemented
        if self.area != other.area:
            return False
        # Same area and mutual containment of every rect => same point set.
        return all(
            other.intersect_rect(r).area == r.area for r in self._rects
        )

    def __repr__(self) -> str:
        return f"Region({self._rects!r})"
