"""The graphics layer (paper section 4): geometry, colors, fonts, drawables.

Views draw exclusively through :class:`~repro.graphics.graphic.Graphic`
(the paper's *drawable*); window system backends in :mod:`repro.wm`
subclass it with device primitives.
"""

from .color import BLACK, WHITE, Color, TransferMode, named_color
from .fontdesc import BOLD, FIXED, ITALIC, FontDesc, FontMetrics
from .geometry import Point, Rect, Region
from .graphic import Graphic, GraphicsState
from .image import Bitmap
from .minifont import GLYPH_HEIGHT, GLYPH_WIDTH, glyph_bitmap, render_text

__all__ = [
    "Point",
    "Rect",
    "Region",
    "Color",
    "TransferMode",
    "BLACK",
    "WHITE",
    "named_color",
    "FontDesc",
    "FontMetrics",
    "BOLD",
    "ITALIC",
    "FIXED",
    "Bitmap",
    "Graphic",
    "GraphicsState",
    "GLYPH_WIDTH",
    "GLYPH_HEIGHT",
    "glyph_bitmap",
    "render_text",
]
