"""Font descriptions (the FontDesc porting class, paper section 8).

A :class:`FontDesc` names a font — family, style flags, point size —
without binding it to any window system.  Each window system backend
supplies a :class:`FontMetrics` realization (cell-sized for the ascii
backend, pixel-sized for the raster backend); views measure text only
through metrics, which is what keeps them display-medium independent.

The metric model is deterministic and monospaced-per-font: every glyph
of a given font has the same advance width.  That matches the original
Andrew fixed ``andytype`` fonts closely enough for layout behaviour
(wrapping, centering, table column sizing) to be faithfully exercised.
"""

from __future__ import annotations


__all__ = ["FontDesc", "FontMetrics", "BOLD", "ITALIC", "FIXED"]

BOLD = "bold"
ITALIC = "italic"
FIXED = "fixed"

_KNOWN_STYLES = frozenset({BOLD, ITALIC, FIXED})


class FontDesc:
    """An immutable, hashable font description.

    ``family`` is a free-form name (``"andy"``, ``"andytype"`` ...),
    ``size`` a point size, ``styles`` a set drawn from ``BOLD``,
    ``ITALIC``, ``FIXED``.
    """

    __slots__ = ("family", "size", "styles")

    def __init__(self, family: str = "andy", size: int = 12, styles=()) -> None:
        styles = frozenset(styles)
        unknown = styles - _KNOWN_STYLES
        if unknown:
            raise ValueError(f"unknown font styles: {sorted(unknown)}")
        if size <= 0:
            raise ValueError(f"font size must be positive, got {size}")
        object.__setattr__(self, "family", str(family))
        object.__setattr__(self, "size", int(size))
        object.__setattr__(self, "styles", styles)

    def __setattr__(self, name, value):
        raise AttributeError("FontDesc is immutable")

    @property
    def bold(self) -> bool:
        return BOLD in self.styles

    @property
    def italic(self) -> bool:
        return ITALIC in self.styles

    @property
    def fixed(self) -> bool:
        return FIXED in self.styles

    def with_styles(self, *styles: str) -> "FontDesc":
        """Return a copy with ``styles`` added."""
        return FontDesc(self.family, self.size, self.styles | frozenset(styles))

    def without_styles(self, *styles: str) -> "FontDesc":
        """Return a copy with ``styles`` removed."""
        return FontDesc(self.family, self.size, self.styles - frozenset(styles))

    def with_size(self, size: int) -> "FontDesc":
        return FontDesc(self.family, size, self.styles)

    def spec(self) -> str:
        """Andrew-style font spec string, e.g. ``andy12b``."""
        suffix = ""
        if self.bold:
            suffix += "b"
        if self.italic:
            suffix += "i"
        if self.fixed:
            suffix += "f"
        return f"{self.family}{self.size}{suffix}"

    @classmethod
    def from_spec(cls, spec: str) -> "FontDesc":
        """Parse an Andrew-style spec string like ``andy12bi``.

        The grammar is family letters, then digits, then style letters
        (``b`` bold, ``i`` italic, ``f`` fixed).
        """
        i = 0
        while i < len(spec) and not spec[i].isdigit():
            i += 1
        j = i
        while j < len(spec) and spec[j].isdigit():
            j += 1
        family, digits, flags = spec[:i], spec[i:j], spec[j:]
        if not family or not digits:
            raise ValueError(f"malformed font spec {spec!r}")
        styles = set()
        for flag in flags:
            if flag == "b":
                styles.add(BOLD)
            elif flag == "i":
                styles.add(ITALIC)
            elif flag == "f":
                styles.add(FIXED)
            else:
                raise ValueError(f"unknown style flag {flag!r} in {spec!r}")
        return cls(family, int(digits), styles)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, FontDesc)
            and self.family == other.family
            and self.size == other.size
            and self.styles == other.styles
        )

    def __hash__(self) -> int:
        return hash((self.family, self.size, self.styles))

    def __repr__(self) -> str:
        return f"FontDesc({self.family!r}, {self.size}, {sorted(self.styles)})"


class FontMetrics:
    """Concrete measurements of a :class:`FontDesc` on some medium.

    Window system backends construct these; views only read them.
    """

    __slots__ = ("desc", "char_width", "ascent", "descent")

    def __init__(self, desc: FontDesc, char_width: int, ascent: int, descent: int):
        self.desc = desc
        self.char_width = char_width
        self.ascent = ascent
        self.descent = descent

    @property
    def height(self) -> int:
        """Line height: ascent + descent."""
        return self.ascent + self.descent

    def string_width(self, text: str) -> int:
        """Advance width of ``text`` (tabs count as 4 glyphs)."""
        expanded = len(text) + 3 * text.count("\t")
        return expanded * self.char_width

    def chars_that_fit(self, text: str, width: int) -> int:
        """How many leading characters of ``text`` fit in ``width``."""
        if self.char_width <= 0:
            return len(text)
        fit = 0
        used = 0
        for ch in text:
            advance = self.char_width * (4 if ch == "\t" else 1)
            if used + advance > width:
                break
            used += advance
            fit += 1
        return fit

    def __repr__(self) -> str:
        return (
            f"FontMetrics({self.desc.spec()}, w={self.char_width}, "
            f"a={self.ascent}, d={self.descent})"
        )
