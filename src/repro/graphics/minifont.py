"""A tiny built-in 5x7 bitmap font for the raster window system.

The original Andrew window system shipped its own bitmap fonts (the
``andy`` family).  The raster backend needs *some* glyph shapes to turn
``device_draw_text`` into pixels; this module provides a classic 5x7
dot-matrix font covering printable ASCII.  Lowercase letters reuse the
uppercase shapes at the same cell size — crude, but period-appropriate,
and sufficient for snapshot tests that check pixels were produced where
text was drawn.

Each glyph is seven strings of five characters; ``#`` is ink.  Glyph
bitmaps are cached per (character, scale).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List

from .image import Bitmap

__all__ = ["GLYPH_WIDTH", "GLYPH_HEIGHT", "glyph_bitmap", "render_text"]

GLYPH_WIDTH = 5
GLYPH_HEIGHT = 7

_GLYPHS: Dict[str, List[str]] = {
    " ": ["     ", "     ", "     ", "     ", "     ", "     ", "     "],
    "!": ["  #  ", "  #  ", "  #  ", "  #  ", "  #  ", "     ", "  #  "],
    '"': [" # # ", " # # ", "     ", "     ", "     ", "     ", "     "],
    "#": [" # # ", "#####", " # # ", " # # ", " # # ", "#####", " # # "],
    "$": ["  #  ", " ####", "# #  ", " ### ", "  # #", "#### ", "  #  "],
    "%": ["##   ", "##  #", "   # ", "  #  ", " #   ", "#  ##", "   ##"],
    "&": [" ##  ", "#  # ", "#  # ", " ##  ", "# # #", "#  # ", " ## #"],
    "'": ["  #  ", "  #  ", "     ", "     ", "     ", "     ", "     "],
    "(": ["   # ", "  #  ", " #   ", " #   ", " #   ", "  #  ", "   # "],
    ")": [" #   ", "  #  ", "   # ", "   # ", "   # ", "  #  ", " #   "],
    "*": ["     ", "  #  ", "# # #", " ### ", "# # #", "  #  ", "     "],
    "+": ["     ", "  #  ", "  #  ", "#####", "  #  ", "  #  ", "     "],
    ",": ["     ", "     ", "     ", "     ", "  ## ", "  #  ", " #   "],
    "-": ["     ", "     ", "     ", "#####", "     ", "     ", "     "],
    ".": ["     ", "     ", "     ", "     ", "     ", " ##  ", " ##  "],
    "/": ["    #", "   # ", "   # ", "  #  ", " #   ", " #   ", "#    "],
    "0": [" ### ", "#   #", "#  ##", "# # #", "##  #", "#   #", " ### "],
    "1": ["  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### "],
    "2": [" ### ", "#   #", "    #", "   # ", "  #  ", " #   ", "#####"],
    "3": [" ### ", "#   #", "    #", "  ## ", "    #", "#   #", " ### "],
    "4": ["   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # "],
    "5": ["#####", "#    ", "#### ", "    #", "    #", "#   #", " ### "],
    "6": ["  ## ", " #   ", "#    ", "#### ", "#   #", "#   #", " ### "],
    "7": ["#####", "    #", "   # ", "  #  ", " #   ", " #   ", " #   "],
    "8": [" ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### "],
    "9": [" ### ", "#   #", "#   #", " ####", "    #", "   # ", " ##  "],
    ":": ["     ", " ##  ", " ##  ", "     ", " ##  ", " ##  ", "     "],
    ";": ["     ", " ##  ", " ##  ", "     ", " ##  ", " #   ", "#    "],
    "<": ["   # ", "  #  ", " #   ", "#    ", " #   ", "  #  ", "   # "],
    "=": ["     ", "     ", "#####", "     ", "#####", "     ", "     "],
    ">": [" #   ", "  #  ", "   # ", "    #", "   # ", "  #  ", " #   "],
    "?": [" ### ", "#   #", "    #", "   # ", "  #  ", "     ", "  #  "],
    "@": [" ### ", "#   #", "# ###", "# # #", "# ## ", "#    ", " ### "],
    "A": [" ### ", "#   #", "#   #", "#####", "#   #", "#   #", "#   #"],
    "B": ["#### ", "#   #", "#   #", "#### ", "#   #", "#   #", "#### "],
    "C": [" ### ", "#   #", "#    ", "#    ", "#    ", "#   #", " ### "],
    "D": ["#### ", "#   #", "#   #", "#   #", "#   #", "#   #", "#### "],
    "E": ["#####", "#    ", "#    ", "#### ", "#    ", "#    ", "#####"],
    "F": ["#####", "#    ", "#    ", "#### ", "#    ", "#    ", "#    "],
    "G": [" ### ", "#   #", "#    ", "# ###", "#   #", "#   #", " ### "],
    "H": ["#   #", "#   #", "#   #", "#####", "#   #", "#   #", "#   #"],
    "I": [" ### ", "  #  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### "],
    "J": ["  ###", "   # ", "   # ", "   # ", "   # ", "#  # ", " ##  "],
    "K": ["#   #", "#  # ", "# #  ", "##   ", "# #  ", "#  # ", "#   #"],
    "L": ["#    ", "#    ", "#    ", "#    ", "#    ", "#    ", "#####"],
    "M": ["#   #", "## ##", "# # #", "# # #", "#   #", "#   #", "#   #"],
    "N": ["#   #", "##  #", "# # #", "#  ##", "#   #", "#   #", "#   #"],
    "O": [" ### ", "#   #", "#   #", "#   #", "#   #", "#   #", " ### "],
    "P": ["#### ", "#   #", "#   #", "#### ", "#    ", "#    ", "#    "],
    "Q": [" ### ", "#   #", "#   #", "#   #", "# # #", "#  # ", " ## #"],
    "R": ["#### ", "#   #", "#   #", "#### ", "# #  ", "#  # ", "#   #"],
    "S": [" ####", "#    ", "#    ", " ### ", "    #", "    #", "#### "],
    "T": ["#####", "  #  ", "  #  ", "  #  ", "  #  ", "  #  ", "  #  "],
    "U": ["#   #", "#   #", "#   #", "#   #", "#   #", "#   #", " ### "],
    "V": ["#   #", "#   #", "#   #", "#   #", "#   #", " # # ", "  #  "],
    "W": ["#   #", "#   #", "#   #", "# # #", "# # #", "## ##", "#   #"],
    "X": ["#   #", "#   #", " # # ", "  #  ", " # # ", "#   #", "#   #"],
    "Y": ["#   #", "#   #", " # # ", "  #  ", "  #  ", "  #  ", "  #  "],
    "Z": ["#####", "    #", "   # ", "  #  ", " #   ", "#    ", "#####"],
    "[": [" ### ", " #   ", " #   ", " #   ", " #   ", " #   ", " ### "],
    "\\": ["#    ", " #   ", " #   ", "  #  ", "   # ", "   # ", "    #"],
    "]": [" ### ", "   # ", "   # ", "   # ", "   # ", "   # ", " ### "],
    "^": ["  #  ", " # # ", "#   #", "     ", "     ", "     ", "     "],
    "_": ["     ", "     ", "     ", "     ", "     ", "     ", "#####"],
    "`": [" #   ", "  #  ", "     ", "     ", "     ", "     ", "     "],
    "{": ["   ##", "  #  ", "  #  ", " #   ", "  #  ", "  #  ", "   ##"],
    "|": ["  #  ", "  #  ", "  #  ", "  #  ", "  #  ", "  #  ", "  #  "],
    "}": ["##   ", "  #  ", "  #  ", "   # ", "  #  ", "  #  ", "##   "],
    "~": ["     ", "     ", " #   ", "# # #", "   # ", "     ", "     "],
}

_FALLBACK = ["#####", "#   #", "#   #", "#   #", "#   #", "#   #", "#####"]


def _rows_for(char: str) -> List[str]:
    if char in _GLYPHS:
        return _GLYPHS[char]
    upper = char.upper()
    if upper in _GLYPHS:
        return _GLYPHS[upper]
    return _FALLBACK


@lru_cache(maxsize=1024)
def glyph_bitmap(char: str, scale: int = 1) -> Bitmap:
    """Return the (cached) bitmap for one character at integer ``scale``."""
    rows = _rows_for(char)
    base = Bitmap.from_rows(rows, ink="#")
    if scale == 1:
        return base
    return base.scaled(GLYPH_WIDTH * scale, GLYPH_HEIGHT * scale)


def render_text(text: str, scale: int = 1, tracking: int = 1) -> Bitmap:
    """Render ``text`` into a fresh bitmap.

    ``tracking`` is the blank columns between glyphs (scaled).  Tabs
    advance four glyph cells, matching :class:`FontMetrics`.
    """
    advance = (GLYPH_WIDTH + tracking) * scale
    cells = len(text) + 3 * text.count("\t")
    out = Bitmap(max(cells * advance, 0), GLYPH_HEIGHT * scale)
    x = 0
    for char in text:
        if char == "\t":
            x += 4 * advance
            continue
        out.blit(glyph_bitmap(char, scale), x, 0, mode="or")
        x += advance
    return out
