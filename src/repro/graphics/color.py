"""Colors for the graphics layer.

The displays the Andrew Toolkit targeted in 1988 were 1-bit monochrome;
drawing was done with *transfer functions* (copy, invert, white, black).
We keep that model — a :class:`Color` is fundamentally an intensity, and
:class:`TransferMode` enumerates the raster-op the drawable applies — but
carry full RGB so the raster backend can render richer images.
"""

from __future__ import annotations

import enum
from typing import Dict, Tuple

__all__ = ["Color", "TransferMode", "BLACK", "WHITE", "named_color"]


class TransferMode(enum.Enum):
    """Raster transfer functions, after the original graphic class."""

    COPY = "copy"          # source replaces destination
    INVERT = "invert"      # destination = NOT destination (selection flash)
    BLACK = "black"        # paint black regardless of source
    WHITE = "white"        # paint white regardless of source (erase)
    OR = "or"              # destination |= source  (1-bit overlay)
    AND = "and"            # destination &= source


class Color:
    """An immutable RGB color with 1-bit projection.

    :meth:`bit` collapses the color to the monochrome value an Andrew
    display would have shown; the ascii window system uses it to pick a
    glyph and the raster system keeps full RGB.
    """

    __slots__ = ("r", "g", "b")

    def __init__(self, r: int, g: int, b: int) -> None:
        for component in (r, g, b):
            if not 0 <= int(component) <= 255:
                raise ValueError(f"color component {component} outside 0..255")
        object.__setattr__(self, "r", int(r))
        object.__setattr__(self, "g", int(g))
        object.__setattr__(self, "b", int(b))

    def __setattr__(self, name, value):
        raise AttributeError("Color is immutable")

    @property
    def luminance(self) -> int:
        """Rec. 601 luma, 0..255."""
        return (299 * self.r + 587 * self.g + 114 * self.b) // 1000

    def bit(self) -> int:
        """1 if this color would paint 'ink' on a 1-bit display, else 0."""
        return 1 if self.luminance < 128 else 0

    def inverted(self) -> "Color":
        return Color(255 - self.r, 255 - self.g, 255 - self.b)

    def as_tuple(self) -> Tuple[int, int, int]:
        return (self.r, self.g, self.b)

    def __eq__(self, other) -> bool:
        return isinstance(other, Color) and self.as_tuple() == other.as_tuple()

    def __hash__(self) -> int:
        return hash(self.as_tuple())

    def __repr__(self) -> str:
        return f"Color({self.r}, {self.g}, {self.b})"


BLACK = Color(0, 0, 0)
WHITE = Color(255, 255, 255)

_NAMED: Dict[str, Color] = {
    "black": BLACK,
    "white": WHITE,
    "red": Color(205, 52, 40),
    "green": Color(46, 139, 87),
    "blue": Color(58, 91, 199),
    "yellow": Color(222, 190, 28),
    "gray": Color(128, 128, 128),
    "grey": Color(128, 128, 128),
}


def named_color(name: str) -> Color:
    """Resolve a small set of X-style color names.

    Raises :class:`KeyError` for unknown names; component code that
    accepts user color strings should catch it and fall back to black.
    """
    return _NAMED[name.lower()]
