"""The drawable: the toolkit's output abstraction (paper section 4).

"The graphics layer is built using a third type of object, the
*drawable*.  A drawable contains information about the underlying
graphics medium ... the window to draw in, the location of the drawable
in that window, a small graphics state (e.g. current point, line
thickness, current font), the coordinate system for the drawable."

:class:`Graphic` reproduces that object.  It carries the graphics state
and coordinate system and exposes X.11-flavoured drawing operations;
each window system backend subclasses it with a handful of device
primitives (``device_*`` methods).  Views never see the device — they
receive a :class:`Graphic` and may split off *child* drawables for their
subviews with :meth:`child`, which is how screen space flows down the
view tree.

Because a drawable is just a coordinate system plus device, a view can
be pointed at a *printer* drawable and redrawn to produce hardcopy — the
paper's default-printing design, reproduced in
``repro/wm/printer.py`` and exercised by experiment E11.
"""

from __future__ import annotations

import copy
import math
from typing import List, Optional, Tuple

from ..testing import faultinject
from .color import BLACK, Color, TransferMode
from .fontdesc import FontDesc, FontMetrics
from .geometry import Point, Rect
from .image import Bitmap

__all__ = ["Graphic", "GraphicsState"]

DEFAULT_FONT = FontDesc("andy", 12)


class GraphicsState:
    """The drawable's "small graphics state" from the paper."""

    __slots__ = ("current_point", "font", "color", "transfer_mode", "line_width")

    def __init__(self) -> None:
        self.current_point = Point(0, 0)
        self.font = DEFAULT_FONT
        self.color = BLACK
        self.transfer_mode = TransferMode.COPY
        self.line_width = 1

    def clone(self) -> "GraphicsState":
        state = GraphicsState()
        state.current_point = self.current_point
        state.font = self.font
        state.color = self.color
        state.transfer_mode = self.transfer_mode
        state.line_width = self.line_width
        return state


class Graphic:
    """Abstract drawable; backends provide the ``device_*`` primitives.

    Local coordinates start at ``(0, 0)`` in the drawable's upper-left
    corner; ``origin`` maps local to device coordinates, and ``clip``
    (device coordinates) bounds every device write.  All the clipping
    and translation happens here, so device primitives may assume their
    arguments are in-bounds device coordinates.

    A drawable may carry a :class:`~repro.graphics.batch.CommandBuffer`
    (``_buffer``, attached by the backend window when ``ANDREW_BATCH``
    is on): the ``_emit_*`` dispatchers below then record device ops
    instead of executing them, and the buffer replays the frame in one
    device pass at flush.  Child drawables share the parent's buffer —
    the whole window records into one op stream, in drawing order.
    """

    #: Attached command buffer; ``None`` means execute immediately.
    _buffer = None

    def __init__(self, origin: Point = Point(0, 0), clip: Optional[Rect] = None):
        self.origin = origin
        w, h = self.device_size()
        device_bounds = Rect(0, 0, w, h)
        self.clip = device_bounds if clip is None else clip.intersection(device_bounds)
        self.state = GraphicsState()

    # ------------------------------------------------------------------
    # Device primitives: backends must implement these five.
    # ------------------------------------------------------------------

    def device_size(self) -> Tuple[int, int]:
        """Total device extent in device units (pixels or cells)."""
        raise NotImplementedError

    def device_fill_rect(self, rect: Rect, value: int) -> None:
        """Fill ``rect`` with ink (1), background (0) or inversion (-1)."""
        raise NotImplementedError

    def device_set_pixel(self, x: int, y: int, value: int) -> None:
        """Write one device unit; ``value`` as for fill."""
        raise NotImplementedError

    def device_draw_text(self, x: int, y: int, text: str, font: FontDesc) -> None:
        """Draw ``text`` with its top-left corner at ``(x, y)``."""
        raise NotImplementedError

    def font_metrics(self, desc: FontDesc) -> FontMetrics:
        """Measure ``desc`` on this medium."""
        raise NotImplementedError

    # Optional fast paths; default to the generic primitives.

    def device_hline(self, x0: int, x1: int, y: int, value: int) -> None:
        self.device_fill_rect(Rect(min(x0, x1), y, abs(x1 - x0) + 1, 1), value)

    def device_vline(self, x: int, y0: int, y1: int, value: int) -> None:
        self.device_fill_rect(Rect(x, min(y0, y1), 1, abs(y1 - y0) + 1), value)

    def device_blit(self, bitmap: Bitmap, x: int, y: int) -> None:
        for by in range(bitmap.height):
            for bx in range(bitmap.width):
                if bitmap.get(bx, by):
                    self.device_set_pixel(x + bx, y + by, 1)

    #: True on backends whose surface supports a same-surface region
    #: copy (:meth:`device_copy_area`); scroll shift-blit keys off it.
    can_copy_area = False

    def device_copy_area(self, rect: Rect, dx: int, dy: int) -> None:
        """Copy ``rect`` (device coords) to ``rect.offset(dx, dy)`` on
        the same surface, overlap-safe.  Optional: only backends that
        declare :attr:`can_copy_area` implement it."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Op dispatch: record into the command buffer, or hit the device.
    # Every drawing operation below funnels device work through these,
    # so batching needs no cooperation from individual ops.
    # ------------------------------------------------------------------

    def settle(self) -> None:
        """Drain the attached command buffer, if any.

        Direct surface writes (``OffscreenWindow.copy_to``) call this
        first so the blit lands on settled pixels, in recording order.
        """
        if self._buffer is not None:
            self._buffer.flush()

    def _emit_fill_rect(self, rect: Rect, value: int) -> None:
        if faultinject.enabled:
            faultinject.maybe_raise("wm.device")
        if self._buffer is not None:
            self._buffer.record_fill(rect, value)
        else:
            self.device_fill_rect(rect, value)

    def _emit_hline(self, x0: int, x1: int, y: int, value: int) -> None:
        if self._buffer is not None:
            self._buffer.record_hline(x0, x1, y, value)
        else:
            self.device_hline(x0, x1, y, value)

    def _emit_vline(self, x: int, y0: int, y1: int, value: int) -> None:
        if self._buffer is not None:
            self._buffer.record_vline(x, y0, y1, value)
        else:
            self.device_vline(x, y0, y1, value)

    def _emit_pixel(self, x: int, y: int, value: int) -> None:
        if self._buffer is not None:
            self._buffer.record_pixel(x, y, value)
        else:
            self.device_set_pixel(x, y, value)

    def _emit_text(self, x: int, y: int, text: str, font: FontDesc,
                   metrics: FontMetrics) -> None:
        if faultinject.enabled:
            faultinject.maybe_raise("wm.device")
        if self._buffer is not None:
            # The device crops clip-split glyphs, so the op must carry
            # the clip it was recorded under.
            self._buffer.record_text(x, y, text, font, self.clip, metrics)
        else:
            self.device_draw_text(x, y, text, font)

    def _emit_blit(self, bitmap: Bitmap, x: int, y: int) -> None:
        if self._buffer is not None:
            self._buffer.record_blit(bitmap, x, y)
        else:
            self.device_blit(bitmap, x, y)

    def copy_area(self, rect: Rect, dx: int, dy: int) -> None:
        """Shift the pixels of ``rect`` (local coords) by ``(dx, dy)``
        on the same surface.

        Both the source and the destination are restricted to ``rect``
        *and* the clip: a scroll of an area must never write outside
        that area (the rows uncovered by the move are damage, not copy
        targets), and pixels outside the clip are neither read nor
        written, so a shift can never smear another view's ink into
        this one.  A no-op when the backend lacks
        :attr:`can_copy_area` support or nothing survives clipping.
        """
        if (dx == 0 and dy == 0) or not self.can_copy_area:
            return
        device = self.rect_to_device(rect)
        src = device.intersection(device.offset(-dx, -dy))
        src = src.intersection(self.clip)
        src = src.intersection(self.clip.offset(-dx, -dy))
        if src.is_empty():
            return
        self._emit_copy_area(src, dx, dy)

    def _emit_copy_area(self, rect: Rect, dx: int, dy: int) -> None:
        if faultinject.enabled:
            faultinject.maybe_raise("wm.device")
        if self._buffer is not None:
            self._buffer.record_copy_area(rect, dx, dy)
        else:
            self.device_copy_area(rect, dx, dy)

    # ------------------------------------------------------------------
    # Coordinate system & clipping
    # ------------------------------------------------------------------

    @property
    def bounds(self) -> Rect:
        """This drawable's extent, in local coordinates."""
        return self.clip.offset(-self.origin.x, -self.origin.y)

    @property
    def width(self) -> int:
        return self.clip.width

    @property
    def height(self) -> int:
        return self.clip.height

    def to_device(self, point: Point) -> Point:
        return point.offset(self.origin.x, self.origin.y)

    def rect_to_device(self, rect: Rect) -> Rect:
        return rect.offset(self.origin.x, self.origin.y)

    def child(self, rect: Rect) -> "Graphic":
        """A drawable for ``rect`` (local coords) of this drawable.

        The child shares the device; its origin is shifted and its clip
        is the intersection of ``rect`` with this clip, so a child can
        never draw outside the space its parent allocated — the visual
        containment invariant of the view tree (§3).
        """
        clone = copy.copy(self)
        clone.origin = self.to_device(rect.origin)
        clone.clip = self.clip.intersection(self.rect_to_device(rect))
        clone.state = self.state.clone()
        return clone

    def _ink(self) -> int:
        mode = self.state.transfer_mode
        if mode == TransferMode.INVERT:
            return -1
        if mode == TransferMode.WHITE:
            return 0
        if mode == TransferMode.BLACK:
            return 1
        return self.state.color.bit()

    # ------------------------------------------------------------------
    # Graphics state
    # ------------------------------------------------------------------

    def set_font(self, font: FontDesc) -> None:
        self.state.font = font

    def set_color(self, color: Color) -> None:
        self.state.color = color

    def set_transfer_mode(self, mode: TransferMode) -> None:
        self.state.transfer_mode = mode

    def set_line_width(self, width: int) -> None:
        self.state.line_width = max(1, int(width))

    def move_to(self, x: int, y: int) -> None:
        """Set the current point (local coordinates)."""
        self.state.current_point = Point(x, y)

    # ------------------------------------------------------------------
    # Drawing operations (all take local coordinates)
    # ------------------------------------------------------------------

    def clear(self) -> None:
        """Erase the whole drawable to background."""
        if not self.clip.is_empty():
            self._emit_fill_rect(self.clip, 0)

    def fill_rect(self, rect: Rect, value: Optional[int] = None) -> None:
        device = self.rect_to_device(rect).intersection(self.clip)
        if not device.is_empty():
            self._emit_fill_rect(device, self._ink() if value is None else value)

    def erase_rect(self, rect: Rect) -> None:
        self.fill_rect(rect, 0)

    def invert_rect(self, rect: Rect) -> None:
        """Flip a rectangle — the classic selection-highlight op."""
        self.fill_rect(rect, -1)

    def draw_rect(self, rect: Rect) -> None:
        """Outline ``rect`` (its border lies inside the rect)."""
        if rect.width <= 0 or rect.height <= 0:
            return
        self.draw_hline(rect.left, rect.right - 1, rect.top)
        self.draw_hline(rect.left, rect.right - 1, rect.bottom - 1)
        if rect.height > 2:
            self.draw_vline(rect.left, rect.top + 1, rect.bottom - 2)
            self.draw_vline(rect.right - 1, rect.top + 1, rect.bottom - 2)

    def draw_hline(self, x0: int, x1: int, y: int) -> None:
        device_y = y + self.origin.y
        if not (self.clip.top <= device_y < self.clip.bottom):
            return
        left = max(min(x0, x1) + self.origin.x, self.clip.left)
        right = min(max(x0, x1) + self.origin.x, self.clip.right - 1)
        if left <= right:
            self._emit_hline(left, right, device_y, self._ink())

    def draw_vline(self, x: int, y0: int, y1: int) -> None:
        device_x = x + self.origin.x
        if not (self.clip.left <= device_x < self.clip.right):
            return
        top = max(min(y0, y1) + self.origin.y, self.clip.top)
        bottom = min(max(y0, y1) + self.origin.y, self.clip.bottom - 1)
        if top <= bottom:
            self._emit_vline(device_x, top, bottom, self._ink())

    def draw_line(self, x0: int, y0: int, x1: int, y1: int) -> None:
        """Draw a line segment; axis-aligned cases take the fast path."""
        if y0 == y1:
            self.draw_hline(x0, x1, y0)
        elif x0 == x1:
            self.draw_vline(x0, y0, y1)
        else:
            self._bresenham(x0, y0, x1, y1)
        self.state.current_point = Point(x1, y1)

    def line_to(self, x: int, y: int) -> None:
        """Draw from the current point, leaving the pen at ``(x, y)``."""
        start = self.state.current_point
        self.draw_line(start.x, start.y, x, y)

    def _bresenham(self, x0: int, y0: int, x1: int, y1: int) -> None:
        ink = self._ink()
        dx = abs(x1 - x0)
        dy = -abs(y1 - y0)
        sx = 1 if x0 < x1 else -1
        sy = 1 if y0 < y1 else -1
        err = dx + dy
        x, y = x0, y0
        while True:
            device = Point(x + self.origin.x, y + self.origin.y)
            if self.clip.contains_point(device):
                self._emit_pixel(device.x, device.y, ink)
            if x == x1 and y == y1:
                break
            e2 = 2 * err
            if e2 >= dy:
                err += dy
                x += sx
            if e2 <= dx:
                err += dx
                y += sy

    def draw_polyline(self, points: List[Point], closed: bool = False) -> None:
        if len(points) < 2:
            return
        for a, b in zip(points, points[1:]):
            self.draw_line(a.x, a.y, b.x, b.y)
        if closed:
            self.draw_line(points[-1].x, points[-1].y, points[0].x, points[0].y)

    def draw_ellipse(self, rect: Rect) -> None:
        """Outline the ellipse inscribed in ``rect`` (midpoint walk)."""
        if rect.width <= 0 or rect.height <= 0:
            return
        # Semi-axes chosen so the ellipse is inscribed: the extreme
        # pixels land on the rect's inclusive edges, never outside.
        a = max((rect.width - 1) / 2, 0.5)
        b = max((rect.height - 1) / 2, 0.5)
        cx = rect.left + (rect.width - 1) / 2
        cy = rect.top + (rect.height - 1) / 2
        ink = self._ink()
        # Parametric walk dense enough to leave no gaps at these sizes.
        steps = max(8, int(4 * (a + b)))
        prev = None
        for i in range(steps + 1):
            theta = 2 * math.pi * i / steps
            x = round(cx + a * math.cos(theta))
            y = round(cy + b * math.sin(theta))
            if (x, y) != prev:
                device = Point(x + self.origin.x, y + self.origin.y)
                if self.clip.contains_point(device):
                    self._emit_pixel(device.x, device.y, ink)
                prev = (x, y)

    def draw_string(self, x: int, y: int, text: str) -> None:
        """Draw ``text`` with its top-left at ``(x, y)`` in the current font.

        A glyph draws whenever its box *intersects* the clip; glyphs
        wholly outside are dropped here and the device crops any glyph
        the clip edge splits.  A damage rect that splits a text line
        (or a glyph column) therefore still repairs exactly its share
        of the pixels — required for partial-expose repaints to be
        idempotent.  On cell devices a clip cannot split the one-cell
        glyphs, so this degenerates to whole-glyph clipping there.
        """
        if not text:
            return
        metrics = self.font_metrics(self.state.font)
        device_y = y + self.origin.y
        if (device_y >= self.clip.bottom
                or device_y + metrics.height <= self.clip.top):
            return
        device_x = x + self.origin.x
        # Drop leading glyphs wholly left of the clip.
        while text:
            advance = metrics.char_width * (4 if text[0] == "\t" else 1)
            if device_x + advance > self.clip.left:
                break
            device_x += advance
            text = text[1:]
        if not text or device_x >= self.clip.right:
            return
        # Drop trailing glyphs wholly right of the clip.
        fit, run_x = 0, device_x
        while fit < len(text) and run_x < self.clip.right:
            run_x += metrics.char_width * (4 if text[fit] == "\t" else 1)
            fit += 1
        text = text[:fit]
        if text:
            self._emit_text(device_x, device_y, text, self.state.font, metrics)

    def draw_string_centered(self, rect: Rect, text: str) -> None:
        """Draw ``text`` centered inside ``rect``."""
        metrics = self.font_metrics(self.state.font)
        x = rect.left + max(0, (rect.width - metrics.string_width(text)) // 2)
        y = rect.top + max(0, (rect.height - metrics.height) // 2)
        self.draw_string(x, y, text)

    def string_width(self, text: str) -> int:
        return self.font_metrics(self.state.font).string_width(text)

    def line_height(self) -> int:
        return self.font_metrics(self.state.font).height

    def draw_bitmap(self, bitmap: Bitmap, x: int, y: int) -> None:
        """Paint the ink pixels of ``bitmap`` at local ``(x, y)``.

        The generic implementation clips pixel-by-pixel; backends with a
        rectangular framebuffer override :meth:`device_blit` for speed.
        """
        device = self.rect_to_device(Rect(x, y, bitmap.width, bitmap.height))
        visible = device.intersection(self.clip)
        if visible.is_empty():
            return
        if visible == device:
            self._emit_blit(bitmap, device.left, device.top)
        else:
            cropped = bitmap.crop(visible.offset(-device.left, -device.top))
            self._emit_blit(cropped, visible.left, visible.top)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} origin={tuple(self.origin)} "
            f"clip={tuple(self.clip)}>"
        )
