"""1-bit raster images.

The displays of the original system were monochrome bitmaps, and the
toolkit's raster component manipulated 1-bit images.  :class:`Bitmap`
is the shared representation: the raster data object stores one, the
raster window-system backend uses one as its framebuffer, and the
off-screen-window porting class wraps one.

Pixels are 0 (white/background) or 1 (black/ink), stored row-major in a
``bytearray`` for compactness and fast blits.
"""

from __future__ import annotations

from typing import Iterable, List

from .geometry import Rect

__all__ = ["Bitmap"]


class Bitmap:
    """A mutable width x height grid of 1-bit pixels."""

    __slots__ = ("width", "height", "_bits")

    def __init__(self, width: int, height: int, fill: int = 0) -> None:
        if width < 0 or height < 0:
            raise ValueError(f"bitmap dimensions must be >= 0, got {width}x{height}")
        self.width = int(width)
        self.height = int(height)
        self._bits = bytearray([1 if fill else 0]) * (self.width * self.height)

    # -- pixel access ----------------------------------------------------

    def _index(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise IndexError(f"pixel ({x}, {y}) outside {self.width}x{self.height}")
        return y * self.width + x

    def get(self, x: int, y: int) -> int:
        """Return the pixel at ``(x, y)`` (0 or 1)."""
        return self._bits[self._index(x, y)]

    def set(self, x: int, y: int, value: int = 1) -> None:
        """Set the pixel at ``(x, y)``."""
        self._bits[self._index(x, y)] = 1 if value else 0

    def get_safe(self, x: int, y: int, default: int = 0) -> int:
        """Like :meth:`get` but returning ``default`` out of bounds."""
        if 0 <= x < self.width and 0 <= y < self.height:
            return self._bits[y * self.width + x]
        return default

    def set_safe(self, x: int, y: int, value: int = 1) -> None:
        """Like :meth:`set` but silently ignoring out-of-bounds writes."""
        if 0 <= x < self.width and 0 <= y < self.height:
            self._bits[y * self.width + x] = 1 if value else 0

    @property
    def bounds(self) -> Rect:
        return Rect(0, 0, self.width, self.height)

    def ink_count(self) -> int:
        """Number of 1 pixels (useful for tests and snapshots)."""
        return sum(self._bits)

    # -- whole-image operations -------------------------------------------

    def clear(self, value: int = 0) -> None:
        fill = 1 if value else 0
        for i in range(len(self._bits)):
            self._bits[i] = fill

    def invert(self) -> None:
        """Flip every pixel in place."""
        for i in range(len(self._bits)):
            self._bits[i] ^= 1

    def invert_rect(self, rect: Rect) -> None:
        """Flip the pixels inside ``rect`` (clipped to the image)."""
        clipped = self.bounds.intersection(rect)
        for y in range(clipped.top, clipped.bottom):
            base = y * self.width
            for x in range(clipped.left, clipped.right):
                self._bits[base + x] ^= 1

    def fill_rect(self, rect: Rect, value: int = 1) -> None:
        """Set every pixel inside ``rect`` (clipped) to ``value``."""
        clipped = self.bounds.intersection(rect)
        fill = 1 if value else 0
        for y in range(clipped.top, clipped.bottom):
            base = y * self.width
            for x in range(clipped.left, clipped.right):
                self._bits[base + x] = fill

    def copy(self) -> "Bitmap":
        clone = Bitmap(self.width, self.height)
        clone._bits[:] = self._bits
        return clone

    def crop(self, rect: Rect) -> "Bitmap":
        """Return the sub-image under ``rect`` (clipped to bounds)."""
        clipped = self.bounds.intersection(rect)
        out = Bitmap(clipped.width, clipped.height)
        for y in range(clipped.height):
            src = (clipped.top + y) * self.width + clipped.left
            dst = y * clipped.width
            out._bits[dst:dst + clipped.width] = self._bits[src:src + clipped.width]
        return out

    def scaled(self, new_width: int, new_height: int) -> "Bitmap":
        """Nearest-neighbour scale to ``new_width`` x ``new_height``."""
        out = Bitmap(new_width, new_height)
        if self.width == 0 or self.height == 0:
            return out
        for y in range(new_height):
            sy = y * self.height // new_height
            base_src = sy * self.width
            base_dst = y * new_width
            for x in range(new_width):
                sx = x * self.width // new_width
                out._bits[base_dst + x] = self._bits[base_src + sx]
        return out

    def blit(
        self,
        source: "Bitmap",
        dest_x: int,
        dest_y: int,
        mode: str = "copy",
    ) -> None:
        """Copy ``source`` onto this bitmap at ``(dest_x, dest_y)``.

        ``mode`` is ``"copy"``, ``"or"``, ``"and"`` or ``"xor"``;
        out-of-bounds parts of the source are clipped away.
        """
        if mode not in ("copy", "or", "and", "xor"):
            raise ValueError(f"unknown blit mode {mode!r}")
        target = self.bounds.intersection(
            Rect(dest_x, dest_y, source.width, source.height)
        )
        for y in range(target.top, target.bottom):
            sy = y - dest_y
            src_base = sy * source.width
            dst_base = y * self.width
            for x in range(target.left, target.right):
                sx = x - dest_x
                src = source._bits[src_base + sx]
                dst_i = dst_base + x
                if mode == "copy":
                    self._bits[dst_i] = src
                elif mode == "or":
                    self._bits[dst_i] |= src
                elif mode == "and":
                    self._bits[dst_i] &= src
                else:  # xor
                    self._bits[dst_i] ^= src

    # -- text form (the §5 "row per line" external format) -----------------

    def to_rows(self, ink: str = "*", blank: str = ".") -> List[str]:
        """Render as strings, one per row — the §5 raster guideline that
        "the bits representing a new row always begin on a new line"."""
        rows = []
        for y in range(self.height):
            base = y * self.width
            rows.append(
                "".join(
                    ink if self._bits[base + x] else blank
                    for x in range(self.width)
                )
            )
        return rows

    @classmethod
    def from_rows(cls, rows: Iterable[str], ink: str = "*") -> "Bitmap":
        """Inverse of :meth:`to_rows`; short rows are padded with blanks."""
        rows = list(rows)
        height = len(rows)
        width = max((len(r) for r in rows), default=0)
        out = cls(width, height)
        for y, row in enumerate(rows):
            base = y * width
            for x, ch in enumerate(row):
                if ch == ink:
                    out._bits[base + x] = 1
        return out

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Bitmap)
            and self.width == other.width
            and self.height == other.height
            and self._bits == other._bits
        )

    def __hash__(self):
        raise TypeError("Bitmap is mutable and unhashable")

    def __repr__(self) -> str:
        return f"Bitmap({self.width}x{self.height}, ink={self.ink_count()})"
