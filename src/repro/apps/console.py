"""Console: the system monitor (paper §1).

"... a system monitor (console) that displays status information such
as the time, date, CPU load and file system information."

The substrate is :class:`SystemStats`, a deterministic simulated
machine (clock, load average, filesystem fill levels) advanced by timer
ticks, so the console's display machinery — labels and little bar
gauges updating from an observable data object — runs identically every
time.  :class:`StatsData` is a proper data object: the console *views*
observe it, so the console is one more example of the §2 architecture
rather than a special case.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.application import Application
from ..core.dataobject import DataObject
from ..core.view import View
from ..components.frame import Frame
from ..components.label import Label
from ..graphics.geometry import Rect
from ..graphics.graphic import Graphic
from ..sim.paging import Lcg
from ..wm.events import TimerEvent

__all__ = ["SystemStats", "StatsData", "GaugeView", "ConsoleApp"]


class SystemStats:
    """A simulated workstation's instruments."""

    def __init__(self, seed: int = 7) -> None:
        self._rng = Lcg(seed)
        self.minutes = 9 * 60 + 30          # 09:30
        self.day = 11
        self.load = 0.42
        self.filesystems: Dict[str, float] = {"/": 0.63, "/usr": 0.81,
                                              "/afs cache": 0.37}
        self.mail_waiting = 0

    def advance(self) -> None:
        """One tick = one simulated minute."""
        self.minutes += 1
        if self.minutes >= 24 * 60:
            self.minutes = 0
            self.day += 1
        # Load drifts; filesystems creep up and occasionally get cleaned.
        drift = (self._rng.randint(0, 20) - 10) / 100.0
        self.load = min(4.0, max(0.05, self.load + drift))
        for name in self.filesystems:
            fill = self.filesystems[name] + self._rng.randint(0, 3) / 1000.0
            if fill > 0.98:
                fill = 0.55
            self.filesystems[name] = fill
        if self._rng.chance(1, 10):
            self.mail_waiting += 1

    def clock(self) -> str:
        hours, minutes = divmod(self.minutes, 60)
        return f"{hours:02}:{minutes:02}"

    def date(self) -> str:
        return f"February {self.day}, 1988"


class StatsData(DataObject):
    """Observable wrapper so console views follow the §2 protocol."""

    atk_name = "consolestats"

    def __init__(self, stats: Optional[SystemStats] = None) -> None:
        super().__init__()
        self.stats = stats if stats is not None else SystemStats()

    def tick(self) -> None:
        self.stats.advance()
        self.changed("stats")


class GaugeView(View):
    """A labelled horizontal gauge showing a 0..1 value."""

    atk_name = "gaugeview"

    def __init__(self, dataobject: StatsData, label: str,
                 probe) -> None:
        super().__init__(dataobject)
        self.label = label
        self.probe = probe  # StatsData -> float in 0..1

    def draw(self, graphic: Graphic) -> None:
        value = max(0.0, min(1.0, self.probe(self.dataobject)))
        label_width = 11
        graphic.draw_string(0, 0, f"{self.label:<10}"[:label_width])
        track = max(1, self.width - label_width - 6)
        filled = round(value * track)
        graphic.draw_rect(Rect(label_width, 0, track, 1))
        graphic.fill_rect(Rect(label_width, 0, filled, 1), 1)
        graphic.draw_string(label_width + track + 1, 0, f"{value:4.0%}")


class ConsoleApp(Application):
    """The console window: clock, load, filesystems, mail."""

    atk_name = "consoleapp"
    app_name = "console"
    default_size = (48, 10)

    def __init__(self, stats: Optional[SystemStats] = None, **kwargs) -> None:
        self._initial_stats = stats
        super().__init__(**kwargs)

    def build(self) -> None:
        self.stats_data = StatsData(self._initial_stats)
        body = _ConsoleBody(self.stats_data)
        self.frame = Frame(body)
        self.im.set_child(self.frame)
        self.im.add_timer_subscriber(body)

    def tick(self, count: int = 1) -> None:
        """Advance simulated time and let the views repaint."""
        self.im.tick(count)
        self.process()


class _ConsoleBody(View):
    """Stacks the console's instrument views."""

    atk_name = "consolebody"

    def __init__(self, stats_data: StatsData) -> None:
        super().__init__(stats_data)
        self.clock_label = Label("", centered=True)
        self.add_child(self.clock_label)
        self.gauges: List[GaugeView] = [
            GaugeView(stats_data, "CPU load",
                      lambda d: d.stats.load / 4.0),
        ]
        for name in sorted(stats_data.stats.filesystems):
            self.gauges.append(
                GaugeView(stats_data, name,
                          lambda d, _n=name: d.stats.filesystems[_n])
            )
        for gauge in self.gauges:
            self.add_child(gauge)
        self.mail_label = Label("")
        self.add_child(self.mail_label)
        self._refresh_labels()

    @property
    def stats_data(self) -> StatsData:
        return self.dataobject

    def _refresh_labels(self) -> None:
        stats = self.stats_data.stats
        self.clock_label.set_text(
            f"{stats.date()}   {stats.clock()}"
        )
        self.mail_label.set_text(
            f"Mail waiting: {stats.mail_waiting}"
            if stats.mail_waiting else "No new mail"
        )

    def layout(self) -> None:
        row = 0
        self.clock_label.set_bounds(Rect(0, row, self.width, 1))
        row += 2
        for gauge in self.gauges:
            if row >= self.height:
                gauge.set_bounds(Rect(0, 0, 0, 0))
                continue
            gauge.set_bounds(Rect(1, row, max(0, self.width - 2), 1))
            row += 1
        self.mail_label.set_bounds(
            Rect(0, min(row, max(0, self.height - 1)), self.width, 1)
        )

    def handle_timer(self, event: TimerEvent) -> None:
        self.stats_data.tick()

    def on_data_changed(self, change) -> None:
        self._refresh_labels()
        self.want_update()
