"""The basic toolkit applications (paper sections 1 and 9).

"The basic toolkit applications (editor, mail, help, preview,
typescript, console) have been in general use on the Carnegie Mellon
campus for the past four months."

Importing this package registers every application with the class
system (as ``<name>app``), which is how
:class:`~repro.core.runapp.RunApp` finds them; an application shipped
only as a plugin file launches the same way via the dynamic loader.
"""

from .console import ConsoleApp, GaugeView, StatsData, SystemStats
from .ez import EZApp
from .help import HelpApp, HelpDatabase, HelpTopic, standard_help_database
from .messages import ComposeApp, Folder, FolderStore, Message, MessagesApp
from .preview import FormattedPage, PreviewApp, PreviewView, TroffFormatter
from .typescript import MiniShell, TypescriptApp, TypescriptView

__all__ = [
    "EZApp",
    "MessagesApp",
    "ComposeApp",
    "Message",
    "Folder",
    "FolderStore",
    "HelpApp",
    "HelpDatabase",
    "HelpTopic",
    "standard_help_database",
    "TypescriptApp",
    "TypescriptView",
    "MiniShell",
    "ConsoleApp",
    "SystemStats",
    "StatsData",
    "GaugeView",
    "PreviewApp",
    "PreviewView",
    "TroffFormatter",
    "FormattedPage",
]
