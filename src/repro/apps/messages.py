"""Messages: the multi-media mail system (paper §1, Figures 3 and 4).

"Since both the mail and help applications use the text component for
the display of information, they automatically inherit the multi-media
functionality of the text component" — a message body is a text
document, so it can carry drawings (Fig. 3's displayed message),
rasters (Fig. 4's big cat), tables, or any dynamically loaded
component, and "it can be sent in a mail message as easily as edited in
a document."

The substrate is :class:`FolderStore`, an in-memory message database
standing in for the campus bulletin-board/mail servers: folders hold
messages whose bodies are datastream text.  Bodies are stored *as
datastream text* and parsed on read, so mail transport really exercises
the 7-bit external representation (§5's "transport files across almost
all networks (especially as mail)").

:class:`MessagesApp` is the Fig. 3 reading window — folder panel on the
left, captions over the message body on the right.  :class:`ComposeApp`
is the Fig. 4 composition window.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from ..core.application import Application
from ..core.datastream import read_document, write_document
from ..components.frame import Frame
from ..components.label import Label
from ..components.listview import ListView
from ..components.scrollbar import ScrollBar
from ..components.split import SplitView
from ..components.text import TextData, TextView

__all__ = ["Message", "Folder", "FolderStore", "MessagesApp", "ComposeApp"]

_message_ids = itertools.count(1)


class Message:
    """One mail message: headers + a datastream body."""

    def __init__(self, sender: str, to: str, subject: str,
                 body: TextData, date: str = "11-Feb-88") -> None:
        self.id = next(_message_ids)
        self.sender = sender
        self.to = to
        self.subject = subject
        self.date = date
        self.read = False
        # Transport form: the body travels as 7-bit datastream text.
        self.body_stream = write_document(body)

    def body(self) -> TextData:
        """Parse the transported body back into a document."""
        document = read_document(self.body_stream)
        if not isinstance(document, TextData):
            wrapper = TextData()
            wrapper.append_object(document)
            return wrapper
        return document

    def caption(self) -> str:
        """The caption-panel line: date, subject, sender, size."""
        return (
            f"{self.date}  {self.subject} - {self.sender} "
            f"({len(self.body_stream)})"
        )

    def __repr__(self) -> str:
        return f"<message #{self.id} {self.subject!r}>"


class Folder:
    """An ordered list of messages."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.messages: List[Message] = []

    def add(self, message: Message) -> None:
        self.messages.append(message)

    @property
    def unread_count(self) -> int:
        return sum(1 for m in self.messages if not m.read)

    def caption_line(self) -> str:
        """The folder-panel line, Fig. 3 style."""
        marker = f"{self.unread_count} new" if self.unread_count else "none"
        return f"{self.name} ({marker})"

    def __repr__(self) -> str:
        return f"<folder {self.name} ({len(self.messages)})>"


class FolderStore:
    """The message database: all folders on 'campus'.

    Tracks per-user subscriptions so the reading window's folder panel
    "can also be set to display the folders a user is subscribed to or
    just the user's personal folders" (Figure 3's caption).
    """

    def __init__(self) -> None:
        self._folders: Dict[str, Folder] = {}
        self._subscriptions: Dict[str, List[str]] = {}

    def folder(self, name: str) -> Folder:
        """The named folder, created on first use."""
        if name not in self._folders:
            self._folders[name] = Folder(name)
        return self._folders[name]

    def folder_names(self) -> List[str]:
        return sorted(self._folders)

    def folder_count(self) -> int:
        return len(self._folders)

    # -- subscriptions (the Fig. 3 panel modes) -------------------------

    def subscribe(self, user: str, folder_name: str) -> None:
        names = self._subscriptions.setdefault(user, [])
        if folder_name not in names:
            names.append(folder_name)

    def unsubscribe(self, user: str, folder_name: str) -> None:
        names = self._subscriptions.get(user, [])
        if folder_name in names:
            names.remove(folder_name)

    def subscribed_folders(self, user: str) -> List[str]:
        return sorted(self._subscriptions.get(user, []))

    def personal_folders(self, user: str) -> List[str]:
        """The user's own folders: their mailbox tree."""
        prefix = f"mail.{user}"
        return sorted(
            name for name in self._folders
            if name == prefix or name.startswith(prefix + ".")
        )

    def deliver(self, folder_name: str, message: Message) -> None:
        self.folder(folder_name).add(message)

    def send(self, sender: str, to: str, subject: str, body: TextData,
             date: str = "11-Feb-88") -> Message:
        """Compose-and-send: the recipient's mailbox folder gets it."""
        message = Message(sender, to, subject, body, date)
        self.deliver(f"mail.{to}", message)
        return message


class MessagesApp(Application):
    """The Fig. 3 reading window: folders | (captions / body)."""

    atk_name = "messagesapp"
    app_name = "messages"
    default_size = (100, 30)

    #: Folder-panel modes (Fig. 3 caption): every folder on campus, the
    #: user's subscriptions, or just the user's personal folders.
    FOLDER_MODES = ("all", "subscribed", "personal")

    def __init__(self, store: Optional[FolderStore] = None,
                 user: str = "user", **kwargs) -> None:
        self._initial_store = store
        self.user = user
        super().__init__(**kwargs)

    def build(self) -> None:
        self.store = (
            self._initial_store if self._initial_store is not None
            else FolderStore()
        )
        self.folder_mode = "all"
        self.current_folder: Optional[Folder] = None
        self.current_message: Optional[Message] = None

        self.folder_list = ListView(on_select=self._folder_selected)
        self.caption_list = ListView(on_select=self._caption_selected)
        self.body_data = TextData()
        self.body_view = TextView(self.body_data, read_only=True)

        right = SplitView(
            first=ScrollBar(self.caption_list),
            second=ScrollBar(self.body_view),
            vertical=False, ratio=30,
        )
        self.split = SplitView(
            first=ScrollBar(self.folder_list),
            second=right,
            vertical=True, ratio=35,
        )
        self.frame = Frame(self.split)
        self.im.set_child(self.frame)
        self.refresh_folders()
        self._build_menus()

    def _build_menus(self) -> None:
        card = self.frame.menu_card("Messages")
        card.add("Update", lambda v, e: self.refresh_folders())
        card.add("All Folders", lambda v, e: self.set_folder_mode("all"))
        card.add("Subscribed",
                 lambda v, e: self.set_folder_mode("subscribed"))
        card.add("Personal", lambda v, e: self.set_folder_mode("personal"))
        card.add("Reply", lambda v, e: self.reply())
        card.add("Quit", lambda v, e: self.destroy())

    def reply(self) -> Optional["ComposeApp"]:
        """Open a composition window answering the displayed message.

        Headers are pre-filled and the original's plain text is quoted
        ``> `` style; embedded components are not copied (quoting a
        raster made no sense in 1988 either).
        """
        message = self.current_message
        if message is None:
            self.frame.post_message("No message selected")
            return None
        compose = ComposeApp(self.store, sender=self.user,
                             window_system=self.window_system)
        compose.set_to(message.sender)
        subject = message.subject
        if not subject.lower().startswith("re:"):
            subject = f"Re: {subject}"
        compose.set_subject(subject)
        quoted = "".join(
            f"> {line}\n" for line in message.body().plain_text().splitlines()
        )
        compose.body_data.append(
            f"In your message of {message.date} you wrote:\n{quoted}\n"
        )
        compose.body_view.set_dot(compose.body_data.length)
        compose.im.flush_updates()
        return compose

    # -- navigation ------------------------------------------------------

    def set_folder_mode(self, mode: str) -> None:
        """Switch the folder panel between all/subscribed/personal."""
        if mode not in self.FOLDER_MODES:
            raise ValueError(
                f"folder mode must be one of {self.FOLDER_MODES}, "
                f"not {mode!r}"
            )
        self.folder_mode = mode
        self.refresh_folders()

    def visible_folder_names(self) -> List[str]:
        if self.folder_mode == "subscribed":
            return self.store.subscribed_folders(self.user)
        if self.folder_mode == "personal":
            return self.store.personal_folders(self.user)
        return self.store.folder_names()

    def refresh_folders(self) -> None:
        names = self.visible_folder_names()
        self.folder_list.set_items(
            [self.store.folder(n).caption_line() for n in names],
            keep_selection=True,
        )
        if self.folder_mode == "all":
            status = f"All {self.store.folder_count()} Folders"
        else:
            status = (
                f"{len(names)} {self.folder_mode} folder"
                f"{'s' if len(names) != 1 else ''}"
            )
        self.frame.post_message(status)
        self.im.flush_updates()

    def open_folder(self, name: str) -> None:
        self.current_folder = self.store.folder(name)
        self.caption_list.set_items(
            [m.caption() for m in self.current_folder.messages]
        )
        self.frame.post_message(
            f"{name} ({self.current_folder.unread_count} new "
            f"of {len(self.current_folder.messages)})"
        )
        self.im.flush_updates()

    def _folder_selected(self, index: int, item: str) -> None:
        name = self.visible_folder_names()[index]
        self.open_folder(name)

    def open_message(self, index: int) -> None:
        if self.current_folder is None:
            return
        message = self.current_folder.messages[index]
        message.read = True
        self.current_message = message
        body = message.body()
        header = (
            f"From: {message.sender}\nTo: {message.to}\n"
            f"Subject: {message.subject}\nDate: {message.date}\n\n"
        )
        body.insert(0, header)
        self.body_view.set_dataobject(body)
        self.body_view.set_dot(0)
        self.refresh_folders()
        self.im.flush_updates()

    def _caption_selected(self, index: int, item: str) -> None:
        self.open_message(index)


class ComposeApp(Application):
    """The Fig. 4 composition window: headers + multi-media body."""

    atk_name = "composeapp"
    app_name = "compose"
    default_size = (70, 20)

    def __init__(self, store: Optional[FolderStore] = None,
                 sender: str = "user", **kwargs) -> None:
        self._initial_store = store
        self.sender = sender
        super().__init__(**kwargs)

    def build(self) -> None:
        self.store = (
            self._initial_store if self._initial_store is not None
            else FolderStore()
        )
        self.to = ""
        self.subject = ""
        self.header_label = Label(self._header_text())
        self.body_data = TextData()
        self.body_view = TextView(self.body_data)
        split = SplitView(
            first=self.header_label,
            second=ScrollBar(self.body_view),
            vertical=False, ratio=15,
        )
        self.frame = Frame(split)
        self.im.set_child(self.frame)
        card = self.frame.menu_card("Compose")
        card.add("Send", lambda v, e: self.send())
        card.add("Set To...", lambda v, e: self.frame.ask(
            "To: ", lambda answer: self.set_to(answer)))
        card.add("Set Subject...", lambda v, e: self.frame.ask(
            "Subject: ", lambda answer: self.set_subject(answer)))

    def _header_text(self) -> str:
        return f"To: {self.to}   Subject: {self.subject}"

    def set_to(self, to: str) -> None:
        self.to = to
        self.header_label.set_text(self._header_text())
        self.im.flush_updates()

    def set_subject(self, subject: str) -> None:
        self.subject = subject
        self.header_label.set_text(self._header_text())
        self.im.flush_updates()

    def send(self) -> Optional[Message]:
        """Serialize the body to the 7-bit transport form and deliver."""
        if not self.to:
            self.frame.post_message("No recipient (use Set To...)")
            return None
        message = self.store.send(
            self.sender, self.to, self.subject or "(no subject)",
            self.body_data,
        )
        self.frame.post_message(f"Sent to {self.to} (#{message.id})")
        self.im.flush_updates()
        return message
