"""EZ: the generic multi-media editor (paper sections 1, 7, 9, Fig. 5).

"We have already used this feature to build a generic multi-media
editor (EZ) that can edit a wide variety of components by loading the
appropriate code when needed."

EZ is deliberately thin: a frame around a scroll bar around a text view
on a document.  Everything interesting — embedding tables, drawings,
equations, rasters, animations, or a component EZ has never heard of —
comes from the toolkit.  ``Insert Object`` takes a *component name* and
resolves it through the dynamic loader, so inserting ``music`` works
the moment someone drops ``music.py`` into a plugin directory, without
EZ being recompiled, relinked, or otherwise modified (§1).
"""

from __future__ import annotations

from typing import Optional

from ..class_system.dynamic import default_loader
from ..class_system.errors import DynamicLoadError
from ..core.application import Application
from ..core.dataobject import DataObject
from ..components.frame import Frame
from ..components.scrollbar import ScrollBar
from ..components.text import TextData, TextView

__all__ = ["EZApp"]


class EZApp(Application):
    """The multi-media document editor."""

    atk_name = "ezapp"
    app_name = "ez"
    default_size = (78, 22)

    def __init__(self, document: Optional[TextData] = None, **kwargs) -> None:
        self._initial_document = document
        super().__init__(**kwargs)

    def build(self) -> None:
        self.document = (
            self._initial_document
            if self._initial_document is not None else TextData()
        )
        self.textview = TextView(self.document)
        self.frame = Frame(ScrollBar(self.textview))
        self.im.set_child(self.frame)
        self._build_menus()

    def _build_menus(self) -> None:
        card = self.frame.menu_card("File")
        card.add("Open...", self._menu_open)
        card.add("Save", self._menu_save)
        card.add("Quit", lambda view, event: self.destroy())
        insert = self.frame.menu_card("Insert")
        for name in ("table", "drawing", "equation", "raster", "animation"):
            insert.add(
                name.capitalize(),
                lambda view, event, _n=name: self.insert_component(_n),
            )
        insert.add("Other...", self._menu_insert_other)

    # ------------------------------------------------------------------
    # Documents
    # ------------------------------------------------------------------

    def set_document(self, document: TextData) -> None:
        """Edit a different document in place."""
        self.document = document
        self.textview.set_dataobject(document)
        self.im.flush_updates()

    def open(self, path) -> TextData:
        """Open a datastream file; embedded component code loads on
        demand inside :func:`~repro.core.datastream.read_document`."""
        document = self.open_document(path)
        if not isinstance(document, TextData):
            # Any component is editable: wrap non-text roots in a text
            # document so EZ's frame/scroll machinery applies.
            wrapper = TextData()
            wrapper.append_object(document)
            document = wrapper
        self.set_document(document)
        return self.document

    def save(self, path) -> None:
        self.save_document(self.document, path)
        self.frame.post_message(f"Wrote {path}")

    def _menu_save(self, view, event) -> None:
        self.frame.ask("Write file: ", lambda path: self.save(path))

    def _menu_open(self, view, event) -> None:
        def open_path(path: str) -> None:
            try:
                self.open(path)
                self.frame.post_message(f"Read {path}")
            except Exception as exc:  # surface in the message line
                self.frame.post_message(f"Cannot open {path}: {exc}")

        self.frame.ask("Read file: ", open_path)

    # ------------------------------------------------------------------
    # Component insertion (the §1 extension story)
    # ------------------------------------------------------------------

    def insert_component(self, name: str) -> Optional[DataObject]:
        """Embed a new component of type ``name`` at the caret.

        The data class is resolved through the dynamic loader: a
        statically present component binds from the registry, an
        unknown one triggers a plugin search — the paper's music
        department scenario.
        """
        try:
            cls = default_loader().load(name)
        except DynamicLoadError as exc:
            self.frame.post_message(f"Cannot load component {name!r}: {exc}")
            return None
        if not (isinstance(cls, type) and issubclass(cls, DataObject)):
            self.frame.post_message(f"{name!r} is not a data object")
            return None
        data = cls()
        self.textview.insert_object(data)
        self.frame.post_message(f"Inserted {name}")
        self.im.flush_updates()
        return data

    def _menu_insert_other(self, view, event) -> None:
        self.frame.ask(
            "Insert object of type: ",
            lambda name: self.insert_component(name.strip()),
        )

    # ------------------------------------------------------------------
    # Convenience for tests/examples
    # ------------------------------------------------------------------

    def type_text(self, text: str) -> None:
        """Inject keystrokes and process them."""
        self.im.window.inject_keys(text)
        self.process()
