"""Help: the campus help system (paper §1, Figure 2).

Figure 2 shows the help window: the document pane on the left showing
"EZ: A Document Editor", a "Related tools" list on the right, and an
"Other topics" overview.  Because the document pane is a text view,
help documents are multi-media for free (§1).

The substrate is :class:`HelpDatabase`: named topics whose bodies are
datastream text documents, with related-topic links — standing in for
the ``/usr/andy/help`` directory tree.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.application import Application
from ..core.datastream import read_document, write_document
from ..components.frame import Frame
from ..components.listview import ListView
from ..components.scrollbar import ScrollBar
from ..components.split import SplitView
from ..components.text import TextData, TextView

__all__ = ["HelpTopic", "HelpDatabase", "HelpApp", "standard_help_database"]


class HelpTopic:
    """One help document plus its cross references."""

    def __init__(self, name: str, title: str, body: TextData,
                 related: Optional[List[str]] = None) -> None:
        self.name = name
        self.title = title
        self.body_stream = write_document(body)
        self.related = list(related or [])

    def body(self) -> TextData:
        document = read_document(self.body_stream)
        assert isinstance(document, TextData)
        return document


class HelpDatabase:
    """Topic storage with lookup and related-topic links."""

    def __init__(self) -> None:
        self._topics: Dict[str, HelpTopic] = {}

    def add_topic(self, name: str, title: str, text: str,
                  related: Optional[List[str]] = None,
                  body: Optional[TextData] = None) -> HelpTopic:
        if body is None:
            body = TextData(text)
            body.add_style(0, min(len(title), body.length), "bold")
        topic = HelpTopic(name, title, body, related)
        self._topics[name] = topic
        return topic

    def topic(self, name: str) -> Optional[HelpTopic]:
        return self._topics.get(name)

    def topic_names(self) -> List[str]:
        return sorted(self._topics)

    def search(self, needle: str) -> List[str]:
        """Topics whose name, title or body mention ``needle``."""
        needle = needle.lower()
        hits = []
        for name, topic in sorted(self._topics.items()):
            haystack = f"{name} {topic.title} {topic.body_stream}".lower()
            if needle in haystack:
                hits.append(name)
        return hits


def standard_help_database() -> HelpDatabase:
    """The Fig. 2 content: EZ's help page and its neighbours."""
    db = HelpDatabase()
    db.add_topic(
        "ez", "EZ: A Document Editor",
        "EZ: A Document Editor\n\n"
        "What EZ is\n"
        "EZ is an editing program that you can use to create, edit,\n"
        "and format many different types of documents.  This help\n"
        "document introduces EZ and explains how you can use it to\n"
        "create and edit text documents.\n\n"
        "1 Related information about EZ\n"
        "2 Starting EZ\n"
        "3 Selecting text and using menus\n"
        "4 Previewing and printing your documents\n"
        "5 Quitting EZ\n"
        "6 Advice\n",
        related=["andrew-tour", "bulletin-boards", "messages", "typescript",
                 "preview", "console"],
    )
    db.add_topic(
        "andrew-tour", "Andrew Tour",
        "A guided tour of the Andrew system: the window manager,\n"
        "the file system, and the standard applications.\n",
        related=["ez", "messages"],
    )
    db.add_topic(
        "bulletin-boards", "Bulletin Boards",
        "Campus bulletin boards are message folders everyone can read.\n"
        "Use the messages program to subscribe and post.\n",
        related=["messages"],
    )
    db.add_topic(
        "messages", "Messages",
        "Messages reads and sends multi-media mail.  Because message\n"
        "bodies are toolkit documents, a message can contain drawings,\n"
        "rasters, spreadsheets, or animations.\n",
        related=["ez", "bulletin-boards"],
    )
    db.add_topic(
        "typescript", "Typescript",
        "Typescript provides an enhanced interface to the shell.\n",
        related=["console"],
    )
    db.add_topic(
        "preview", "Preview",
        "Preview displays formatted ditroff output on the screen.\n",
        related=["ez"],
    )
    db.add_topic(
        "console", "Console",
        "Console displays status information such as the time, date,\n"
        "CPU load and file system information.\n",
        related=["typescript"],
    )
    # A multi-media topic: help documents are text documents, so they
    # "automatically inherit the multi-media functionality" (§1).
    keys_body = TextData(
        "Standard editing keys\n\n"
        "The table below lists the keys every text view understands.\n\n"
    )
    keys_body.add_style(0, len("Standard editing keys"), "heading")
    from ..components.table import TableData

    keys = TableData(5, 2)
    for row, (key, action) in enumerate([
        ("C-a / C-e", "start / end of line"),
        ("C-k / C-y", "kill line / yank"),
        ("C-s", "search"),
        ("C-w", "cut selection"),
        ("Backspace", "delete backwards"),
    ]):
        keys.set_cell(row, 0, key)
        keys.set_cell(row, 1, action)
    keys_body.append_object(keys, "spread")
    keys_body.append("\nSee also the pop-up menus.\n")
    db.add_topic("editing-keys", "Standard Editing Keys", "",
                 related=["ez"], body=keys_body)
    return db


class HelpApp(Application):
    """The Fig. 2 window: document pane | topic lists."""

    atk_name = "helpapp"
    app_name = "help"
    default_size = (90, 24)

    def __init__(self, database: Optional[HelpDatabase] = None, **kwargs):
        self._initial_db = database
        super().__init__(**kwargs)

    def build(self) -> None:
        self.database = (
            self._initial_db if self._initial_db is not None
            else standard_help_database()
        )
        self.current: Optional[HelpTopic] = None
        self.body_view = TextView(TextData(), read_only=True)
        self.related_list = ListView(on_select=self._related_selected)
        self.topics_list = ListView(on_select=self._topic_selected)
        right = SplitView(
            first=ScrollBar(self.related_list),
            second=ScrollBar(self.topics_list),
            vertical=False, ratio=40,
        )
        self.split = SplitView(
            first=ScrollBar(self.body_view),
            second=right,
            vertical=True, ratio=65,
        )
        self.frame = Frame(self.split)
        self.im.set_child(self.frame)
        card = self.frame.menu_card("Help")
        card.add("Search...", lambda v, e: self.frame.ask(
            "Search for: ", lambda needle: self.search(needle)))
        card.add("Quit", lambda v, e: self.destroy())
        self.topics_list.set_items(self.database.topic_names())
        self.show_topic("ez")

    # -- topic display -----------------------------------------------------

    def show_topic(self, name: str) -> None:
        topic = self.database.topic(name)
        if topic is None:
            self.frame.post_message(f"No help on {name!r}")
            return
        self.current = topic
        self.body_view.set_dataobject(topic.body())
        self.body_view.set_dot(0)
        self.related_list.set_items(topic.related)
        self.frame.post_message(f"helping you with: {topic.title}")
        self.im.flush_updates()

    def _related_selected(self, index: int, item: str) -> None:
        self.show_topic(item)

    def _topic_selected(self, index: int, item: str) -> None:
        self.show_topic(item)

    def search(self, needle: str) -> List[str]:
        hits = self.database.search(needle)
        self.topics_list.set_items(hits if hits else self.database.topic_names())
        self.frame.post_message(
            f"{len(hits)} topics mention {needle!r}" if hits
            else f"nothing mentions {needle!r}"
        )
        self.im.flush_updates()
        return hits
