"""Typescript: "an enhanced interface to the C-shell" (paper §1).

The substrate is :class:`MiniShell` — a small in-process command
interpreter with a virtual file tree, environment variables and command
history — standing in for ``csh`` so the typescript machinery (a text
document that is simultaneously a transcript and an input line) is
exercised without touching the host system.

The enhancement typescript added over a terminal was exactly that the
transcript is an editable text document: you can scroll it, select and
copy from it, and edit the pending command line with the full editor.
All of that falls out of building on the text component.
"""

from __future__ import annotations

import shlex
from typing import Callable, Dict, List, Optional

from ..core.application import Application
from ..components.frame import Frame
from ..components.scrollbar import ScrollBar
from ..components.text import TextData, TextView

__all__ = ["MiniShell", "TypescriptView", "TypescriptApp"]

PROMPT = "% "


class MiniShell:
    """A tiny shell: virtual files, env, history, pipeable built-ins."""

    def __init__(self) -> None:
        self.env: Dict[str, str] = {"USER": "wjh", "HOME": "/afs/andrew/wjh"}
        self.cwd = self.env["HOME"]
        self.files: Dict[str, str] = {
            "/afs/andrew/wjh/paper.d": "\\begindata{text, 1}\n...\n",
            "/afs/andrew/wjh/notes": "remember to convert campus to X.11\n",
            "/afs/andrew/wjh/src/main.c": "#include <class.h>\n",
        }
        self.history: List[str] = []
        self._builtins: Dict[str, Callable[[List[str]], str]] = {
            "echo": self._cmd_echo,
            "pwd": self._cmd_pwd,
            "cd": self._cmd_cd,
            "ls": self._cmd_ls,
            "cat": self._cmd_cat,
            "setenv": self._cmd_setenv,
            "printenv": self._cmd_printenv,
            "history": self._cmd_history,
            "date": self._cmd_date,
            "whoami": self._cmd_whoami,
            "wc": self._cmd_wc,
        }

    def run(self, line: str) -> str:
        """Execute one command line; returns its output (may be '')."""
        line = line.strip()
        if not line:
            return ""
        self.history.append(line)
        try:
            argv = shlex.split(line)
        except ValueError as exc:
            return f"syntax error: {exc}\n"
        command = self._builtins.get(argv[0])
        if command is None:
            return f"{argv[0]}: command not found\n"
        try:
            return command(argv[1:])
        except Exception as exc:  # a shell survives its commands
            return f"{argv[0]}: {exc}\n"

    # -- built-ins ----------------------------------------------------------

    def _expand(self, token: str) -> str:
        if token.startswith("$"):
            return self.env.get(token[1:], "")
        return token

    def _resolve(self, path: str) -> str:
        path = self._expand(path)
        if not path.startswith("/"):
            path = f"{self.cwd.rstrip('/')}/{path}"
        return path

    def _cmd_echo(self, args: List[str]) -> str:
        return " ".join(self._expand(a) for a in args) + "\n"

    def _cmd_pwd(self, args: List[str]) -> str:
        return self.cwd + "\n"

    def _cmd_cd(self, args: List[str]) -> str:
        self.cwd = self._resolve(args[0]) if args else self.env["HOME"]
        return ""

    def _cmd_ls(self, args: List[str]) -> str:
        base = self._resolve(args[0]) if args else self.cwd
        base = base.rstrip("/") + "/"
        names = set()
        for path in self.files:
            if path.startswith(base):
                rest = path[len(base):]
                names.add(rest.split("/")[0])
        return "".join(f"{name}\n" for name in sorted(names))

    def _cmd_cat(self, args: List[str]) -> str:
        out = []
        for arg in args:
            path = self._resolve(arg)
            if path in self.files:
                out.append(self.files[path])
            else:
                out.append(f"cat: {arg}: no such file\n")
        return "".join(out)

    def _cmd_setenv(self, args: List[str]) -> str:
        if len(args) >= 2:
            self.env[args[0]] = args[1]
        return ""

    def _cmd_printenv(self, args: List[str]) -> str:
        if args:
            return self.env.get(args[0], "") + "\n"
        return "".join(f"{k}={v}\n" for k, v in sorted(self.env.items()))

    def _cmd_history(self, args: List[str]) -> str:
        return "".join(
            f"{i + 1:4}  {line}\n" for i, line in enumerate(self.history)
        )

    def _cmd_date(self, args: List[str]) -> str:
        return "Thu Feb 11 09:30:00 EST 1988\n"

    def _cmd_whoami(self, args: List[str]) -> str:
        return self.env.get("USER", "nobody") + "\n"

    def _cmd_wc(self, args: List[str]) -> str:
        out = []
        for arg in args:
            path = self._resolve(arg)
            if path in self.files:
                text = self.files[path]
                out.append(
                    f"{len(text.splitlines()):7} "
                    f"{len(text.split()):7} {len(text):7} {arg}\n"
                )
            else:
                out.append(f"wc: {arg}: no such file\n")
        return "".join(out)


class TypescriptView(TextView):
    """A text view whose document is a live shell transcript.

    Everything before the *input mark* is history (editable for
    copying, but Return in history re-executes nothing); everything
    after it is the pending command line.  Return ships the pending
    line to the shell and appends the output plus a new prompt.
    """

    atk_name = "typescriptview"

    def __init__(self, shell: Optional[MiniShell] = None) -> None:
        self.shell = shell if shell is not None else MiniShell()
        transcript = TextData(PROMPT)
        super().__init__(transcript)
        self._input_start = transcript.length
        self._history_index: Optional[int] = None
        self.set_dot(transcript.length)
        self.keymap.bind("Return", self._cmd_run_line)
        self.keymap.bind("M-p", self._cmd_history_previous)
        self.keymap.bind("M-n", self._cmd_history_next)

    def pending_line(self) -> str:
        return self.data.text(self._input_start, self.data.length)

    def _cmd_run_line(self, view, key) -> None:
        line = self.pending_line()
        self.data.append("\n")
        output = self.shell.run(line)
        if output:
            self.data.append(output)
        self.data.append(PROMPT)
        self._input_start = self.data.length
        self._history_index = None
        self.set_dot(self.data.length)

    def _replace_pending(self, text: str) -> None:
        self.data.delete(self._input_start,
                         self.data.length - self._input_start)
        self.data.append(text)
        self.set_dot(self.data.length)

    def _cmd_history_previous(self, view, key) -> None:
        """M-p: recall earlier commands into the pending line."""
        history = self.shell.history
        if not history:
            return
        if self._history_index is None:
            self._history_index = len(history) - 1
        else:
            self._history_index = max(0, self._history_index - 1)
        self._replace_pending(history[self._history_index])

    def _cmd_history_next(self, view, key) -> None:
        """M-n: move back toward the newest command (past it: empty)."""
        history = self.shell.history
        if self._history_index is None:
            return
        self._history_index += 1
        if self._history_index >= len(history):
            self._history_index = None
            self._replace_pending("")
        else:
            self._replace_pending(history[self._history_index])

    def run_command(self, line: str) -> str:
        """Drive the typescript programmatically (tests/examples)."""
        self.set_dot(self.data.length)
        self.data.insert(self.data.length, line)
        self.set_dot(self.data.length)
        output = self.shell.run(line)
        self.data.append("\n" + output + PROMPT)
        self._input_start = self.data.length
        self.set_dot(self.data.length)
        return output


class TypescriptApp(Application):
    """The typescript window: frame + scroll bar + transcript."""

    atk_name = "typescriptapp"
    app_name = "typescript"
    default_size = (72, 20)

    def build(self) -> None:
        self.shell = MiniShell()
        self.typescript = TypescriptView(self.shell)
        self.frame = Frame(ScrollBar(self.typescript))
        self.im.set_child(self.frame)
        self.frame.post_message(f"typescript: {self.shell.cwd}")
