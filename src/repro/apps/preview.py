r"""Preview: the ditroff previewer (paper §1).

"... a ditroff previewer ..." — the application that showed formatted
troff output on screen.  The substrate is :class:`TroffFormatter`, a
miniature troff: it understands the requests a campus paper actually
leaned on (breaks, spacing, centering, indentation, page control, and
``\fB``/``\fI``/``\fR`` inline font switches) and produces fixed-size
pages of text.  :class:`PreviewApp` pages through the result with a
page view, drawing through the same graphics layer as everything else.

Supported requests::

    .br          break line        .sp [n]     blank lines
    .ce [n]      center next n     .in [n]     set indent
    .ti [n]      indent next line  .ll [n]     line length
    .bp          page break        .pp / .lp   new paragraph
    .nf / .fi    no-fill / fill mode
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.application import Application
from ..components.frame import Frame
from ..components.scrollbar import ScrollBar, Scrollable
from ..core.view import View
from ..graphics.graphic import Graphic

__all__ = ["TroffFormatter", "FormattedPage", "PreviewApp", "PreviewView"]

PAGE_LINES = 18
DEFAULT_LINE_LENGTH = 60


class FormattedPage:
    """One output page: (text, bold?) runs per line, flattened to text."""

    def __init__(self, number: int) -> None:
        self.number = number
        self.lines: List[str] = []

    def full(self) -> bool:
        return len(self.lines) >= PAGE_LINES


class TroffFormatter:
    """Formats troff-subset source into pages."""

    def __init__(self, line_length: int = DEFAULT_LINE_LENGTH) -> None:
        self.line_length = line_length
        self.indent = 0
        self.temp_indent: Optional[int] = None
        self.center_count = 0
        self.fill = True
        self.pages: List[FormattedPage] = []
        self._page: Optional[FormattedPage] = None
        self._pending_words: List[str] = []

    # -- output plumbing -------------------------------------------------

    def _current_page(self) -> FormattedPage:
        if self._page is None or self._page.full():
            self._page = FormattedPage(len(self.pages) + 1)
            self.pages.append(self._page)
        return self._page

    def _emit(self, text: str) -> None:
        indent = self.indent
        if self.temp_indent is not None:
            indent = self.temp_indent
            self.temp_indent = None
        if self.center_count > 0:
            pad = max(0, (self.line_length - len(text)) // 2)
            text = " " * pad + text
            self.center_count -= 1
        else:
            text = " " * indent + text
        self._current_page().lines.append(text.rstrip())

    def _flush(self) -> None:
        """Break the current fill: emit pending words as wrapped lines."""
        if not self._pending_words:
            return
        width = max(8, self.line_length - self.indent)
        line = ""
        for word in self._pending_words:
            candidate = f"{line} {word}".strip()
            if len(candidate) > width and line:
                self._emit(line)
                line = word
            else:
                line = candidate
        if line:
            self._emit(line)
        self._pending_words = []

    # -- inline escapes -----------------------------------------------------

    @staticmethod
    def strip_fonts(text: str) -> Tuple[str, List[Tuple[int, int]]]:
        r"""Remove ``\fB``/``\fI``/``\fR`` escapes.

        Returns the plain text and the [start, end) emphasis spans
        (bold or italic — the cell display treats them alike).
        """
        out: List[str] = []
        spans: List[Tuple[int, int]] = []
        open_at: Optional[int] = None
        i = 0
        while i < len(text):
            if text.startswith(("\\fB", "\\fI"), i):
                if open_at is None:
                    open_at = len(out)
                i += 3
            elif text.startswith("\\fR", i) or text.startswith("\\fP", i):
                if open_at is not None:
                    spans.append((open_at, len(out)))
                    open_at = None
                i += 3
            else:
                out.append(text[i])
                i += 1
        if open_at is not None:
            spans.append((open_at, len(out)))
        return ("".join(out), spans)

    # -- the formatter ---------------------------------------------------------

    def format(self, source: str) -> List[FormattedPage]:
        """Format ``source``; returns the page list (also kept on self)."""
        self.pages = []
        self._page = None
        self._pending_words = []
        for raw_line in source.splitlines():
            if raw_line.startswith("."):
                self._request(raw_line)
                continue
            text, _spans = self.strip_fonts(raw_line)
            if not self.fill:
                self._emit(text)
            elif not text.strip():
                self._flush()
                self._emit("")
            else:
                self._pending_words.extend(text.split())
        self._flush()
        if not self.pages:
            self._current_page()
        return self.pages

    def _request(self, line: str) -> None:
        parts = line.split()
        name = parts[0][1:]
        arg = int(parts[1]) if len(parts) > 1 and parts[1].lstrip("-").isdigit() else None
        if name == "br":
            self._flush()
        elif name == "sp":
            self._flush()
            for _ in range(arg if arg is not None else 1):
                self._emit("")
        elif name == "ce":
            self._flush()
            self.center_count = arg if arg is not None else 1
        elif name == "in":
            self._flush()
            self.indent = max(0, arg if arg is not None else 0)
        elif name == "ti":
            self._flush()
            self.temp_indent = max(0, arg if arg is not None else 0)
        elif name == "ll":
            self._flush()
            if arg:
                self.line_length = max(16, arg)
        elif name == "bp":
            self._flush()
            self._page = None  # next emit opens a fresh page
        elif name in ("pp", "lp", "para"):
            self._flush()
            self._emit("")
            self.temp_indent = self.indent + 3 if name == "pp" else None
        elif name in ("nf", "fi"):
            self._flush()
            self.fill = name == "fi"
        # Unknown requests are ignored, as real previewers did.


class PreviewView(View, Scrollable):
    """Shows formatted pages with rules between them."""

    atk_name = "previewview"

    def __init__(self, pages: Optional[List[FormattedPage]] = None) -> None:
        super().__init__()
        self.pages: List[FormattedPage] = list(pages or [])
        self._top = 0

    def set_pages(self, pages: List[FormattedPage]) -> None:
        self.pages = list(pages)
        self._top = 0
        self.want_update()

    def _page_height(self) -> int:
        return PAGE_LINES + 2

    def scroll_total(self) -> int:
        return len(self.pages) * self._page_height()

    def scroll_pos(self) -> int:
        return self._top

    def scroll_visible(self) -> int:
        return self.height

    def apply_scroll_pos(self, pos: int) -> None:
        self._top = pos

    def draw(self, graphic: Graphic) -> None:
        y = -self._top
        for page in self.pages:
            header = f"--- page {page.number} ---"
            if 0 <= y < self.height:
                graphic.draw_string(
                    max(0, (self.width - len(header)) // 2), y, header
                )
            y += 1
            for line in page.lines:
                if 0 <= y < self.height:
                    graphic.draw_string(1, y, line)
                y += 1
            y += self._page_height() - 1 - len(page.lines)
            if y >= self.height:
                break


class PreviewApp(Application):
    """The previewer window."""

    atk_name = "previewapp"
    app_name = "preview"
    default_size = (70, 24)

    def __init__(self, source: str = "", **kwargs) -> None:
        self._initial_source = source
        super().__init__(**kwargs)

    def build(self) -> None:
        self.formatter = TroffFormatter()
        self.view = PreviewView()
        self.frame = Frame(ScrollBar(self.view))
        self.im.set_child(self.frame)
        if self._initial_source:
            self.show(self._initial_source)

    def show(self, source: str) -> List[FormattedPage]:
        pages = self.formatter.format(source)
        self.view.set_pages(pages)
        self.frame.post_message(
            f"{len(pages)} page{'s' if len(pages) != 1 else ''}"
        )
        self.im.flush_updates()
        return pages
