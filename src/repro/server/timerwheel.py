"""A hashed timer wheel for the multi-session server loop.

The standalone toolkit advances simulated time by posting
:class:`~repro.wm.events.TimerEvent` straight into one window's queue
(:meth:`~repro.core.im.InteractionManager.tick`).  A server hosting
thousands of sessions needs the classic O(1) structure instead: a ring
of slots, one per scheduler tick, each holding the callbacks due when
the cursor reaches it.  Scheduling, cancelling and advancing are all
constant-time per timer; a delay longer than the ring is carried as a
remaining-rounds count on the entry.

The wheel is deliberately clockless — :meth:`TimerWheel.advance` is
called by the :class:`~repro.server.serverloop.ServerLoop` once per
scheduling cycle (or explicitly by tests), so timer order is exactly as
deterministic as the rest of the toolkit.  Callbacks fire in schedule
order within a slot.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .. import obs

__all__ = ["TimerHandle", "TimerWheel"]


class TimerHandle:
    """One scheduled callback; hold it to :meth:`cancel` the timer."""

    __slots__ = ("callback", "interval", "_rounds", "_cancelled")

    def __init__(self, callback: Callable[[], None], interval: int) -> None:
        self.callback = callback
        #: Re-arm period in ticks; 0 means one-shot.
        self.interval = interval
        self._rounds = 0        # full ring rotations still to wait
        self._cancelled = False

    def cancel(self) -> None:
        """Unschedule; safe to call more than once, or from a callback."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else "armed"
        return f"<TimerHandle {state} interval={self.interval}>"


class TimerWheel:
    """Slots arranged in a ring; the cursor advances one slot per tick."""

    def __init__(self, slots: int = 256) -> None:
        if slots < 1:
            raise ValueError("a timer wheel needs at least one slot")
        self._slots: List[List[TimerHandle]] = [[] for _ in range(slots)]
        self._cursor = 0
        #: Total ticks advanced since construction (the wheel's clock).
        self.now = 0
        #: Live (scheduled, not yet fired or cancelled) timer count.
        self.scheduled = 0
        #: Callbacks that raised (contained, never past ``advance``).
        self.errors = 0
        #: The most recent contained callback exception, for reporting.
        self.last_error: Optional[BaseException] = None

    def __len__(self) -> int:
        return self.scheduled

    def schedule(self, delay: int, callback: Callable[[], None],
                 interval: int = 0) -> TimerHandle:
        """Run ``callback`` after ``delay`` ticks (0 = on the next tick).

        ``interval`` > 0 re-arms the timer every ``interval`` ticks
        after it first fires, until cancelled.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        if interval < 0:
            raise ValueError(f"negative interval {interval}")
        handle = TimerHandle(callback, interval)
        self._place(handle, delay)
        return handle

    def _place(self, handle: TimerHandle, delay: int) -> None:
        # ``delay`` is measured from the *next* tick: advance() moves the
        # cursor first, so delay=0 fires on the very next advance.
        size = len(self._slots)
        handle._rounds, offset = divmod(delay, size)
        self._slots[(self._cursor + 1 + offset) % size].append(handle)
        self.scheduled += 1

    def advance(self, ticks: int = 1) -> int:
        """Move the cursor ``ticks`` slots, firing everything due.

        Returns the number of callbacks fired.  A callback scheduling a
        new zero-delay timer sees it fire on the *next* tick, never
        within the same one — no tick can loop forever.

        A raising callback is *contained*: the exception is counted
        (``server.timer_errors``, :attr:`errors`, :attr:`last_error`),
        the remaining due timers still fire, and a periodic timer
        re-arms exactly as if its callback had returned — one bad tick
        must not silently unschedule a heartbeat (the supervision layer
        runs its watchdog and checkpoint cadence on this wheel).
        """
        fired = 0
        for _ in range(ticks):
            self._cursor = (self._cursor + 1) % len(self._slots)
            self.now += 1
            due = self._slots[self._cursor]
            if not due:
                continue
            remaining: List[TimerHandle] = []
            # Swap the slot out first: timers (re)scheduled by callbacks
            # land in fresh lists, a full-rotation round later at worst.
            self._slots[self._cursor] = remaining
            for handle in due:
                self.scheduled -= 1
                if handle._cancelled:
                    continue
                if handle._rounds > 0:
                    handle._rounds -= 1
                    remaining.append(handle)
                    self.scheduled += 1
                    continue
                fired += 1
                try:
                    handle.callback()
                except Exception as exc:
                    self.errors += 1
                    self.last_error = exc
                    if obs.metrics_on:
                        obs.registry.inc("server.timer_errors")
                if handle.interval > 0 and not handle._cancelled:
                    self._place(handle, handle.interval - 1)
        return fired

    def next_due_in(self, horizon: Optional[int] = None) -> Optional[int]:
        """Ticks until the nearest live timer fires, or None if empty.

        ``horizon`` caps the scan; the default is one full rotation per
        remaining-rounds level (exact, but O(slots) in the worst case —
        call this from idle paths, not per-event).
        """
        if self.scheduled == 0:
            return None
        size = len(self._slots)
        limit = size if horizon is None else min(horizon, size)
        best: Optional[int] = None
        for ahead in range(1, limit + 1):
            slot = self._slots[(self._cursor + ahead) % size]
            for handle in slot:
                if handle._cancelled:
                    continue
                due = ahead + handle._rounds * size
                if best is None or due < best:
                    best = due
        return best

    def __repr__(self) -> str:
        return (
            f"<TimerWheel slots={len(self._slots)} now={self.now} "
            f"scheduled={self.scheduled}>"
        )
