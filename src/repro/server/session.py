"""One user session hosted by the multi-session server loop.

The paper's §7 ``runapp`` lets many *applications* share one resident
toolkit image — but still one user per process.  :class:`Session` is
the lift that takes the same idea to server scale: it owns one
:class:`~repro.core.im.InteractionManager` (a whole view tree plus its
backend window) and everything the scheduler needs to multiplex
thousands of such trees through a single process:

* a **bounded input queue** with backpressure — producers call
  :meth:`submit`, which refuses (returns ``False``) once the queue is
  full, so one flooding client can neither grow memory without bound
  nor smuggle unbounded work past the scheduler's fairness slices;
* **per-session telemetry** — a :class:`SessionStats` record built from
  the same :mod:`repro.obs` primitives the rest of the toolkit reports
  with, so the soak bench reads per-session p95 frame latency and the
  fairness spread straight from session stats and the shared registry;
* a synchronous :meth:`pump` — the scheduler's per-slice entry point.
  ``InteractionManager.process_events`` stays exactly the inner drain
  it always was; the session merely moves a budget's worth of queued
  input into the window first and times the slice around it.

Sessions never touch asyncio themselves: everything here is
synchronous and deterministic, which is what lets the conformance
matrix prove a session driven by the server loop renders byte-for-byte
what the standalone loop renders.
"""

from __future__ import annotations

import collections
import time
from typing import Deque, Optional

from .. import obs
from ..core.im import InteractionManager
from ..obs.metrics import TimerStat
from ..testing import faultinject
from ..wm.base import WindowSystem
from ..wm.events import Event, KeyEvent

__all__ = ["Session", "SessionStats", "DEFAULT_QUEUE_LIMIT"]

#: Default bound on a session's input queue (events awaiting transfer
#: into the window).  Generous for interactive use; small enough that a
#: flood is refused long before it threatens the process.
DEFAULT_QUEUE_LIMIT = 256


class SessionStats:
    """Per-session observability counters (the obs registry's shape,
    held per session so a 10k-session fleet stays cheap to aggregate).
    """

    __slots__ = (
        "events_in", "events_dropped", "events_processed",
        "slices", "errors", "frame_ns", "last_slice_ns",
    )

    def __init__(self) -> None:
        self.events_in = 0          # accepted into the input queue
        self.events_dropped = 0     # refused by backpressure
        self.events_processed = 0   # drained through the IM
        self.slices = 0             # scheduler slices granted
        self.errors = 0             # exceptions contained at the boundary
        #: Slice latency distribution (same TimerStat the registry uses;
        #: p95 of this is the session's frame latency).
        self.frame_ns = TimerStat("session.frame_ns")
        #: Duration of the most recent slice (the watchdog's input).
        self.last_slice_ns = 0

    def as_dict(self) -> dict:
        return {
            "events_in": self.events_in,
            "events_dropped": self.events_dropped,
            "events_processed": self.events_processed,
            "slices": self.slices,
            "errors": self.errors,
            "frame_p50_ns": self.frame_ns.percentile(0.50),
            "frame_p95_ns": self.frame_ns.percentile(0.95),
        }


class Session:
    """One interaction manager behind a bounded, scheduled input queue."""

    def __init__(self, session_id: str,
                 im: Optional[InteractionManager] = None, *,
                 window_system: Optional[WindowSystem] = None,
                 title: Optional[str] = None,
                 width: int = 80, height: int = 24,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT) -> None:
        if im is None:
            if window_system is None:
                raise ValueError("Session needs an im or a window_system")
            im = InteractionManager(
                window_system, title or f"session:{session_id}",
                width=width, height=height,
            )
        self.id = session_id
        self.im = im
        self.queue_limit = max(1, int(queue_limit))
        self._inbox: Deque[Event] = collections.deque()
        self.stats = SessionStats()
        self.closed = False
        #: Watchdog suspension: a suspended session is never ready, so
        #: the scheduler skips it until the supervisor resumes it.
        self.suspended = False
        #: The server-loop cycle this session was registered on (set by
        #: ``ServerLoop.add_session``; ages in ``fleet_stats`` health).
        self.created_cycle = 0
        #: Last exception the server loop contained at this session's
        #: boundary (quarantine handles per-view faults below this).
        self.last_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # Input (producer side; backpressure lives here)
    # ------------------------------------------------------------------

    def queue_depth(self) -> int:
        return len(self._inbox)

    def submit(self, event: Event) -> bool:
        """Offer one input event; False means the queue is full.

        Refusal is the backpressure signal: the producer (a network
        edge, a replay driver) decides whether to retry, coalesce or
        drop — the session has already protected itself either way.
        """
        if self.closed or len(self._inbox) >= self.queue_limit:
            self.stats.events_dropped += 1
            if obs.metrics_on:
                obs.registry.inc("server.events_dropped")
            return False
        self._inbox.append(event)
        self.stats.events_in += 1
        if obs.metrics_on:
            obs.registry.inc("server.events_in")
        return True

    def submit_key(self, char: str, ctrl: bool = False,
                   meta: bool = False) -> bool:
        return self.submit(KeyEvent(char, ctrl=ctrl, meta=meta))

    def submit_text(self, text: str) -> int:
        """Type ``text`` one keystroke at a time; returns keys accepted."""
        accepted = 0
        for char in text:
            if not self.submit_key("Return" if char == "\n" else char):
                break
            accepted += 1
        return accepted

    # ------------------------------------------------------------------
    # Scheduling (consumer side; the server loop calls these)
    # ------------------------------------------------------------------

    @property
    def ready(self) -> bool:
        """True when a slice would do work: queued input (here or in the
        window) or damage awaiting a flush."""
        if self.closed or self.suspended:
            return False
        return bool(
            self._inbox
            or self.im.window.queued_events()
            or not self.im.updates.is_empty()
        )

    def pump(self, budget: Optional[int] = None) -> int:
        """Run one scheduler slice: transfer, drain, repaint — bounded.

        Moves up to ``budget`` queued events into the backend window,
        then calls :meth:`InteractionManager.process_events` with the
        same limit — the synchronous inner drain, which also flushes
        pending updates.  Returns the number of events handled.  The
        slice is timed into :attr:`SessionStats.frame_ns` and the
        shared registry (``server.frame_ns``).
        """
        if faultinject.enabled:
            # The ``server.pump`` seam: a session's own application
            # code dying at slice time.  Before the transfer loop, so
            # queued input survives the crash for the restarted session.
            faultinject.maybe_raise("server.pump")
        window = self.im.window
        moved = 0
        while self._inbox and (budget is None or moved < budget):
            window.post_event(self._inbox.popleft())
            moved += 1
        start = time.perf_counter_ns()
        try:
            handled = self.im.process_events(limit=budget)
        finally:
            elapsed = time.perf_counter_ns() - start
            self.stats.slices += 1
            self.stats.last_slice_ns = elapsed
            self.stats.frame_ns.observe(elapsed)
            if obs.metrics_on:
                obs.registry.observe_ns("server.frame_ns", elapsed)
                obs.registry.inc("server.slices")
        self.stats.events_processed += handled
        if obs.metrics_on and handled:
            obs.registry.inc("server.events_processed", handled)
        return handled

    def drain(self) -> int:
        """Pump repeatedly until idle (a convenience for tests/tools)."""
        total = 0
        while self.ready:
            total += self.pump(None)
        return total

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop accepting input and release the session's window."""
        if self.closed:
            return
        self.closed = True
        self._inbox.clear()
        self.im.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else f"queue={len(self._inbox)}"
        return f"<Session {self.id!r} {state}>"
