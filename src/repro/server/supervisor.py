"""Session supervision: watchdog, crash-ladder restarts, checkpoints.

The server loop (PR 6) contains a session-fatal exception at the
session boundary and moves on — correct, but terminal: the crashed
session parks its ``last_error`` and never serves again.  This module
is the missing lifecycle layer above that backstop, the same shape the
Application Management Toolkit line of work treats as a first-class
toolkit service: *supervised* applications that restart, recover their
state, and report their health.

Three mechanisms, mirroring the per-view quarantine ladder one level
up:

* **Watchdog** — every supervised pump is measured against a slice
  deadline (:attr:`SupervisorPolicy.watchdog_ns`).  A cooperative
  scheduler cannot preempt a slow slice, but it can refuse to grant
  the next one: after :attr:`SupervisorPolicy.watchdog_strikes`
  consecutive over-deadline slices the session is *suspended* (skipped
  by the scheduler) for :attr:`SupervisorPolicy.suspend_cycles`
  cycles, so one pathological session degrades itself instead of the
  fleet's tail latency.
* **Crash escalation** — contain → restart → sticky-dead.  The first
  :attr:`SupervisorPolicy.contain_strikes` crashes are contained in
  place (the PR 6 behaviour: error parked, session keeps its state).
  Further crashes *escalate*: the session is torn down and rebuilt
  from its factory after a capped-exponential backoff with
  deterministic jitter (a function of the session id and restart
  count, so a seeded chaos run replays exactly).  After
  :attr:`SupervisorPolicy.max_strikes` total crashes the session is
  sticky-dead until :meth:`Supervisor.revive` — a crash loop must not
  buy unlimited restart work.
* **Checkpoint/restore** — each supervised session names its documents
  (:class:`DocumentBinding`); the supervisor serializes them on a
  periodic wheel timer and again at escalation time (the documents are
  plain data objects — a pump crash does not corrupt them), through
  the same atomic tmp+fsync+rename machinery ``save_document`` uses
  (:func:`repro.core.application.atomic_write_bytes`) when a
  checkpoint directory is configured, and always into an in-memory
  copy.  A restarted session re-reads the latest checkpoint, so no
  saved keystroke is lost across a restart; pending queue input is
  carried over to the rebuilt session as well.

Accounting is conservation-shaped, like every containment layer here:
``server.restarts`` equals ``server.crash_escalations`` once the wheel
drains, ``server.watchdog_resumed`` balances
``server.watchdog_suspended``, and a dead session is exactly one that
crossed ``max_strikes`` (``server.sessions_dead``).

Enable by constructing a :class:`Supervisor` around a
:class:`~repro.server.serverloop.ServerLoop` (or set
``ANDREW_SUPERVISE=1`` to have the loop build one itself;
``ANDREW_CHECKPOINT_INTERVAL=<cycles>`` tunes the checkpoint cadence).
"""

from __future__ import annotations

import os
import zlib
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from .. import obs
from ..core.application import atomic_write_bytes
from ..core.datastream import read_document, write_document
from .session import Session

__all__ = [
    "CHECKPOINT_INTERVAL_ENV",
    "SUPERVISE_ENV",
    "DocumentBinding",
    "SupervisedEntry",
    "Supervisor",
    "SupervisorPolicy",
]

SUPERVISE_ENV = "ANDREW_SUPERVISE"
CHECKPOINT_INTERVAL_ENV = "ANDREW_CHECKPOINT_INTERVAL"

#: Supervised-session lifecycle states.
RUNNING, SUSPENDED, RESTARTING, DEAD = (
    "running", "suspended", "restarting", "dead")


def supervise_from_env() -> bool:
    """True when ``ANDREW_SUPERVISE`` asks the loop to self-supervise."""
    raw = os.environ.get(SUPERVISE_ENV, "").strip().lower()
    return raw not in ("", "0", "false", "no", "off")


def checkpoint_interval_from_env(default: int) -> int:
    raw = os.environ.get(CHECKPOINT_INTERVAL_ENV, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value >= 1 else default


class SupervisorPolicy:
    """The supervision ladder's knobs (all deterministic, cycle-based)."""

    __slots__ = (
        "contain_strikes", "max_strikes", "backoff_base", "backoff_cap",
        "jitter_span", "watchdog_ns", "watchdog_strikes", "suspend_cycles",
        "checkpoint_interval",
    )

    def __init__(self, *,
                 contain_strikes: int = 1,
                 max_strikes: int = 5,
                 backoff_base: int = 2,
                 backoff_cap: int = 32,
                 jitter_span: int = 3,
                 watchdog_ns: Optional[int] = None,
                 watchdog_strikes: int = 3,
                 suspend_cycles: int = 8,
                 checkpoint_interval: int = 32) -> None:
        if contain_strikes < 0:
            raise ValueError("contain_strikes must be >= 0")
        if max_strikes <= contain_strikes:
            raise ValueError("max_strikes must exceed contain_strikes")
        if backoff_base < 1 or backoff_cap < backoff_base:
            raise ValueError("need 1 <= backoff_base <= backoff_cap")
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        self.contain_strikes = contain_strikes
        self.max_strikes = max_strikes
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.jitter_span = max(0, jitter_span)
        self.watchdog_ns = watchdog_ns
        self.watchdog_strikes = max(1, watchdog_strikes)
        self.suspend_cycles = max(1, suspend_cycles)
        self.checkpoint_interval = checkpoint_interval

    def restart_delay(self, session_id: str, restarts: int) -> int:
        """Backoff cycles before restart ``restarts`` of ``session_id``.

        Capped exponential plus *deterministic* jitter — a CRC of the
        (session id, restart ordinal) pair, never a live RNG — so a
        kill-storm replayed under the same fault seed restarts every
        session on exactly the same cycles, while distinct sessions
        escalated on the same cycle still spread out instead of
        thundering back in lockstep.
        """
        delay = min(self.backoff_cap, self.backoff_base << min(restarts, 16))
        if self.jitter_span:
            key = f"{session_id}:{restarts}".encode("ascii", "replace")
            delay += zlib.crc32(key) % (self.jitter_span + 1)
        return delay


class DocumentBinding:
    """One checkpointable document a supervised session owns.

    ``get(session)`` returns the live data object to snapshot;
    ``install(session, obj)`` puts a restored object back into a
    freshly rebuilt session (typically: build a view over it and
    ``im.set_child`` it, or splice it into an existing tree).
    """

    __slots__ = ("name", "get", "install")

    def __init__(self, name: str,
                 get: Callable[[Session], object],
                 install: Callable[[Session, object], None]) -> None:
        self.name = name
        self.get = get
        self.install = install


class SupervisedEntry:
    """One session's supervision record (survives restarts)."""

    __slots__ = (
        "session_id", "session", "build", "documents", "state",
        "crashes", "restarts", "slow_streak", "checkpoints",
        "checkpoint_count", "last_error", "_timer",
    )

    def __init__(self, session: Session,
                 build: Optional[Callable[[], Session]],
                 documents: Sequence[DocumentBinding]) -> None:
        self.session_id = session.id
        self.session = session
        self.build = build
        self.documents = list(documents)
        self.state = RUNNING
        self.crashes = 0
        self.restarts = 0
        self.slow_streak = 0
        #: Latest serialized document text per binding name.  The
        #: in-memory copy is what restarts read; the on-disk file (when
        #: a checkpoint dir is set) is the durable twin.
        self.checkpoints: Dict[str, str] = {}
        self.checkpoint_count = 0
        self.last_error: Optional[BaseException] = None
        self._timer = None

    def health(self) -> dict:
        return {
            "state": self.state,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "checkpoints": self.checkpoint_count,
            "last_error": repr(self.last_error) if self.last_error else None,
        }

    def __repr__(self) -> str:
        return (f"<SupervisedEntry {self.session_id!r} {self.state} "
                f"crashes={self.crashes} restarts={self.restarts}>")


class Supervisor:
    """Watchdog + crash ladder + checkpoints over one server loop."""

    def __init__(self, loop, *, policy: Optional[SupervisorPolicy] = None,
                 checkpoint_dir=None) -> None:
        self.loop = loop
        self.policy = policy if policy is not None else SupervisorPolicy(
            checkpoint_interval=checkpoint_interval_from_env(32))
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None)
        self._entries: Dict[str, SupervisedEntry] = {}
        loop.supervisor = self

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def supervise(self, session: Session, *,
                  build: Optional[Callable[[], Session]] = None,
                  documents: Sequence[DocumentBinding] = (),
                  checkpoint_interval: Optional[int] = None
                  ) -> SupervisedEntry:
        """Put ``session`` under supervision.

        ``build`` is the restart factory — a callable returning a fresh
        :class:`Session` with the same id; without one the ladder can
        only contain and (at ``max_strikes``) kill, never restart.
        ``documents`` name what the checkpoints snapshot.
        """
        if session.id in self._entries:
            raise ValueError(f"session {session.id!r} already supervised")
        entry = SupervisedEntry(session, build, documents)
        self._entries[session.id] = entry
        interval = (checkpoint_interval if checkpoint_interval is not None
                    else self.policy.checkpoint_interval)
        if entry.documents:
            entry._timer = self.loop.call_every(
                interval, lambda: self.checkpoint(entry.session_id))
            # First checkpoint up front: a session that crashes before
            # the first periodic tick still restores to its seed state.
            self.checkpoint(entry.session_id)
        return entry

    def entry(self, session_id: str) -> Optional[SupervisedEntry]:
        return self._entries.get(session_id)

    def forget(self, session_id: str) -> None:
        """Drop supervision (the session itself is untouched)."""
        entry = self._entries.pop(session_id, None)
        if entry is not None and entry._timer is not None:
            entry._timer.cancel()

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------

    def _checkpoint_path(self, session_id: str, name: str) -> Path:
        # Path() tolerates a plain string assigned after construction.
        return Path(self.checkpoint_dir) / f"{session_id}.{name}.ad"

    def checkpoint(self, session_id: str) -> int:
        """Snapshot every bound document; returns documents written.

        Serialization failures are contained and counted
        (``server.checkpoint_errors``): the previous good checkpoint
        survives, which is exactly the degraded behaviour a restart
        wants — resume from the last state that serialized.
        """
        entry = self._entries.get(session_id)
        if entry is None or entry.state != RUNNING or not entry.documents:
            return 0
        written = 0
        for binding in entry.documents:
            try:
                text = write_document(binding.get(entry.session))
                payload = text.encode("ascii")
                if self.checkpoint_dir is not None:
                    Path(self.checkpoint_dir).mkdir(parents=True,
                                                    exist_ok=True)
                    atomic_write_bytes(
                        self._checkpoint_path(session_id, binding.name),
                        payload)
            except Exception as exc:
                entry.last_error = exc
                if obs.metrics_on:
                    obs.registry.inc("server.checkpoint_errors")
                continue
            entry.checkpoints[binding.name] = text
            written += 1
        if written:
            entry.checkpoint_count += 1
            if obs.metrics_on:
                obs.registry.inc("server.checkpoints")
                obs.registry.inc("server.checkpoint_docs", written)
        return written

    def checkpoint_text(self, session_id: str, name: str) -> Optional[str]:
        """The latest in-memory checkpoint for one bound document."""
        entry = self._entries.get(session_id)
        return entry.checkpoints.get(name) if entry is not None else None

    def _restore_documents(self, entry: SupervisedEntry) -> int:
        restored = 0
        for binding in entry.documents:
            # Per-binding containment: one unreadable checkpoint (a
            # corrupt file, a bad install) must not turn a restartable
            # session sticky-dead — the fresh session keeps its seed
            # state for that document instead.
            try:
                text = entry.checkpoints.get(binding.name)
                if text is None and self.checkpoint_dir is not None:
                    path = self._checkpoint_path(entry.session_id,
                                                 binding.name)
                    if path.exists():
                        text = path.read_text(encoding="ascii")
                if text is None:
                    continue
                obj = read_document(text, salvage=True)
                binding.install(entry.session, obj)
            except Exception as exc:
                entry.last_error = exc
                if obs.metrics_on:
                    obs.registry.inc("server.restore_errors")
                continue
            restored += 1
        return restored

    # ------------------------------------------------------------------
    # Crash ladder (the server loop calls on_crash from its backstop)
    # ------------------------------------------------------------------

    def on_crash(self, session: Session, exc: BaseException) -> str:
        """Advance the ladder one rung; returns the entry's new state.

        Unsupervised sessions keep the bare PR 6 containment (the
        caller already parked ``last_error``); supervised ones climb
        contain → restart-with-backoff → sticky-dead.
        """
        entry = self._entries.get(session.id)
        if entry is None or entry.session is not session:
            return RUNNING
        entry.crashes += 1
        entry.last_error = exc
        if obs.metrics_on:
            obs.registry.inc("server.crashes")
        if entry.crashes >= self.policy.max_strikes:
            self._kill(entry)
        elif entry.crashes > self.policy.contain_strikes \
                and entry.build is not None:
            self._escalate(entry)
        return entry.state

    def _kill(self, entry: SupervisedEntry) -> None:
        """Sticky-dead: past ``max_strikes``, restarts stop buying time."""
        entry.state = DEAD
        self.checkpoint_now(entry)
        if entry.session_id in self.loop._sessions:
            self.loop.remove_session(entry.session_id, close=True)
        if obs.metrics_on:
            obs.registry.inc("server.sessions_dead")

    def checkpoint_now(self, entry: SupervisedEntry) -> None:
        """Best-effort crash-time checkpoint (documents are still data).

        A pump crash leaves the session's data objects intact, so the
        moment of escalation is also the last chance to snapshot edits
        made since the periodic tick — this is what turns "resume from
        the last checkpoint" into "zero document loss".  Failures fall
        back to the last periodic checkpoint, already counted.
        """
        state, entry.state = entry.state, RUNNING
        try:
            self.checkpoint(entry.session_id)
        finally:
            entry.state = state

    def _escalate(self, entry: SupervisedEntry) -> None:
        entry.state = RESTARTING
        self.checkpoint_now(entry)
        # Carry queued-but-unserved input across the restart; close()
        # would clear it with the rest of the session.
        pending = list(entry.session._inbox)
        if entry.session_id in self.loop._sessions:
            self.loop.remove_session(entry.session_id, close=True)
        delay = self.policy.restart_delay(entry.session_id, entry.restarts)
        if obs.metrics_on:
            obs.registry.inc("server.crash_escalations")
        self.loop.call_later(delay, lambda: self._restart(entry, pending))

    def _restart(self, entry: SupervisedEntry, pending) -> None:
        if entry.state != RESTARTING:
            return  # revived or killed while the backoff ran
        try:
            session = entry.build()
            if session.id != entry.session_id:
                raise ValueError(
                    f"restart factory built {session.id!r}, "
                    f"expected {entry.session_id!r}")
            entry.session = session
            self.loop.add_session(session, readmit=True)
            self._restore_documents(entry)
            for event in pending:
                session.submit(event)
        except Exception as exc:
            # A restart that cannot complete is a dead session, not an
            # exception storm inside the timer wheel.
            entry.last_error = exc
            entry.state = DEAD
            if entry.session_id in self.loop._sessions:
                self.loop.remove_session(entry.session_id, close=True)
            if obs.metrics_on:
                obs.registry.inc("server.restart_errors")
                obs.registry.inc("server.sessions_dead")
            return
        entry.state = RUNNING
        entry.slow_streak = 0
        entry.restarts += 1
        if obs.metrics_on:
            obs.registry.inc("server.restarts")

    def revive(self, session_id: str) -> Optional[Session]:
        """Manual reset of a sticky-dead session: rebuild and restore.

        The operator's lever, like ``View.reset_quarantine`` one layer
        down.  Clears the strike count (the ladder restarts from the
        bottom) and returns the fresh session, or ``None`` when the
        entry is unknown, alive, or has no factory.
        """
        entry = self._entries.get(session_id)
        if entry is None or entry.state != DEAD or entry.build is None:
            return None
        entry.crashes = 0
        entry.state = RESTARTING
        self._restart(entry, [])
        return entry.session if entry.state == RUNNING else None

    # ------------------------------------------------------------------
    # Watchdog (the server loop reports every supervised slice)
    # ------------------------------------------------------------------

    def note_slice(self, session: Session, elapsed_ns: int) -> None:
        """One pump finished in ``elapsed_ns``; suspend chronic hogs."""
        policy = self.policy
        if policy.watchdog_ns is None:
            return
        entry = self._entries.get(session.id)
        if entry is None or entry.session is not session \
                or entry.state != RUNNING:
            return
        if elapsed_ns <= policy.watchdog_ns:
            entry.slow_streak = 0
            return
        entry.slow_streak += 1
        if obs.metrics_on:
            obs.registry.inc("server.watchdog_slow")
        if entry.slow_streak < policy.watchdog_strikes:
            return
        entry.state = SUSPENDED
        entry.slow_streak = 0
        session.suspended = True
        if obs.metrics_on:
            obs.registry.inc("server.watchdog_suspended")
        self.loop.call_later(
            policy.suspend_cycles, lambda: self._resume(entry))

    def _resume(self, entry: SupervisedEntry) -> None:
        if entry.state != SUSPENDED:
            return
        entry.session.suspended = False
        entry.state = RUNNING
        if obs.metrics_on:
            obs.registry.inc("server.watchdog_resumed")

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def health(self) -> Dict[str, dict]:
        """Per-entry ladder state (merged into ``fleet_stats``)."""
        return {sid: entry.health()
                for sid, entry in self._entries.items()}

    def states(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for entry in self._entries.values():
            counts[entry.state] = counts.get(entry.state, 0) + 1
        return counts

    def __repr__(self) -> str:
        return (f"<Supervisor entries={len(self._entries)} "
                f"states={self.states()}>")
