"""The asyncio multi-session server loop.

This is the ROADMAP's "many IMs share one process" step: the §7
``runapp`` shared-image idea taken from *many applications, one user*
to *many users, one resident toolkit*.  The loop owns a fleet of
:class:`~repro.server.session.Session` objects and schedules them
fairly; all rendering work stays inside each session's synchronous
``process_events`` drain, so session state management lives entirely
outside the render path.

Scheduling policy
-----------------

* **Cycles, not threads.**  :meth:`ServerLoop.run_cycle` is one fair
  pass: the timer wheel advances one tick, then every *ready* session
  (queued input or pending damage) is granted one slice of at most
  ``slice_events`` events — transfer, drain, repaint, synchronously.
  A session with 10,000 queued keystrokes therefore takes exactly one
  slice per cycle, the same as a session with one keystroke: busy
  neighbours cost latency proportional to fleet readiness, never
  starvation.
* **Rotating head.**  The round-robin order rotates one position per
  cycle, so no session is structurally first (or last) every cycle —
  with a per-cycle repaint budget in force, the sessions deferred this
  cycle are the first served on the next.
* **Cooperative repaint budgeting.**  ``cycle_budget_ns`` (optional)
  caps the wall-clock a single cycle may spend repainting; once
  exceeded, remaining sessions are deferred to the next cycle (counter
  ``server.cycle_deferred``) rather than run late.
* **Fault isolation.**  View-level faults are already quarantined
  inside the IM; anything that still escapes a session's drain is
  contained at the session boundary (``server.session_errors``,
  ``Session.last_error``) and the cycle moves on — one broken session
  never stalls another.  With a :class:`~repro.server.supervisor.
  Supervisor` attached, containment is no longer terminal: the crash
  climbs the supervision ladder (contain → restart-from-checkpoint →
  sticky-dead) and slow slices feed the watchdog.
* **Admission control.**  ``admission_limit`` caps the fleet; past it
  :meth:`add_session` raises the *typed* :class:`AdmissionRefused`
  (and counts ``server.admission_refused``) instead of degrading every
  existing session — refusing late is the one thing a loaded server
  must never do implicitly.  Supervisor restarts re-enter with
  ``readmit=True``: a restarting session was already admitted.
* **Graceful degradation.**  When total queued input crosses
  ``degrade_high_water`` the loop enters degraded mode: remote
  encoders stretch their keyframe interval (keyframes are the bursty
  bytes) and the repaint budget tightens, trading fidelity headroom
  for throughput *before* backpressure starts refusing events.
  Hysteresis (``degrade_low_water``) keeps it from flapping.

:meth:`ServerLoop.run` is the asyncio driver: it awaits between
cycles, so producers submitting input from asyncio tasks (network
readers, replay feeders) interleave with scheduling on one event loop.
:meth:`run_until_idle` is the deterministic synchronous wrapper the
conformance matrix and tests drive.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, Deque, Dict, List, Optional

import collections

from .. import obs
from ..core.im import InteractionManager
from ..wm.base import WindowSystem
from .session import DEFAULT_QUEUE_LIMIT, Session
from .supervisor import Supervisor, supervise_from_env
from .timerwheel import TimerHandle, TimerWheel

__all__ = ["AdmissionRefused", "ServerLoop", "DEFAULT_SLICE_EVENTS"]

#: Events a session may drain per scheduling slice.  Small enough that
#: a cycle over a mostly-idle fleet is dominated by ready sessions;
#: large enough that an interactive burst (a word, a paste chunk)
#: lands in one or two slices.
DEFAULT_SLICE_EVENTS = 8

#: Exited-with-error sessions retained for ``fleet_stats`` (bounded so
#: a crash storm cannot grow the ledger without limit).
EXITED_LEDGER_LIMIT = 64


class AdmissionRefused(RuntimeError):
    """Typed refusal: the fleet is at its admission limit.

    Carries the limit so the caller (a connection acceptor, a test)
    can report or retry without parsing the message.
    """

    def __init__(self, session_id: str, limit: int) -> None:
        self.session_id = session_id
        self.limit = limit
        super().__init__(
            f"session {session_id!r} refused: fleet at admission "
            f"limit {limit}")


class ServerLoop:
    """Fair, cooperative scheduler for many sessions in one process."""

    def __init__(self, *, slice_events: int = DEFAULT_SLICE_EVENTS,
                 cycle_budget_ns: Optional[int] = None,
                 wheel_slots: int = 256,
                 admission_limit: Optional[int] = None,
                 degrade_high_water: Optional[int] = None,
                 degrade_low_water: Optional[int] = None,
                 degrade_keyframe_factor: int = 4,
                 degrade_budget_divisor: int = 2) -> None:
        self.slice_events = max(1, int(slice_events))
        self.cycle_budget_ns = cycle_budget_ns
        self.wheel = TimerWheel(wheel_slots)
        self._sessions: Dict[str, Session] = {}
        self._rr: Deque[str] = collections.deque()
        self.cycles = 0
        self._serial = 0
        self.admission_limit = admission_limit
        self.degrade_high_water = degrade_high_water
        self.degrade_low_water = (
            degrade_low_water if degrade_low_water is not None
            else (degrade_high_water // 2 if degrade_high_water else None))
        self.degrade_keyframe_factor = max(1, degrade_keyframe_factor)
        self.degrade_budget_divisor = max(1, degrade_budget_divisor)
        self.degraded = False
        #: Sessions removed while carrying an error (bounded ledger, so
        #: a crashed session's last_error survives its removal).
        self._exited: Deque[dict] = collections.deque(
            maxlen=EXITED_LEDGER_LIMIT)
        #: Set by :class:`~repro.server.supervisor.Supervisor` when one
        #: attaches; ``ANDREW_SUPERVISE=1`` builds one automatically.
        self.supervisor = None
        if supervise_from_env():
            Supervisor(self)

    # ------------------------------------------------------------------
    # Fleet management
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._sessions)

    def add_session(self, session: Optional[Session] = None, *,
                    session_id: Optional[str] = None,
                    im: Optional[InteractionManager] = None,
                    window_system: Optional[WindowSystem] = None,
                    width: int = 80, height: int = 24,
                    queue_limit: int = DEFAULT_QUEUE_LIMIT,
                    readmit: bool = False) -> Session:
        """Register a session (or build one around ``im``/``window_system``).

        Past ``admission_limit`` the fleet refuses with the typed
        :class:`AdmissionRefused` — unless ``readmit`` is set, which is
        how supervisor restarts re-enter: that seat was already paid
        for when the session was first admitted.
        """
        if session is None:
            if session_id is None:
                self._serial += 1
                session_id = f"s{self._serial}"
            session = Session(
                session_id, im, window_system=window_system,
                width=width, height=height, queue_limit=queue_limit,
            )
        if session.id in self._sessions:
            raise ValueError(f"duplicate session id {session.id!r}")
        if (
            self.admission_limit is not None and not readmit
            and len(self._sessions) >= self.admission_limit
        ):
            if obs.metrics_on:
                obs.registry.inc("server.admission_refused")
            raise AdmissionRefused(session.id, self.admission_limit)
        session.created_cycle = self.cycles
        self._sessions[session.id] = session
        self._rr.append(session.id)
        if obs.metrics_on:
            obs.registry.inc("server.sessions_added")
            obs.registry.gauge("server.sessions", len(self._sessions))
        return session

    def remove_session(self, session_id: str, close: bool = True) -> Session:
        session = self._sessions.pop(session_id)
        try:
            self._rr.remove(session_id)
        except ValueError:
            pass
        if session.last_error is not None or session.stats.errors:
            # Keep the crashed session's post-mortem: close() releases
            # the window, but the error, crash count and age must stay
            # visible in fleet_stats after the session is gone.
            self._exited.append({
                "id": session.id,
                "last_error": repr(session.last_error)
                if session.last_error is not None else None,
                "errors": session.stats.errors,
                "age_cycles": self.cycles - session.created_cycle,
                "events_processed": session.stats.events_processed,
            })
        if close:
            session.close()
        if obs.metrics_on:
            obs.registry.inc("server.sessions_removed")
            obs.registry.gauge("server.sessions", len(self._sessions))
        return session

    def session(self, session_id: str) -> Session:
        return self._sessions[session_id]

    @property
    def sessions(self) -> List[Session]:
        return list(self._sessions.values())

    def ready_sessions(self) -> List[Session]:
        return [s for s in self._sessions.values() if s.ready]

    # ------------------------------------------------------------------
    # Timers (sessions share one wheel instead of per-window clocks)
    # ------------------------------------------------------------------

    def call_later(self, delay: int, callback: Callable[[], None]) -> TimerHandle:
        """Run ``callback`` after ``delay`` scheduler cycles."""
        return self.wheel.schedule(delay, callback)

    def call_every(self, interval: int,
                   callback: Callable[[], None]) -> TimerHandle:
        """Run ``callback`` every ``interval`` cycles until cancelled."""
        if interval < 1:
            raise ValueError("interval must be >= 1 cycle")
        return self.wheel.schedule(interval - 1, callback, interval=interval)

    def schedule_tick(self, session: Session, every: int) -> TimerHandle:
        """Deliver the session's timer events every ``every`` cycles.

        The wheel posts one :class:`~repro.wm.events.TimerEvent` into
        the session's window (via ``im.tick``), which makes the session
        ready; animation views and the console then advance on their
        usual subscription path.
        """
        return self.call_every(every, session.im.tick)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def run_cycle(self) -> int:
        """One fair pass over the fleet; returns events handled.

        Timer wheel first (ticks make sessions ready in the same cycle
        their timers fire), then one bounded slice per ready session in
        rotating round-robin order.
        """
        self.cycles += 1
        self.wheel.advance(1)
        self._update_pressure()
        order = list(self._rr)
        if self._rr:
            self._rr.rotate(-1)
        handled = 0
        deferred = 0
        budget = self.cycle_budget_ns
        if budget is not None and self.degraded:
            # Degraded mode also tightens the repaint budget: defer
            # earlier, keep the cycle short, drain queues faster.
            budget //= self.degrade_budget_divisor
        start = time.perf_counter_ns() if budget else 0
        for session_id in order:
            session = self._sessions.get(session_id)
            if session is None or not session.ready:
                continue
            if (
                budget is not None
                and time.perf_counter_ns() - start >= budget
            ):
                # Budget exhausted: the rest wait one cycle.  Rotation
                # puts them at the head next time, so deferral spreads
                # across the fleet instead of pinning the tail.
                deferred += 1
                continue
            try:
                handled += session.pump(self.slice_events)
            except Exception as exc:
                # The session-boundary backstop: per-view quarantine
                # and the IM's own containment sit below this, so what
                # lands here is session-fatal, not server-fatal.
                session.last_error = exc
                session.stats.errors += 1
                if obs.metrics_on:
                    obs.registry.inc("server.session_errors")
                if self.supervisor is not None:
                    self.supervisor.on_crash(session, exc)
            else:
                if self.supervisor is not None:
                    self.supervisor.note_slice(
                        session, session.stats.last_slice_ns)
        if obs.metrics_on:
            obs.registry.inc("server.cycles")
            if deferred:
                obs.registry.inc("server.cycle_deferred", deferred)
            if self.degraded:
                obs.registry.inc("server.degraded_cycles")
        return handled

    # ------------------------------------------------------------------
    # Graceful degradation (load shedding that starts with fidelity)
    # ------------------------------------------------------------------

    def queued_events(self) -> int:
        """Total input waiting across the fleet (the pressure signal)."""
        return sum(s.queue_depth() for s in self._sessions.values())

    def _update_pressure(self) -> None:
        if self.degrade_high_water is None:
            return
        depth = self.queued_events()
        if not self.degraded and depth >= self.degrade_high_water:
            self.degraded = True
            self._stretch_encoders()
            if obs.metrics_on:
                obs.registry.inc("server.degrade_entered")
                obs.registry.gauge("server.degraded", 1)
        elif self.degraded and depth <= (self.degrade_low_water or 0):
            self.degraded = False
            self._restore_encoders()
            if obs.metrics_on:
                obs.registry.gauge("server.degraded", 0)

    def _remote_encoders(self):
        for session in self._sessions.values():
            encoder = getattr(session.im.window, "_encoder", None)
            if encoder is not None:
                yield encoder

    def _stretch_encoders(self) -> None:
        # Keyframes are the bursty bytes on the wire; under pressure a
        # longer keyframe interval sheds bandwidth before any event is
        # refused.  Sessions on local backends have no encoder and are
        # naturally unaffected.
        for encoder in self._remote_encoders():
            encoder.stretch_keyframes(self.degrade_keyframe_factor)

    def _restore_encoders(self) -> None:
        for encoder in self._remote_encoders():
            encoder.restore_keyframes()

    def _supervision_pending(self) -> bool:
        """True while the supervisor owes the fleet work: a session
        waiting out a restart backoff or a watchdog suspension will
        become ready again only if cycles keep running."""
        if self.supervisor is None:
            return False
        return any(
            entry.state in ("restarting", "suspended")
            for entry in self.supervisor._entries.values()
        )

    def run_until_idle(self, max_cycles: Optional[int] = None) -> int:
        """Synchronous drain: cycle until no session is ready.

        Deterministic (no clock, no asyncio) — the conformance matrix
        drives single sessions through this to prove byte-identity with
        the standalone loop.  Cycles also continue while the supervisor
        has sessions mid-restart or suspended (both states resolve in a
        bounded number of cycles).  Returns total events handled.
        """
        total = 0
        cycles = 0
        while (any(s.ready for s in self._sessions.values())
               or self._supervision_pending()):
            total += self.run_cycle()
            cycles += 1
            if max_cycles is not None and cycles >= max_cycles:
                break
        return total

    async def run(self, *, stop_when_idle: bool = True,
                  idle_cycles: int = 2,
                  max_cycles: Optional[int] = None) -> int:
        """The asyncio main loop: cycle, yield, repeat.

        Awaiting between cycles hands the asyncio loop to producer
        tasks (feeders calling :meth:`Session.submit`), so input
        arrival and scheduling interleave cooperatively on one thread.
        With ``stop_when_idle`` the loop returns after ``idle_cycles``
        consecutive cycles in which no session was ready; otherwise it
        runs until ``max_cycles`` (or cancellation).  Returns total
        events handled.
        """
        total = 0
        idle = 0
        cycles = 0
        while True:
            handled = self.run_cycle()
            total += handled
            cycles += 1
            if max_cycles is not None and cycles >= max_cycles:
                break
            if (handled or any(s.ready for s in self._sessions.values())
                    or self._supervision_pending()):
                idle = 0
            else:
                idle += 1
                if stop_when_idle and idle >= idle_cycles:
                    break
            # The cooperative yield: producers run between cycles.
            await asyncio.sleep(0)
        return total

    # ------------------------------------------------------------------
    # Fleet observability
    # ------------------------------------------------------------------

    def fleet_stats(self) -> Dict[str, object]:
        """Aggregate the per-session stats into one fairness report.

        ``frame_p95_spread`` is the fleet's fairness number: the ratio
        of the worst session's p95 slice latency to the fleet median —
        1.0 is perfect fairness, and a busy neighbour blowing up the
        tail shows here long before users file tickets.

        ``health`` is the per-session report (state, error, crash
        count, age); ``exited`` retains the post-mortems of sessions
        that were removed while carrying an error, so a crash is never
        silently erased by its own cleanup.
        """
        sessions = list(self._sessions.values())
        p95s = sorted(
            s.stats.frame_ns.percentile(0.95) for s in sessions
            if s.stats.slices
        )
        spread = 0.0
        if p95s:
            median = p95s[len(p95s) // 2]
            spread = (p95s[-1] / median) if median else 0.0
        return {
            "sessions": len(sessions),
            "cycles": self.cycles,
            "events_in": sum(s.stats.events_in for s in sessions),
            "events_dropped": sum(s.stats.events_dropped for s in sessions),
            "events_processed": sum(
                s.stats.events_processed for s in sessions
            ),
            "errors": sum(s.stats.errors for s in sessions),
            "max_queue_depth": max(
                (s.queue_depth() for s in sessions), default=0
            ),
            "frame_p95_ns_median": p95s[len(p95s) // 2] if p95s else 0,
            "frame_p95_ns_worst": p95s[-1] if p95s else 0,
            "frame_p95_spread": round(spread, 2),
            "degraded": self.degraded,
            "health": self.session_health(),
            "exited": list(self._exited),
        }

    def session_health(self) -> Dict[str, dict]:
        """Per-session health: scheduler view merged with the ladder's.

        Supervised sessions report their supervision state and strike
        counts; bare sessions still report error, age and queue depth —
        the satellite fix for crashes that used to vanish with
        ``remove_session``.
        """
        supervised = (
            self.supervisor.health() if self.supervisor is not None else {})
        report: Dict[str, dict] = {}
        for session in self._sessions.values():
            entry = {
                "state": "suspended" if session.suspended else (
                    "closed" if session.closed else "running"),
                "errors": session.stats.errors,
                "last_error": repr(session.last_error)
                if session.last_error is not None else None,
                "age_cycles": self.cycles - session.created_cycle,
                "queue": session.queue_depth(),
            }
            if session.id in supervised:
                entry.update(supervised[session.id])
            report[session.id] = entry
        # Supervised sessions currently out of the fleet (restarting
        # after backoff, or sticky-dead) still belong in the report.
        for sid, ladder in supervised.items():
            if sid not in report:
                report[sid] = dict(ladder)
        return report

    def close(self) -> None:
        """Close every session and empty the fleet."""
        for session_id in list(self._sessions):
            self.remove_session(session_id, close=True)

    def __repr__(self) -> str:
        return (
            f"<ServerLoop sessions={len(self._sessions)} "
            f"cycles={self.cycles} slice={self.slice_events}>"
        )
