"""The asyncio multi-session server loop.

This is the ROADMAP's "many IMs share one process" step: the §7
``runapp`` shared-image idea taken from *many applications, one user*
to *many users, one resident toolkit*.  The loop owns a fleet of
:class:`~repro.server.session.Session` objects and schedules them
fairly; all rendering work stays inside each session's synchronous
``process_events`` drain, so session state management lives entirely
outside the render path.

Scheduling policy
-----------------

* **Cycles, not threads.**  :meth:`ServerLoop.run_cycle` is one fair
  pass: the timer wheel advances one tick, then every *ready* session
  (queued input or pending damage) is granted one slice of at most
  ``slice_events`` events — transfer, drain, repaint, synchronously.
  A session with 10,000 queued keystrokes therefore takes exactly one
  slice per cycle, the same as a session with one keystroke: busy
  neighbours cost latency proportional to fleet readiness, never
  starvation.
* **Rotating head.**  The round-robin order rotates one position per
  cycle, so no session is structurally first (or last) every cycle —
  with a per-cycle repaint budget in force, the sessions deferred this
  cycle are the first served on the next.
* **Cooperative repaint budgeting.**  ``cycle_budget_ns`` (optional)
  caps the wall-clock a single cycle may spend repainting; once
  exceeded, remaining sessions are deferred to the next cycle (counter
  ``server.cycle_deferred``) rather than run late.
* **Fault isolation.**  View-level faults are already quarantined
  inside the IM; anything that still escapes a session's drain is
  contained at the session boundary (``server.session_errors``,
  ``Session.last_error``) and the cycle moves on — one broken session
  never stalls another.

:meth:`ServerLoop.run` is the asyncio driver: it awaits between
cycles, so producers submitting input from asyncio tasks (network
readers, replay feeders) interleave with scheduling on one event loop.
:meth:`run_until_idle` is the deterministic synchronous wrapper the
conformance matrix and tests drive.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, Deque, Dict, List, Optional

import collections

from .. import obs
from ..core.im import InteractionManager
from ..wm.base import WindowSystem
from .session import DEFAULT_QUEUE_LIMIT, Session
from .timerwheel import TimerHandle, TimerWheel

__all__ = ["ServerLoop", "DEFAULT_SLICE_EVENTS"]

#: Events a session may drain per scheduling slice.  Small enough that
#: a cycle over a mostly-idle fleet is dominated by ready sessions;
#: large enough that an interactive burst (a word, a paste chunk)
#: lands in one or two slices.
DEFAULT_SLICE_EVENTS = 8


class ServerLoop:
    """Fair, cooperative scheduler for many sessions in one process."""

    def __init__(self, *, slice_events: int = DEFAULT_SLICE_EVENTS,
                 cycle_budget_ns: Optional[int] = None,
                 wheel_slots: int = 256) -> None:
        self.slice_events = max(1, int(slice_events))
        self.cycle_budget_ns = cycle_budget_ns
        self.wheel = TimerWheel(wheel_slots)
        self._sessions: Dict[str, Session] = {}
        self._rr: Deque[str] = collections.deque()
        self.cycles = 0
        self._serial = 0

    # ------------------------------------------------------------------
    # Fleet management
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._sessions)

    def add_session(self, session: Optional[Session] = None, *,
                    session_id: Optional[str] = None,
                    im: Optional[InteractionManager] = None,
                    window_system: Optional[WindowSystem] = None,
                    width: int = 80, height: int = 24,
                    queue_limit: int = DEFAULT_QUEUE_LIMIT) -> Session:
        """Register a session (or build one around ``im``/``window_system``)."""
        if session is None:
            if session_id is None:
                self._serial += 1
                session_id = f"s{self._serial}"
            session = Session(
                session_id, im, window_system=window_system,
                width=width, height=height, queue_limit=queue_limit,
            )
        if session.id in self._sessions:
            raise ValueError(f"duplicate session id {session.id!r}")
        self._sessions[session.id] = session
        self._rr.append(session.id)
        if obs.metrics_on:
            obs.registry.inc("server.sessions_added")
            obs.registry.gauge("server.sessions", len(self._sessions))
        return session

    def remove_session(self, session_id: str, close: bool = True) -> Session:
        session = self._sessions.pop(session_id)
        try:
            self._rr.remove(session_id)
        except ValueError:
            pass
        if close:
            session.close()
        if obs.metrics_on:
            obs.registry.inc("server.sessions_removed")
            obs.registry.gauge("server.sessions", len(self._sessions))
        return session

    def session(self, session_id: str) -> Session:
        return self._sessions[session_id]

    @property
    def sessions(self) -> List[Session]:
        return list(self._sessions.values())

    def ready_sessions(self) -> List[Session]:
        return [s for s in self._sessions.values() if s.ready]

    # ------------------------------------------------------------------
    # Timers (sessions share one wheel instead of per-window clocks)
    # ------------------------------------------------------------------

    def call_later(self, delay: int, callback: Callable[[], None]) -> TimerHandle:
        """Run ``callback`` after ``delay`` scheduler cycles."""
        return self.wheel.schedule(delay, callback)

    def call_every(self, interval: int,
                   callback: Callable[[], None]) -> TimerHandle:
        """Run ``callback`` every ``interval`` cycles until cancelled."""
        if interval < 1:
            raise ValueError("interval must be >= 1 cycle")
        return self.wheel.schedule(interval - 1, callback, interval=interval)

    def schedule_tick(self, session: Session, every: int) -> TimerHandle:
        """Deliver the session's timer events every ``every`` cycles.

        The wheel posts one :class:`~repro.wm.events.TimerEvent` into
        the session's window (via ``im.tick``), which makes the session
        ready; animation views and the console then advance on their
        usual subscription path.
        """
        return self.call_every(every, session.im.tick)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def run_cycle(self) -> int:
        """One fair pass over the fleet; returns events handled.

        Timer wheel first (ticks make sessions ready in the same cycle
        their timers fire), then one bounded slice per ready session in
        rotating round-robin order.
        """
        self.cycles += 1
        self.wheel.advance(1)
        order = list(self._rr)
        if self._rr:
            self._rr.rotate(-1)
        handled = 0
        deferred = 0
        start = time.perf_counter_ns() if self.cycle_budget_ns else 0
        for session_id in order:
            session = self._sessions.get(session_id)
            if session is None or not session.ready:
                continue
            if (
                self.cycle_budget_ns is not None
                and time.perf_counter_ns() - start >= self.cycle_budget_ns
            ):
                # Budget exhausted: the rest wait one cycle.  Rotation
                # puts them at the head next time, so deferral spreads
                # across the fleet instead of pinning the tail.
                deferred += 1
                continue
            try:
                handled += session.pump(self.slice_events)
            except Exception as exc:
                # The session-boundary backstop: per-view quarantine
                # and the IM's own containment sit below this, so what
                # lands here is session-fatal, not server-fatal.
                session.last_error = exc
                session.stats.errors += 1
                if obs.metrics_on:
                    obs.registry.inc("server.session_errors")
        if obs.metrics_on:
            obs.registry.inc("server.cycles")
            if deferred:
                obs.registry.inc("server.cycle_deferred", deferred)
        return handled

    def run_until_idle(self, max_cycles: Optional[int] = None) -> int:
        """Synchronous drain: cycle until no session is ready.

        Deterministic (no clock, no asyncio) — the conformance matrix
        drives single sessions through this to prove byte-identity with
        the standalone loop.  Returns total events handled.
        """
        total = 0
        cycles = 0
        while any(s.ready for s in self._sessions.values()):
            total += self.run_cycle()
            cycles += 1
            if max_cycles is not None and cycles >= max_cycles:
                break
        return total

    async def run(self, *, stop_when_idle: bool = True,
                  idle_cycles: int = 2,
                  max_cycles: Optional[int] = None) -> int:
        """The asyncio main loop: cycle, yield, repeat.

        Awaiting between cycles hands the asyncio loop to producer
        tasks (feeders calling :meth:`Session.submit`), so input
        arrival and scheduling interleave cooperatively on one thread.
        With ``stop_when_idle`` the loop returns after ``idle_cycles``
        consecutive cycles in which no session was ready; otherwise it
        runs until ``max_cycles`` (or cancellation).  Returns total
        events handled.
        """
        total = 0
        idle = 0
        cycles = 0
        while True:
            handled = self.run_cycle()
            total += handled
            cycles += 1
            if max_cycles is not None and cycles >= max_cycles:
                break
            if handled or any(s.ready for s in self._sessions.values()):
                idle = 0
            else:
                idle += 1
                if stop_when_idle and idle >= idle_cycles:
                    break
            # The cooperative yield: producers run between cycles.
            await asyncio.sleep(0)
        return total

    # ------------------------------------------------------------------
    # Fleet observability
    # ------------------------------------------------------------------

    def fleet_stats(self) -> Dict[str, object]:
        """Aggregate the per-session stats into one fairness report.

        ``frame_p95_spread`` is the fleet's fairness number: the ratio
        of the worst session's p95 slice latency to the fleet median —
        1.0 is perfect fairness, and a busy neighbour blowing up the
        tail shows here long before users file tickets.
        """
        sessions = list(self._sessions.values())
        p95s = sorted(
            s.stats.frame_ns.percentile(0.95) for s in sessions
            if s.stats.slices
        )
        spread = 0.0
        if p95s:
            median = p95s[len(p95s) // 2]
            spread = (p95s[-1] / median) if median else 0.0
        return {
            "sessions": len(sessions),
            "cycles": self.cycles,
            "events_in": sum(s.stats.events_in for s in sessions),
            "events_dropped": sum(s.stats.events_dropped for s in sessions),
            "events_processed": sum(
                s.stats.events_processed for s in sessions
            ),
            "errors": sum(s.stats.errors for s in sessions),
            "max_queue_depth": max(
                (s.queue_depth() for s in sessions), default=0
            ),
            "frame_p95_ns_median": p95s[len(p95s) // 2] if p95s else 0,
            "frame_p95_ns_worst": p95s[-1] if p95s else 0,
            "frame_p95_spread": round(spread, 2),
        }

    def close(self) -> None:
        """Close every session and empty the fleet."""
        for session_id in list(self._sessions):
            self.remove_session(session_id, close=True)

    def __repr__(self) -> str:
        return (
            f"<ServerLoop sessions={len(self._sessions)} "
            f"cycles={self.cycles} slice={self.slice_events}>"
        )
