"""Remote-session helpers: one server loop fanning frames to viewers.

The DESY display-server split at control-room scale: the
:class:`~repro.server.serverloop.ServerLoop` hosts N sessions whose
window systems are :class:`~repro.remote.backend.RemoteWindowSystem`
instances, and every session's frames fan out to any number of
attached renderers (an operator's console mirrored to a video wall).

These helpers keep the wiring one-liners::

    loop = ServerLoop()
    session = add_remote_session(loop, renderer=wall_renderer)
    attach_viewer(session, desk_renderer)   # late joiner: gets a keyframe
"""

from __future__ import annotations

from typing import Optional

from ..remote.backend import RemoteWindowSystem
from ..remote.renderer import RemoteRenderer
from .serverloop import ServerLoop
from .session import DEFAULT_QUEUE_LIMIT, Session

__all__ = ["add_remote_session", "attach_viewer", "resume_viewer",
           "session_window"]


def add_remote_session(loop: ServerLoop, *,
                       session_id: Optional[str] = None,
                       target: str = "ascii",
                       delta: bool = True,
                       keyframe_interval: int = 64,
                       renderer: Optional[RemoteRenderer] = None,
                       sink=None,
                       width: int = 80, height: int = 24,
                       queue_limit: int = DEFAULT_QUEUE_LIMIT) -> Session:
    """Add a session whose display ships over the wire.

    ``renderer``/``sink`` seed the session window's fan-out; attach
    more viewers later with :func:`attach_viewer`.
    """
    window_system = RemoteWindowSystem(
        target, delta=delta, keyframe_interval=keyframe_interval,
        sink=sink, renderer=renderer,
    )
    return loop.add_session(
        session_id=session_id, window_system=window_system,
        width=width, height=height, queue_limit=queue_limit,
    )


def session_window(session: Session):
    """The session's backend window (where viewers attach)."""
    return session.im.window


def attach_viewer(session: Session, renderer: RemoteRenderer,
                  chunk_size: Optional[int] = None) -> RemoteRenderer:
    """Mirror ``session`` to one more renderer.

    The encoder keyframes on the next flush, so a viewer attached
    mid-session converges without replaying history.  Returns the
    renderer for chaining.
    """
    session_window(session).attach_renderer(renderer, chunk_size)
    return renderer


def resume_viewer(session: Session, renderer: RemoteRenderer,
                  chunk_size: Optional[int] = None) -> RemoteRenderer:
    """Re-attach a disconnected viewer, resuming at its last seq.

    The hello/replay handshake: missed frames replay verbatim from the
    encoder's history when the gap is in window, else the next flush
    keyframes.  Returns the renderer for chaining.
    """
    session_window(session).resume_renderer(renderer, chunk_size)
    return renderer
