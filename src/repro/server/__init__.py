"""The multi-session server layer (the ROADMAP's "millions of users"
prerequisite).

The paper's §7 ``runapp`` shares one resident toolkit image across
many applications — one user per process.  This package lifts the same
architecture to server scale: each user session is a
:class:`~repro.server.session.Session` (one interaction manager, one
bounded input queue, per-session telemetry), and a
:class:`~repro.server.serverloop.ServerLoop` multiplexes thousands of
them through one asyncio process with a timer wheel, fair round-robin
slicing and cooperative repaint budgeting.

The rendering contract is unchanged — ``process_events`` remains the
synchronous inner drain each slice calls — so a session hosted by the
server loop renders byte-for-byte what the standalone loop renders
(proved by ``tests/conformance/test_server_matrix.py``).

Above the loop sits the supervision layer
(:class:`~repro.server.supervisor.Supervisor`): a slice watchdog, a
contain → restart-from-checkpoint → sticky-dead crash ladder with
deterministic backoff, and periodic document checkpoints through the
toolkit's atomic-save machinery — so a crashed session comes back with
its document intact instead of parking on ``last_error`` forever.
"""

from .fanout import (
    add_remote_session,
    attach_viewer,
    resume_viewer,
    session_window,
)
from .session import DEFAULT_QUEUE_LIMIT, Session, SessionStats
from .serverloop import AdmissionRefused, DEFAULT_SLICE_EVENTS, ServerLoop
from .supervisor import (
    DocumentBinding,
    SupervisedEntry,
    Supervisor,
    SupervisorPolicy,
)
from .timerwheel import TimerHandle, TimerWheel

__all__ = [
    "AdmissionRefused",
    "DEFAULT_QUEUE_LIMIT",
    "DEFAULT_SLICE_EVENTS",
    "DocumentBinding",
    "Session",
    "SessionStats",
    "ServerLoop",
    "SupervisedEntry",
    "Supervisor",
    "SupervisorPolicy",
    "TimerHandle",
    "TimerWheel",
    "add_remote_session",
    "attach_viewer",
    "resume_viewer",
    "session_window",
]
