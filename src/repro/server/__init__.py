"""The multi-session server layer (the ROADMAP's "millions of users"
prerequisite).

The paper's §7 ``runapp`` shares one resident toolkit image across
many applications — one user per process.  This package lifts the same
architecture to server scale: each user session is a
:class:`~repro.server.session.Session` (one interaction manager, one
bounded input queue, per-session telemetry), and a
:class:`~repro.server.serverloop.ServerLoop` multiplexes thousands of
them through one asyncio process with a timer wheel, fair round-robin
slicing and cooperative repaint budgeting.

The rendering contract is unchanged — ``process_events`` remains the
synchronous inner drain each slice calls — so a session hosted by the
server loop renders byte-for-byte what the standalone loop renders
(proved by ``tests/conformance/test_server_matrix.py``).
"""

from .fanout import add_remote_session, attach_viewer, session_window
from .session import DEFAULT_QUEUE_LIMIT, Session, SessionStats
from .serverloop import DEFAULT_SLICE_EVENTS, ServerLoop
from .timerwheel import TimerHandle, TimerWheel

__all__ = [
    "DEFAULT_QUEUE_LIMIT",
    "DEFAULT_SLICE_EVENTS",
    "Session",
    "SessionStats",
    "ServerLoop",
    "TimerHandle",
    "TimerWheel",
    "add_remote_session",
    "attach_viewer",
    "session_window",
]
