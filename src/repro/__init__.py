"""repro: a Python reproduction of the Andrew Toolkit (USENIX 1988).

The package mirrors the paper's architecture:

* :mod:`repro.class_system` — the Andrew Class System: registry,
  single inheritance, class procedures, observers, dynamic loading,
  and the ``.ch`` preprocessor (§6);
* :mod:`repro.graphics` — geometry, fonts, images, and the drawable (§4);
* :mod:`repro.wm` — the six-class window-system porting layer with two
  complete backends, selected by ``ANDREW_WM`` (§8);
* :mod:`repro.core` — data objects, views, the view tree with its
  interaction manager, delayed updates, keymaps/menus, the external
  representation, applications and runapp (§§2-5, 7);
* :mod:`repro.components` — text, table/spreadsheet (+charts), drawing,
  equation, raster, animation, and the simple widgets (§1);
* :mod:`repro.apps` — EZ, messages, help, typescript, console,
  preview (§1, Figures 2-5);
* :mod:`repro.ext` — the extension packages (§1);
* :mod:`repro.sim`, :mod:`repro.baselines`, :mod:`repro.workloads` —
  the experimental apparatus (see DESIGN.md's experiment index).

Quickstart::

    from repro import AsciiWindowSystem, EZApp
    ez = EZApp(window_system=AsciiWindowSystem())
    ez.type_text("Hello, Andrew!")
    print(ez.snapshot())
"""

from . import obs
from .class_system import (
    ATKObject,
    ClassLoader,
    Observable,
    Observer,
    classprocedure,
    load_class,
    lookup,
)
from .core import (
    Application,
    DataObject,
    InteractionManager,
    RunApp,
    View,
    read_document,
    scan_extents,
    write_document,
)
from .graphics import Bitmap, FontDesc, Graphic, Point, Rect, Region
from .wm import (
    AsciiWindowSystem,
    PrinterJob,
    RasterWindowSystem,
    get_window_system,
)
from .components import (
    AnimationData,
    AnimationView,
    Button,
    ChartData,
    DrawView,
    DrawingData,
    EquationData,
    EquationView,
    Frame,
    Label,
    ListView,
    PageView,
    PieChartView,
    RasterData,
    RasterView,
    ScrollBar,
    SplitView,
    TableData,
    TableView,
    TextData,
    TextView,
)
from .apps import (
    ComposeApp,
    ConsoleApp,
    EZApp,
    FolderStore,
    HelpApp,
    MessagesApp,
    PreviewApp,
    TypescriptApp,
)
from .remote import RemoteRenderer, RemoteWindowSystem
from .server import ServerLoop, Session

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # telemetry
    "obs",
    # class system
    "ATKObject",
    "classprocedure",
    "Observable",
    "Observer",
    "ClassLoader",
    "load_class",
    "lookup",
    # graphics
    "Point",
    "Rect",
    "Region",
    "Bitmap",
    "FontDesc",
    "Graphic",
    # wm
    "AsciiWindowSystem",
    "RasterWindowSystem",
    "get_window_system",
    "PrinterJob",
    # remote display
    "RemoteWindowSystem",
    "RemoteRenderer",
    # core
    "DataObject",
    "View",
    "InteractionManager",
    "Application",
    "RunApp",
    # server
    "ServerLoop",
    "Session",
    "write_document",
    "read_document",
    "scan_extents",
    # components
    "TextData",
    "TextView",
    "PageView",
    "TableData",
    "TableView",
    "ChartData",
    "PieChartView",
    "DrawingData",
    "DrawView",
    "EquationData",
    "EquationView",
    "RasterData",
    "RasterView",
    "AnimationData",
    "AnimationView",
    "Label",
    "Button",
    "ListView",
    "SplitView",
    "ScrollBar",
    "Frame",
    # apps
    "EZApp",
    "MessagesApp",
    "ComposeApp",
    "HelpApp",
    "TypescriptApp",
    "ConsoleApp",
    "PreviewApp",
    "FolderStore",
]
