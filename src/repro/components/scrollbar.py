"""Scroll bar (paper sections 2 and 3).

"While it is often the case that a view has an underlying data object,
there are many cases when a view will be used to solely provide a user
interface function.  In such a case there is no underlying data object.
The scroll bar is one such example.  It only adjusts the information
contained in another view."

:class:`ScrollBar` wraps one *body* view (in Figure 1 the text view)
and draws an Andrew-style scroll bar in a column on the left edge.
The body advertises its scroll state through the :class:`Scrollable`
protocol; the bar has no data object of its own.

Routing (§3): the bar claims mouse events in its own column and passes
everything else to the body — a parental decision, not a geometric one,
since the bar could equally claim events anywhere.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.view import View
from ..graphics.geometry import Rect
from ..graphics.graphic import Graphic
from ..wm.events import MouseAction, MouseEvent

__all__ = ["Scrollable", "ScrollBar"]

BAR_WIDTH = 2  # one column of bar, one of separation


class Scrollable:
    """Protocol a view implements to be adjusted by a scroll bar.

    Positions are in the scrollee's own units (wrapped display lines
    for the text view, rows for the table view).
    """

    def scroll_total(self) -> int:
        """Total extent of the content."""
        raise NotImplementedError

    def scroll_pos(self) -> int:
        """First visible position."""
        raise NotImplementedError

    def scroll_visible(self) -> int:
        """How many positions are visible at once."""
        raise NotImplementedError

    def set_scroll_pos(self, pos: int) -> None:
        """Jump so ``pos`` is the first visible position (clamped)."""
        raise NotImplementedError


class ScrollBar(View):
    """A vertical scroll bar wrapping a scrollable body view."""

    atk_name = "scrollbar"

    def __init__(self, body: Optional[View] = None) -> None:
        super().__init__()
        self.body: Optional[View] = None
        self._dragging = False
        if body is not None:
            self.set_body(body)

    def set_body(self, body: View) -> None:
        if self.body is not None:
            self.remove_child(self.body)
        self.body = body
        self.add_child(body)
        self._needs_layout = True

    def initial_focus(self):
        return self.body.initial_focus() if self.body is not None else self

    def layout(self) -> None:
        if self.body is not None:
            self.body.set_bounds(
                Rect(BAR_WIDTH, 0,
                     max(0, self.width - BAR_WIDTH), self.height)
            )

    # -- scroll arithmetic ------------------------------------------------

    def _scrollable(self) -> Optional[Scrollable]:
        if isinstance(self.body, Scrollable):
            return self.body
        return None

    def thumb_extent(self) -> Tuple[int, int]:
        """(top, height) of the thumb in bar rows."""
        body = self._scrollable()
        track = max(1, self.height)
        if body is None:
            return (0, track)
        total = max(1, body.scroll_total())
        visible = min(body.scroll_visible(), total)
        height = max(1, visible * track // total)
        top = min(body.scroll_pos() * track // total, track - height)
        return (top, height)

    def _pos_for_row(self, row: int) -> int:
        body = self._scrollable()
        if body is None:
            return 0
        track = max(1, self.height)
        return max(0, min(row, track)) * body.scroll_total() // track

    # -- drawing --------------------------------------------------------------

    def draw(self, graphic: Graphic) -> None:
        if self.height <= 0:
            return
        graphic.draw_vline(0, 0, self.height - 1)
        top, height = self.thumb_extent()
        graphic.fill_rect(Rect(0, top, 1, height), 1)

    # -- routing (§3) -------------------------------------------------------------

    def route_mouse(self, event: MouseEvent) -> Optional[View]:
        if event.point.x < BAR_WIDTH:
            return None  # the bar's own column: handle here
        return self.body

    def handle_mouse(self, event: MouseEvent) -> bool:
        body = self._scrollable()
        if body is None:
            return False
        if event.action == MouseAction.DOWN:
            self._dragging = True
            body.set_scroll_pos(self._pos_for_row(event.point.y))
            self.want_update()
            return True
        if event.action == MouseAction.DRAG and self._dragging:
            body.set_scroll_pos(self._pos_for_row(event.point.y))
            self.want_update()
            return True
        if event.action == MouseAction.UP:
            self._dragging = False
            return True
        return False

    # -- keyboard paging: the bar adds Page bindings for its body ------------

    def handle_key(self, event) -> bool:
        body = self._scrollable()
        if body is None:
            return super().handle_key(event)
        if event.keysym() in ("Next", "C-v"):
            body.set_scroll_pos(body.scroll_pos() + max(1, body.scroll_visible() - 1))
            self.want_update()
            return True
        if event.keysym() in ("Prior", "M-v"):
            body.set_scroll_pos(body.scroll_pos() - max(1, body.scroll_visible() - 1))
            self.want_update()
            return True
        return super().handle_key(event)
