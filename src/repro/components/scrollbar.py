"""Scroll bar (paper sections 2 and 3).

"While it is often the case that a view has an underlying data object,
there are many cases when a view will be used to solely provide a user
interface function.  In such a case there is no underlying data object.
The scroll bar is one such example.  It only adjusts the information
contained in another view."

:class:`ScrollBar` wraps one *body* view (in Figure 1 the text view)
and draws an Andrew-style scroll bar in a column on the left edge.
The body advertises its scroll state through the :class:`Scrollable`
protocol; the bar has no data object of its own.

Routing (§3): the bar claims mouse events in its own column and passes
everything else to the body — a parental decision, not a geometric one,
since the bar could equally claim events anywhere.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .. import obs
from ..core.view import View
from ..graphics.fontdesc import FontDesc
from ..graphics.geometry import Rect
from ..graphics.graphic import Graphic
from ..wm.events import MouseAction, MouseEvent

__all__ = ["Scrollable", "ScrollBar"]

BAR_WIDTH = 2  # one column of bar, one of separation

#: The body font every scrolling view draws with; its device height
#: tells a view whether one scroll unit is one device row (cell
#: backends) or several overlapping glyph rows (raster).
_PROBE_FONT = FontDesc("andy", 12)


class Scrollable:
    """Protocol and shared mechanics for views a scroll bar adjusts.

    Positions are in the scrollee's own units (wrapped display lines
    for the text view, rows for the table view).  Subclasses implement
    the three state queries plus :meth:`apply_scroll_pos`; the
    :meth:`set_scroll_pos` template clamps, applies, and posts the
    cheapest damage that repairs the move — a surface shift plus one
    exposed strip when :meth:`~repro.core.view.View.want_scroll`
    accepts it, full-area damage otherwise.  The five scrolling views
    used to carry copy-pasted clamp implementations of exactly this.
    """

    def scroll_total(self) -> int:
        """Total extent of the content."""
        raise NotImplementedError

    def scroll_pos(self) -> int:
        """First visible position."""
        raise NotImplementedError

    def scroll_visible(self) -> int:
        """How many positions are visible at once."""
        raise NotImplementedError

    def apply_scroll_pos(self, pos: int) -> None:
        """Move the viewport origin to the (already clamped) ``pos``,
        touching *only* viewport state — no damage posts, and no layout
        invalidation unless content geometry really changed."""
        raise NotImplementedError

    def scroll_clamp(self, pos: int) -> int:
        """Clamp a requested position into the scrollable range."""
        return max(0, min(pos, max(0, self.scroll_total() - 1)))

    def scroll_device_offset(self) -> int:
        """The viewport origin in *device rows* (feeds the shift
        distance).  Default: positions are device rows already."""
        return self.scroll_pos()

    def scroll_blit_area(self) -> Rect:
        """The local region that scrolls (excludes fixed headers)."""
        return self.local_bounds

    def scroll_blit_ok(self) -> bool:
        """May this move be satisfied by a surface shift?

        Default: only when one scroll unit is one device row — on the
        raster backend glyphs are taller than the 1-unit rows list-like
        views draw on, so vertically shifted rows would interleave.
        """
        return self._scroll_unit_is_device_row()

    def _scroll_unit_is_device_row(self) -> bool:
        im = self.interaction_manager()
        if im is None:
            return False
        return im.window_system.font_metrics(_PROBE_FONT).height == 1

    def set_scroll_pos(self, pos: int) -> None:
        """Jump so ``pos`` is the first visible position (clamped)."""
        before = self.scroll_device_offset()
        self.apply_scroll_pos(self.scroll_clamp(pos))
        self.scroll_moved(before - self.scroll_device_offset())

    def scroll_moved(self, dy: int) -> None:
        """Post repair for a viewport move of ``dy`` device rows."""
        if dy == 0:
            self.want_update()
            return
        area = self.scroll_blit_area()
        if self.scroll_blit_ok() and self.want_scroll(area, dy):
            return
        if obs.metrics_on:
            obs.registry.inc("view.rows_repainted", area.height)
        self.want_update(area)


class ScrollBar(View):
    """A vertical scroll bar wrapping a scrollable body view."""

    atk_name = "scrollbar"

    def __init__(self, body: Optional[View] = None) -> None:
        super().__init__()
        self.body: Optional[View] = None
        self._dragging = False
        if body is not None:
            self.set_body(body)

    def set_body(self, body: View) -> None:
        if self.body is not None:
            self.remove_child(self.body)
        self.body = body
        self.add_child(body)
        self._needs_layout = True

    def initial_focus(self):
        return self.body.initial_focus() if self.body is not None else self

    def layout(self) -> None:
        if self.body is not None:
            self.body.set_bounds(
                Rect(BAR_WIDTH, 0,
                     max(0, self.width - BAR_WIDTH), self.height)
            )

    # -- scroll arithmetic ------------------------------------------------

    def _scrollable(self) -> Optional[Scrollable]:
        if isinstance(self.body, Scrollable):
            return self.body
        return None

    def thumb_extent(self) -> Tuple[int, int]:
        """(top, height) of the thumb in bar rows."""
        body = self._scrollable()
        track = max(1, self.height)
        if body is None:
            return (0, track)
        total = max(1, body.scroll_total())
        visible = min(body.scroll_visible(), total)
        height = max(1, visible * track // total)
        top = min(body.scroll_pos() * track // total, track - height)
        return (top, height)

    def _pos_for_row(self, row: int) -> int:
        """Map a track row to a scroll position.

        The track's rows [0, track-1] span positions [0, max_pos] where
        ``max_pos`` pins the *last* visible page against the bottom —
        so dragging the thumb to the final track row reaches
        ``scroll_total - scroll_visible`` exactly.  (The old
        ``row * total // track`` mapping could never return max_pos on
        short tracks: the final line stayed unreachable by thumb.)

        A document that fits the view keeps the classic proportional
        reach ``[0, total - 1]`` instead: ATK's bars let a short
        document scroll partly off the top, and views whose units are
        not device rows (the text view's positions are wrapped-height
        offsets) clamp for themselves.
        """
        body = self._scrollable()
        if body is None:
            return 0
        track = max(1, self.height)
        total = body.scroll_total()
        max_pos = max(0, total - min(body.scroll_visible(), total))
        if max_pos == 0:
            max_pos = max(0, total - 1)
        if track <= 1:
            return 0
        return max(0, min(row, track - 1)) * max_pos // (track - 1)

    # -- drawing --------------------------------------------------------------

    def draw(self, graphic: Graphic) -> None:
        if self.height <= 0:
            return
        graphic.draw_vline(0, 0, self.height - 1)
        top, height = self.thumb_extent()
        graphic.fill_rect(Rect(0, top, 1, height), 1)

    # -- routing (§3) -------------------------------------------------------------

    def route_mouse(self, event: MouseEvent) -> Optional[View]:
        if event.point.x < BAR_WIDTH:
            return None  # the bar's own column: handle here
        return self.body

    def _bar_update(self) -> None:
        """Repaint the bar's own column (the thumb moved).

        Deliberately *not* a full-view update: damage covering the body
        would force the body's scroll to repaint everything, defeating
        the shift-blit the body just queued.
        """
        self.want_update(Rect(0, 0, BAR_WIDTH, self.height))

    def handle_mouse(self, event: MouseEvent) -> bool:
        body = self._scrollable()
        if body is None:
            return False
        if event.action == MouseAction.DOWN:
            self._dragging = True
            body.set_scroll_pos(self._pos_for_row(event.point.y))
            self._bar_update()
            return True
        if event.action == MouseAction.DRAG and self._dragging:
            body.set_scroll_pos(self._pos_for_row(event.point.y))
            self._bar_update()
            return True
        if event.action == MouseAction.UP:
            self._dragging = False
            return True
        return False

    # -- keyboard paging: the bar adds Page bindings for its body ------------

    def handle_key(self, event) -> bool:
        body = self._scrollable()
        if body is None:
            return super().handle_key(event)
        if event.keysym() in ("Next", "C-v"):
            body.set_scroll_pos(body.scroll_pos() + max(1, body.scroll_visible() - 1))
            self._bar_update()
            return True
        if event.keysym() in ("Prior", "M-v"):
            body.set_scroll_pos(body.scroll_pos() - max(1, body.scroll_visible() - 1))
            self._bar_update()
            return True
        return super().handle_key(event)
