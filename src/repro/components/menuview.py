"""Pop-up menu rendering.

The window snapshots in the paper show pop-up menu cards (Figure 4's
"Send / Checkpoint / ..." card).  The interaction manager already
*composes* the effective :class:`~repro.core.menus.MenuSet` by parental
negotiation; this module renders it: :class:`MenuPopupView` draws the
cards as an overlay view, and :func:`menu_snapshot` formats a window's
current menus as text for examples and tests.

Choosing an item dispatches the same :class:`MenuEvent` the backend's
``inject_menu`` would, so the popup is pure presentation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.im import InteractionManager
from ..core.menus import MenuSet
from ..core.view import View
from ..graphics.geometry import Point, Rect
from ..graphics.graphic import Graphic
from ..wm.events import MenuEvent, MouseAction, MouseEvent

__all__ = ["MenuPopupView", "menu_snapshot"]


class MenuPopupView(View):
    """Draws a menu set as stacked cards; click an item to choose it."""

    atk_name = "menupopupview"

    def __init__(self, im: Optional[InteractionManager] = None) -> None:
        super().__init__()
        self._im = None  # not the view-tree root link; just a reference
        self.source_im = im
        self.menus: Optional[MenuSet] = None
        self.visible = False

    def show(self, menus: Optional[MenuSet] = None) -> None:
        """Populate from ``menus`` (default: the source IM's set)."""
        if menus is None and self.source_im is not None:
            menus = self.source_im.menu_set()
        self.menus = menus
        self.visible = True
        self.want_update()

    def hide(self) -> None:
        self.visible = False
        self.want_update()

    # -- geometry -----------------------------------------------------------

    def _card_layout(self) -> List[Tuple[Rect, str, List[str]]]:
        """[(rect, card name, labels)] stacked left to right."""
        if self.menus is None:
            return []
        layout = []
        x = 0
        for card in self.menus.cards():
            labels = card.labels()
            width = max(
                [len(card.name)] + [len(label) for label in labels]
            ) + 2
            height = len(labels) + 2
            layout.append((Rect(x, 0, width + 2, height), card.name, labels))
            x += width + 3
        return layout

    def desired_size(self, width: int, height: int) -> Tuple[int, int]:
        layout = self._card_layout()
        if not layout:
            return (1, 1)
        want_w = max(rect.right for rect, _n, _l in layout)
        want_h = max(rect.bottom for rect, _n, _l in layout)
        return (min(width, want_w), min(height, want_h))

    # -- drawing ---------------------------------------------------------------

    def draw(self, graphic: Graphic) -> None:
        if not self.visible:
            return
        for rect, name, labels in self._card_layout():
            graphic.erase_rect(rect)
            graphic.draw_rect(rect)
            graphic.draw_string(rect.left + 1, rect.top, f" {name} ")
            for row, label in enumerate(labels):
                graphic.draw_string(rect.left + 2, rect.top + 1 + row, label)

    # -- interaction ----------------------------------------------------------

    def item_at(self, point: Point) -> Optional[Tuple[str, str]]:
        for rect, name, labels in self._card_layout():
            if rect.contains_point(point):
                row = point.y - rect.top - 1
                if 0 <= row < len(labels):
                    return (name, labels[row])
        return None

    def handle_mouse(self, event: MouseEvent) -> bool:
        if not self.visible:
            return False
        if event.action == MouseAction.DOWN:
            return True
        if event.action == MouseAction.UP:
            choice = self.item_at(event.point)
            self.hide()
            if choice is not None and self.source_im is not None:
                self.source_im.window.post_event(MenuEvent(*choice))
                self.source_im.process_events()
            return True
        return event.action == MouseAction.DRAG


def menu_snapshot(im: InteractionManager) -> List[str]:
    """The window's current effective menus, one card per line."""
    return im.menu_set().describe()
