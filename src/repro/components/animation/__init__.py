"""The animation component: timed bitmap frame sequences."""

from .animdata import AnimationData, pascal_triangle_frames
from .animview import AnimationView

__all__ = ["AnimationData", "AnimationView", "pascal_triangle_frames"]
