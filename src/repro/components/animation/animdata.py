r"""The animation data object: a timed sequence of bitmap frames.

"Some of the components included in the toolkit are ... simple
animations" — and the Figure-5 document embeds "an animation showing
the building of [Pascal's] triangle".  :class:`AnimationData` stores
frames (reusing the raster component's row encoding) plus a tick period;
the view plays them against the interaction manager's timer.

External representation body::

    @frames <count> <period>
    @frame <width> <height>
    r <pixels>
    ...
"""

from __future__ import annotations

from typing import List, Optional

from ...core.dataobject import DataObject
from ...core.datastream import BodyLine, DataStreamError, EndObject
from ...graphics.image import Bitmap
from ..raster.rasterdata import decode_rows, encode_rows

__all__ = ["AnimationData", "pascal_triangle_frames"]


class AnimationData(DataObject):
    """An ordered list of frames with a tick period."""

    atk_name = "animation"

    def __init__(self, frames: Optional[List[Bitmap]] = None,
                 period: int = 1) -> None:
        super().__init__()
        self.frames: List[Bitmap] = list(frames or [])
        self.period = max(1, period)

    @property
    def frame_count(self) -> int:
        return len(self.frames)

    def add_frame(self, frame: Bitmap) -> None:
        self.frames.append(frame)
        self.changed("frames", where=len(self.frames) - 1)

    def frame(self, index: int) -> Bitmap:
        return self.frames[index % max(1, len(self.frames))]

    def max_size(self) -> tuple:
        width = max((f.width for f in self.frames), default=1)
        height = max((f.height for f in self.frames), default=1)
        return (width, height)

    # -- external representation ----------------------------------------

    def write_body(self, writer) -> None:
        writer.write_body_line(f"@frames {len(self.frames)} {self.period}")
        for frame in self.frames:
            writer.write_body_line(f"@frame {frame.width} {frame.height}")
            for line in encode_rows(frame):
                writer.write_body_line(line)

    def read_body(self, reader) -> None:
        self.frames = []
        current_rows: List[str] = []
        current_size = (0, 0)
        in_frame = False

        def close_frame() -> None:
            nonlocal in_frame
            if in_frame:
                self.frames.append(
                    decode_rows(current_rows, *current_size)
                )
                current_rows.clear()
                in_frame = False

        for event in reader.body_events():
            if isinstance(event, BodyLine):
                text = event.text
                if not text.strip():
                    continue
                if text.startswith("@frames "):
                    parts = text.split()
                    self.period = max(1, int(parts[2]))
                elif text.startswith("@frame "):
                    close_frame()
                    parts = text.split()
                    current_size = (int(parts[1]), int(parts[2]))
                    in_frame = True
                elif text.startswith(("r ", "+ ")):
                    if not in_frame:
                        raise DataStreamError(
                            "frame rows before @frame", event.line
                        )
                    current_rows.append(text)
                else:
                    raise DataStreamError(
                        f"unknown animation directive {text!r}", event.line
                    )
            elif isinstance(event, EndObject):
                break
        close_frame()
        self.changed("frames")


def pascal_triangle_frames(levels: int = 5) -> List[Bitmap]:
    """Frames showing Pascal's triangle being built row by row —
    the Figure-5 animation, generated rather than hand-drawn."""
    triangle: List[List[int]] = []
    for level in range(levels):
        row = [1] * (level + 1)
        for k in range(1, level):
            row[k] = triangle[level - 1][k - 1] + triangle[level - 1][k]
        triangle.append(row)
    width = 4 * levels + 2
    frames: List[Bitmap] = []
    for shown in range(1, levels + 1):
        rows = []
        for level in range(shown):
            numbers = " ".join(str(n) for n in triangle[level])
            dots = "".join("*" if ch != " " else " " for ch in numbers)
            pad = max(0, (width - len(dots)) // 2)
            rows.append(" " * pad + dots)
        frames.append(Bitmap.from_rows(rows, ink="*"))
    return frames
