"""The animation view: plays frames against the IM timer.

"In order to run the animation, click into the cell and choose the
animate item from the menus" (Figure 5's caption).  This view
reproduces that interaction: an ``Animate`` menu item starts playback,
timer events advance frames every ``period`` ticks, and ``Stop`` (or
reaching the last frame in one-shot mode) halts it.

Frames are pre-composed into an off-screen window before display —
the OffScreenWindow porting class earning its keep.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ...core.view import View
from ...graphics.graphic import Graphic
from ...wm.events import MouseAction, MouseEvent, TimerEvent
from .animdata import AnimationData

__all__ = ["AnimationView"]


class AnimationView(View):
    """Displays one frame; animates when asked."""

    atk_name = "animationview"

    def __init__(self, dataobject: Optional[AnimationData] = None,
                 loop: bool = True) -> None:
        super().__init__(dataobject)
        self.current = 0
        self.playing = False
        self.loop = loop
        self._ticks = 0
        self._build_menus()

    @property
    def data(self) -> Optional[AnimationData]:
        return self.dataobject

    def desired_size(self, width: int, height: int) -> Tuple[int, int]:
        if self.data is None or not self.data.frames:
            return (min(width, 10), min(height, 3))
        w, h = self.data.max_size()
        return (min(width, w), min(height, h))

    # -- playback ------------------------------------------------------------

    def start(self) -> None:
        """Begin playback (subscribes to the IM timer)."""
        if self.data is None or not self.data.frames:
            return
        im = self.interaction_manager()
        if im is not None:
            im.add_timer_subscriber(self)
        self.playing = True
        self._ticks = 0
        self.want_update()

    def stop(self) -> None:
        im = self.interaction_manager()
        if im is not None:
            im.remove_timer_subscriber(self)
        self.playing = False
        self.want_update()

    def show_frame(self, index: int) -> None:
        if self.data is not None and self.data.frames:
            self.current = index % self.data.frame_count
            self.want_update()

    def handle_timer(self, event: TimerEvent) -> None:
        """IM timer callback: advance when the period elapses."""
        if not self.playing or self.data is None or not self.data.frames:
            return
        self._ticks += 1
        if self._ticks % self.data.period:
            return
        at_end = self.current >= self.data.frame_count - 1
        if at_end and not self.loop:
            self.stop()
            return
        self.show_frame(self.current + 1)

    # -- display ----------------------------------------------------------------

    def draw(self, graphic: Graphic) -> None:
        if self.data is None or not self.data.frames:
            graphic.draw_string(0, 0, "(empty animation)")
            return
        frame = self.data.frame(self.current)
        im = self.interaction_manager()
        if im is not None:
            # Compose off screen, then copy — flicker-free on a real
            # display, and it exercises the OffScreenWindow port class.
            off = im.window_system.create_offscreen(frame.width, frame.height)
            off.graphic().draw_bitmap(frame, 0, 0)
            off.copy_to(graphic, 0, 0)
        else:
            graphic.draw_bitmap(frame, 0, 0)

    # -- interaction ---------------------------------------------------------------

    def handle_mouse(self, event: MouseEvent) -> bool:
        if event.action == MouseAction.DOWN:
            self.want_input_focus()
            return True
        return event.action in (MouseAction.DRAG, MouseAction.UP)

    def _build_menus(self) -> None:
        card = self.menu_card("Animation")
        card.add("Animate", lambda v, e: self.start())
        card.add("Stop", lambda v, e: self.stop())
        card.add("Rewind", lambda v, e: self.show_frame(0))
