"""Label: a static one-line text view.

The simplest view in the library, and the standard example of a view
with no data object.  Used by the console, dialogs, and the message
line.
"""

from __future__ import annotations

from typing import Tuple

from ..core.view import View
from ..graphics.fontdesc import FontDesc
from ..graphics.graphic import Graphic

__all__ = ["Label"]


class Label(View):
    """Displays ``text`` left-aligned or centered in its rectangle."""

    atk_name = "label"

    def __init__(self, text: str = "", font: FontDesc = None,
                 centered: bool = False, inverse: bool = False) -> None:
        super().__init__()
        self._text = text
        self.font = font if font is not None else FontDesc("andy", 12)
        self.centered = centered
        self.inverse = inverse

    @property
    def text(self) -> str:
        return self._text

    def set_text(self, text: str) -> None:
        if text != self._text:
            self._text = text
            self.want_update()

    def desired_size(self, width: int, height: int) -> Tuple[int, int]:
        """One line, as wide as the text (clamped to the offer)."""
        im = self.interaction_manager()
        if im is not None:
            metrics = im.window_system.font_metrics(self.font)
        else:  # unattached: estimate with cell metrics
            from ..graphics.fontdesc import FontMetrics

            metrics = FontMetrics(self.font, 1, 1, 0)
        return (
            min(width, metrics.string_width(self._text)),
            min(height, metrics.height),
        )

    def draw(self, graphic: Graphic) -> None:
        graphic.set_font(self.font)
        if self.centered:
            graphic.draw_string_centered(self.local_bounds, self._text)
        else:
            graphic.draw_string(0, 0, self._text)
        if self.inverse:
            graphic.invert_rect(self.local_bounds)
