"""ListView: a scrollable, selectable list of text items.

Not one of the paper's named components, but the building block its
application snapshots are made of: the 1414-folder panel and the
message-caption panel of Figure 3, and the related-tools panel of
Figure 2, are all lists with a selection.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..core.view import View
from ..graphics.geometry import Rect
from ..graphics.graphic import Graphic
from ..wm.events import KeyEvent, MouseAction, MouseEvent
from .scrollbar import Scrollable

__all__ = ["ListView"]


class ListView(View, Scrollable):
    """Displays ``items`` one per row; click or arrow-key to select."""

    atk_name = "listview"

    def __init__(self, items: Optional[List[str]] = None,
                 on_select: Optional[Callable[[int, str], None]] = None,
                 on_activate: Optional[Callable[[int, str], None]] = None):
        super().__init__()
        self._items: List[str] = list(items or [])
        self.selected: Optional[int] = None
        self.on_select = on_select        # selection moved
        self.on_activate = on_activate    # double-click / Return
        self._top = 0
        self.keymap.bind("Up", lambda v, k: self.move_selection(-1))
        self.keymap.bind("Down", lambda v, k: self.move_selection(1))
        self.keymap.bind("Return", self._cmd_activate)

    # -- items ------------------------------------------------------------

    @property
    def items(self) -> List[str]:
        return list(self._items)

    def set_items(self, items: List[str], keep_selection: bool = False):
        old = self.selected_item() if keep_selection else None
        self._items = list(items)
        self.selected = (
            self._items.index(old) if old in self._items else None
        )
        self._top = min(self._top, max(0, len(self._items) - 1))
        self.want_update()

    def selected_item(self) -> Optional[str]:
        if self.selected is None or self.selected >= len(self._items):
            return None
        return self._items[self.selected]

    def select_index(self, index: Optional[int], notify: bool = True) -> None:
        if index is not None:
            index = max(0, min(index, len(self._items) - 1))
        if index == self.selected:
            return
        self.selected = index
        if index is not None:
            if index < self._top:
                self._top = index
            elif self.height > 0 and index >= self._top + self.height:
                self._top = index - self.height + 1
        self.want_update()
        if notify and index is not None and self.on_select is not None:
            self.on_select(index, self._items[index])

    def move_selection(self, delta: int) -> None:
        if not self._items:
            return
        current = self.selected if self.selected is not None else -1
        self.select_index(current + delta)

    def _cmd_activate(self, view, key: KeyEvent) -> None:
        self.activate()

    def activate(self) -> None:
        item = self.selected_item()
        if item is not None and self.on_activate is not None:
            self.on_activate(self.selected, item)

    # -- Scrollable -----------------------------------------------------------

    def scroll_total(self) -> int:
        return len(self._items)

    def scroll_pos(self) -> int:
        return self._top

    def scroll_visible(self) -> int:
        return max(1, self.height)

    def apply_scroll_pos(self, pos: int) -> None:
        self._top = pos

    # -- drawing ----------------------------------------------------------------

    def draw(self, graphic: Graphic) -> None:
        for row in range(self.height):
            index = self._top + row
            if index >= len(self._items):
                break
            graphic.draw_string(0, row, self._items[index][:self.width])
            if index == self.selected:
                graphic.invert_rect(Rect(0, row, self.width, 1))

    # -- interaction ---------------------------------------------------------------

    def handle_mouse(self, event: MouseEvent) -> bool:
        if event.action == MouseAction.DOWN:
            index = self._top + event.point.y
            if 0 <= index < len(self._items):
                already = index == self.selected
                self.select_index(index)
                if already and event.clicks >= 1:
                    pass  # single re-click does not activate
                if event.clicks >= 2:
                    self.activate()
            self.want_input_focus()
            return True
        return event.action in (MouseAction.DRAG, MouseAction.UP)
