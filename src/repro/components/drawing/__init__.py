"""The drawing component: shapes, data object, and the routing view."""

from .drawdata import DrawingData
from .drawview import DrawView
from .shapes import (
    EllipseShape,
    GroupShape,
    LineShape,
    PolylineShape,
    RectShape,
    Shape,
    TextShape,
)

__all__ = [
    "DrawingData",
    "DrawView",
    "Shape",
    "LineShape",
    "RectShape",
    "EllipseShape",
    "GroupShape",
    "PolylineShape",
    "TextShape",
]
