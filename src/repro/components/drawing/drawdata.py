r"""The drawing data object.

Holds an ordered shape list (later shapes draw on top) over a logical
canvas.  Embedded text shapes carry real
:class:`~repro.components.text.textdata.TextData` objects — the drawing
is a multi-media component ("The drawing component will soon support
this feature"; this reproduction goes ahead and supports it, since the
section-3 anecdote depends on text inside drawings).

External representation body::

    @canvas <w> <h>
    @shape line <x0> <y0> <x1> <y1>
    @shape rect <x> <y> <w> <h> <filled>
    @shape ellipse <x> <y> <w> <h>
    @shape poly <closed> <n> <x> <y> ...
    @shape text <x> <y> <w> <h>
    \begindata{text, id}...\enddata{text, id}
    \view{textview, id}
"""

from __future__ import annotations

from typing import List, Optional

from ...core.dataobject import DataObject
from ...core.datastream import (
    BeginObject,
    BodyLine,
    DataStreamError,
    EndObject,
    ViewRef,
)
from ...graphics.geometry import Point, Rect
from .shapes import (
    EllipseShape,
    GroupShape,
    LineShape,
    PolylineShape,
    RectShape,
    Shape,
    TextShape,
)

__all__ = ["DrawingData"]


class DrawingData(DataObject):
    """An ordered list of shapes on a canvas."""

    atk_name = "drawing"

    def __init__(self, width: int = 40, height: int = 12) -> None:
        super().__init__()
        self.canvas_width = width
        self.canvas_height = height
        self.shapes: List[Shape] = []

    # -- edits ---------------------------------------------------------------

    def add_shape(self, shape: Shape) -> Shape:
        self.shapes.append(shape)
        self.changed("shape", detail=shape)
        return shape

    def remove_shape(self, shape: Shape) -> None:
        if shape in self.shapes:
            self.shapes.remove(shape)
            self.changed("shape", detail=shape)

    def move_shape(self, shape: Shape, dx: int, dy: int) -> None:
        shape.move_by(dx, dy)
        self.changed("shape", detail=shape)

    def raise_shape(self, shape: Shape) -> None:
        """Bring ``shape`` to the top of the paint order."""
        if shape in self.shapes:
            self.shapes.remove(shape)
            self.shapes.append(shape)
            self.changed("shape", detail=shape)

    def group_shapes(self, shapes: List[Shape]) -> GroupShape:
        """Replace ``shapes`` (top-level members) with one group."""
        for shape in shapes:
            if shape not in self.shapes:
                raise ValueError(f"{shape!r} is not a top-level shape")
        group = GroupShape(shapes)
        insert_at = min(self.shapes.index(s) for s in shapes)
        for shape in shapes:
            self.shapes.remove(shape)
        self.shapes.insert(insert_at, group)
        self.changed("shape", detail=group)
        return group

    def ungroup(self, group: GroupShape) -> List[Shape]:
        """Dissolve ``group`` back into its members, in place."""
        if group not in self.shapes:
            raise ValueError(f"{group!r} is not a top-level shape")
        at = self.shapes.index(group)
        self.shapes[at:at + 1] = group.children
        self.changed("shape", detail=group)
        return list(group.children)

    def add_text(self, rect: Rect, data=None) -> TextShape:
        """Embed a text component at ``rect`` (creates one if needed)."""
        if data is None:
            from ..text.textdata import TextData

            data = TextData()
        shape = TextShape(rect, data)
        return self.add_shape(shape)

    # -- queries ----------------------------------------------------------------

    def shape_at(self, point: Point, slop: int = 1) -> Optional[Shape]:
        """Topmost shape hit at ``point`` — semantic, not bounding-box.

        This is the §3 disambiguation: a line *over* an embedded text is
        returned in preference to the text, but only where the point is
        actually near the line's ink.
        """
        for shape in reversed(self.shapes):
            if shape.hit_test(point, slop):
                return shape
        return None

    def text_shapes(self) -> List[TextShape]:
        """Embedded texts, including those inside groups, in order."""
        out: List[TextShape] = []

        def walk(shapes: List[Shape]) -> None:
            for shape in shapes:
                if isinstance(shape, GroupShape):
                    walk(shape.children)
                elif isinstance(shape, TextShape):
                    out.append(shape)

        walk(self.shapes)
        return out

    def embedded_objects(self) -> List[DataObject]:
        return [s.data for s in self.text_shapes()]

    # -- external representation ---------------------------------------------------

    def write_body(self, writer) -> None:
        writer.write_body_line(
            f"@canvas {self.canvas_width} {self.canvas_height}"
        )
        for shape in self.shapes:
            self._write_shape(writer, shape)

    def _write_shape(self, writer, shape: Shape) -> None:
        writer.write_body_line(f"@shape {shape.spec()}")
        if isinstance(shape, GroupShape):
            for child in shape.children:
                self._write_shape(writer, child)
        elif isinstance(shape, TextShape):
            object_id = writer.write_object(shape.data)
            writer.write_view_ref(shape.view_type, object_id)

    def read_body(self, reader) -> None:
        self.shapes = []
        self._open_groups: List[list] = []  # [children, wanted_count]
        pending_text: Optional[TextShape] = None
        for event in reader.body_events():
            if isinstance(event, BodyLine):
                pending_text = self._read_line(event, pending_text)
            elif isinstance(event, BeginObject):
                reader.read_object(event)
            elif isinstance(event, ViewRef):
                if pending_text is None:
                    raise DataStreamError(
                        "\\view in drawing without a text shape", event.line
                    )
                data = reader.objects_by_id.get(event.object_id)
                if data is None:
                    raise DataStreamError(
                        f"unknown object id {event.object_id}", event.line
                    )
                pending_text.data = data
                pending_text.view_type = event.view_type
                pending_text = None
            elif isinstance(event, EndObject):
                break
        self.changed("shape")

    def _attach_shape(self, shape: Shape) -> None:
        """Add a parsed shape to the innermost open group, completing
        (possibly nested) groups as they fill."""
        while True:
            if not self._open_groups:
                self.shapes.append(shape)
                return
            children, wanted = self._open_groups[-1]
            children.append(shape)
            if len(children) < wanted:
                return
            self._open_groups.pop()
            shape = GroupShape(children)

    def _read_line(self, event: BodyLine,
                   pending_text: Optional[TextShape]) -> Optional[TextShape]:
        text = event.text
        if not text.strip():
            return pending_text
        parts = text.split()
        if parts[0] == "@canvas":
            self.canvas_width, self.canvas_height = int(parts[1]), int(parts[2])
            return pending_text
        if parts[0] != "@shape" or len(parts) < 2:
            raise DataStreamError(
                f"unknown drawing directive {text!r}", event.line
            )
        kind = parts[1]
        args = parts[2:]
        try:
            if kind == "line":
                self._attach_shape(LineShape(*map(int, args[:4])))
            elif kind == "rect":
                x, y, w, h, filled = map(int, args[:5])
                self._attach_shape(RectShape(Rect(x, y, w, h), bool(filled)))
            elif kind == "ellipse":
                x, y, w, h = map(int, args[:4])
                self._attach_shape(EllipseShape(Rect(x, y, w, h)))
            elif kind == "poly":
                closed = bool(int(args[0]))
                count = int(args[1])
                coords = list(map(int, args[2:2 + 2 * count]))
                points = [
                    Point(coords[i], coords[i + 1])
                    for i in range(0, len(coords), 2)
                ]
                self._attach_shape(PolylineShape(points, closed))
            elif kind == "group":
                wanted = int(args[0])
                if wanted < 1:
                    raise DataStreamError(
                        f"empty group in {text!r}", event.line
                    )
                self._open_groups.append([[], wanted])
            elif kind == "text":
                x, y, w, h = map(int, args[:4])
                shape = TextShape(Rect(x, y, w, h), data=None)
                self._attach_shape(shape)
                return shape
            else:
                raise DataStreamError(
                    f"unknown shape kind {kind!r}", event.line
                )
        except (ValueError, IndexError) as exc:
            raise DataStreamError(
                f"malformed shape {text!r}: {exc}", event.line
            ) from exc
        return pending_text
