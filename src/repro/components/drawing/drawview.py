"""The drawing view: the section-3 routing case, done right.

"The user of the drawing editor might first enter some text and then
place a line over the text.  When a mouse event occurs near that line
only the drawing component could determine whether the user was
selecting the line or the underlying text.  This was impossible to
accomplish since the [prototype] toolkit maintained strict, global
control over the distribution of input events."

:meth:`DrawView.route_mouse` is that determination: the drawing
interrogates its *shape list* (semantics) before its *child rectangles*
(geometry).  A click near a line's ink selects the line even where the
line crosses an embedded text's rectangle; a click inside the text but
away from any line ink routes to the text view.  Experiment E13 runs
exactly this configuration against a geometry-only router.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ...class_system.dynamic import load_class
from ...class_system.errors import DynamicLoadError
from ...core.view import View
from ...graphics.geometry import Point, Rect
from ...graphics.graphic import Graphic
from ...wm.events import MouseAction, MouseEvent
from .drawdata import DrawingData
from .shapes import Shape, TextShape

__all__ = ["DrawView"]

HIT_SLOP = 1


class DrawView(View):
    """Interactive view over a :class:`DrawingData`."""

    atk_name = "drawingview"

    def __init__(self, dataobject: Optional[DrawingData] = None) -> None:
        super().__init__()
        self.selected: Optional[Shape] = None
        self._drag_from: Optional[Point] = None
        self._text_views: Dict[int, View] = {}
        self._build_menus()
        if dataobject is not None:
            self.set_dataobject(dataobject)

    @property
    def data(self) -> Optional[DrawingData]:
        return self.dataobject

    def on_data_changed(self, change) -> None:
        self._needs_layout = True
        self.want_update()

    # ------------------------------------------------------------------
    # Children: embedded text views
    # ------------------------------------------------------------------

    def layout(self) -> None:
        if self.data is None:
            return
        live = set()
        for shape in self.data.text_shapes():
            if shape.data is None:
                continue
            live.add(id(shape))
            view = self._text_views.get(id(shape))
            if view is None:
                try:
                    cls = load_class(shape.view_type)
                except DynamicLoadError:
                    from ..text.textview import _UnknownComponentView

                    cls = _UnknownComponentView
                view = cls(shape.data)
                self._text_views[id(shape)] = view
                self.add_child(view)
            view.set_bounds(shape.bounds().intersection(self.local_bounds))
        for key, view in list(self._text_views.items()):
            if key not in live:
                self.remove_child(view)
                del self._text_views[key]

    def view_for_shape(self, shape: TextShape) -> Optional[View]:
        self.ensure_layout()
        return self._text_views.get(id(shape))

    # ------------------------------------------------------------------
    # Drawing
    # ------------------------------------------------------------------

    def draw(self, graphic: Graphic) -> None:
        if self.data is None:
            return
        for shape in self.data.shapes:
            shape.draw(graphic)
        if self.selected is not None:
            # Selection feedback: invert the shape's bounds corners.
            box = self.selected.bounds()
            for corner in (
                Point(box.left, box.top),
                Point(box.right - 1, box.top),
                Point(box.left, box.bottom - 1),
                Point(box.right - 1, box.bottom - 1),
            ):
                graphic.invert_rect(Rect(corner.x, corner.y, 1, 1))

    # ------------------------------------------------------------------
    # Routing: semantics before geometry (the §3 anecdote)
    # ------------------------------------------------------------------

    def route_mouse(self, event: MouseEvent) -> Optional[View]:
        if self.data is None:
            return None
        if self._drag_from is not None:
            return None  # mid-drag: keep the interaction
        hit = self.data.shape_at(event.point, HIT_SLOP)
        if isinstance(hit, TextShape):
            return self.view_for_shape(hit)
        if hit is not None:
            return None  # a line/rect/... claims the event — handle here
        # No ink hit: a click inside a text rectangle still belongs to
        # the text (caret placement in blank space).
        for shape in reversed(self.data.text_shapes()):
            if shape.bounds().contains_point(event.point):
                return self.view_for_shape(shape)
        return None

    def handle_mouse(self, event: MouseEvent) -> bool:
        if self.data is None:
            return False
        if event.action == MouseAction.DOWN:
            hit = self.data.shape_at(event.point, HIT_SLOP)
            self.select(hit)
            self._drag_from = event.point if hit is not None else None
            self.want_input_focus()
            return True
        if event.action == MouseAction.DRAG and self._drag_from is not None:
            if self.selected is not None:
                dx = event.point.x - self._drag_from.x
                dy = event.point.y - self._drag_from.y
                if dx or dy:
                    self.data.move_shape(self.selected, dx, dy)
                self._drag_from = event.point
            return True
        if event.action == MouseAction.UP:
            self._drag_from = None
            return True
        return False

    def select(self, shape: Optional[Shape]) -> None:
        if shape is not self.selected:
            self.selected = shape
            self.want_update()

    # ------------------------------------------------------------------
    # Menus
    # ------------------------------------------------------------------

    def _build_menus(self) -> None:
        card = self.menu_card("Draw")
        card.add("Delete", lambda v, e: self._delete_selected())
        card.add("Raise", lambda v, e: self._raise_selected())

    def _delete_selected(self) -> None:
        if self.data is not None and self.selected is not None:
            self.data.remove_shape(self.selected)
            self.selected = None

    def _raise_selected(self) -> None:
        if self.data is not None and self.selected is not None:
            self.data.raise_shape(self.selected)

    # ------------------------------------------------------------------
    # Embedding
    # ------------------------------------------------------------------

    def desired_size(self, width: int, height: int) -> Tuple[int, int]:
        if self.data is None:
            return (width, 5)
        return (
            min(width, self.data.canvas_width),
            min(height, self.data.canvas_height),
        )
