"""Shapes for the drawing component.

Each shape knows its bounds, how to draw itself into a drawable, and
how to *hit test* a point with a slop distance — the semantic
information the drawing view uses to decide whether a mouse event
selects a shape or falls through to an embedded component (the
section-3 drawing-editor anecdote).
"""

from __future__ import annotations

import math
from typing import List

from ...graphics.geometry import Point, Rect
from ...graphics.graphic import Graphic

__all__ = ["Shape", "LineShape", "RectShape", "EllipseShape", "PolylineShape",
           "TextShape"]


class Shape:
    """Base class for drawing elements."""

    kind = "shape"

    def bounds(self) -> Rect:
        raise NotImplementedError

    def draw(self, graphic: Graphic) -> None:
        raise NotImplementedError

    def hit_test(self, point: Point, slop: int = 1) -> bool:
        """True if ``point`` is within ``slop`` of the shape's ink."""
        raise NotImplementedError

    def move_by(self, dx: int, dy: int) -> None:
        raise NotImplementedError

    def spec(self) -> str:
        """One-line external representation payload."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{self.kind} {tuple(self.bounds())}>"


def _point_segment_distance(p: Point, a: Point, b: Point) -> float:
    """Euclidean distance from ``p`` to segment ``ab``."""
    ax, ay, bx, by = a.x, a.y, b.x, b.y
    dx, dy = bx - ax, by - ay
    if dx == 0 and dy == 0:
        return math.hypot(p.x - ax, p.y - ay)
    t = ((p.x - ax) * dx + (p.y - ay) * dy) / (dx * dx + dy * dy)
    t = max(0.0, min(1.0, t))
    return math.hypot(p.x - (ax + t * dx), p.y - (ay + t * dy))


class LineShape(Shape):
    """A line segment."""

    kind = "line"

    def __init__(self, x0: int, y0: int, x1: int, y1: int) -> None:
        self.x0, self.y0, self.x1, self.y1 = x0, y0, x1, y1

    def bounds(self) -> Rect:
        rect = Rect.from_corners(self.x0, self.y0, self.x1, self.y1)
        # A horizontal/vertical line still covers one row/column.
        return Rect(rect.left, rect.top, max(1, rect.width), max(1, rect.height))

    def draw(self, graphic: Graphic) -> None:
        graphic.draw_line(self.x0, self.y0, self.x1, self.y1)

    def hit_test(self, point: Point, slop: int = 1) -> bool:
        return _point_segment_distance(
            point, Point(self.x0, self.y0), Point(self.x1, self.y1)
        ) <= slop

    def move_by(self, dx: int, dy: int) -> None:
        self.x0 += dx
        self.y0 += dy
        self.x1 += dx
        self.y1 += dy

    def spec(self) -> str:
        return f"line {self.x0} {self.y0} {self.x1} {self.y1}"


class RectShape(Shape):
    """A rectangle outline (or filled)."""

    kind = "rect"

    def __init__(self, rect: Rect, filled: bool = False) -> None:
        self.rect = rect
        self.filled = filled

    def bounds(self) -> Rect:
        return self.rect

    def draw(self, graphic: Graphic) -> None:
        if self.filled:
            graphic.fill_rect(self.rect, 1)
        else:
            graphic.draw_rect(self.rect)

    def hit_test(self, point: Point, slop: int = 1) -> bool:
        outer = self.rect.inset(-slop, -slop)
        if self.filled:
            return outer.contains_point(point)
        inner = self.rect.inset(slop + 1, slop + 1)
        return outer.contains_point(point) and not inner.contains_point(point)

    def move_by(self, dx: int, dy: int) -> None:
        self.rect = self.rect.offset(dx, dy)

    def spec(self) -> str:
        fill = 1 if self.filled else 0
        r = self.rect
        return f"rect {r.left} {r.top} {r.width} {r.height} {fill}"


class EllipseShape(Shape):
    """An ellipse inscribed in a rectangle."""

    kind = "ellipse"

    def __init__(self, rect: Rect) -> None:
        self.rect = rect

    def bounds(self) -> Rect:
        return self.rect

    def draw(self, graphic: Graphic) -> None:
        graphic.draw_ellipse(self.rect)

    def hit_test(self, point: Point, slop: int = 1) -> bool:
        a = max(1.0, self.rect.width / 2)
        b = max(1.0, self.rect.height / 2)
        cx = self.rect.left + self.rect.width / 2
        cy = self.rect.top + self.rect.height / 2
        norm = math.hypot((point.x - cx) / a, (point.y - cy) / b)
        tolerance = slop / min(a, b) + 0.35
        return abs(norm - 1.0) <= tolerance

    def move_by(self, dx: int, dy: int) -> None:
        self.rect = self.rect.offset(dx, dy)

    def spec(self) -> str:
        r = self.rect
        return f"ellipse {r.left} {r.top} {r.width} {r.height}"


class PolylineShape(Shape):
    """A connected sequence of segments."""

    kind = "poly"

    def __init__(self, points: List[Point], closed: bool = False) -> None:
        if len(points) < 2:
            raise ValueError("polyline needs at least two points")
        self.points = list(points)
        self.closed = closed

    def bounds(self) -> Rect:
        box = Rect.empty()
        for point in self.points:
            box = box.union(Rect(point.x, point.y, 1, 1))
        return box

    def draw(self, graphic: Graphic) -> None:
        graphic.draw_polyline(self.points, closed=self.closed)

    def _segments(self):
        yield from zip(self.points, self.points[1:])
        if self.closed:
            yield (self.points[-1], self.points[0])

    def hit_test(self, point: Point, slop: int = 1) -> bool:
        return any(
            _point_segment_distance(point, a, b) <= slop
            for a, b in self._segments()
        )

    def move_by(self, dx: int, dy: int) -> None:
        self.points = [p.offset(dx, dy) for p in self.points]

    def spec(self) -> str:
        closed = 1 if self.closed else 0
        coords = " ".join(f"{p.x} {p.y}" for p in self.points)
        return f"poly {closed} {len(self.points)} {coords}"


class GroupShape(Shape):
    """A composite of shapes moved/selected as one.

    The Figure-3 message was drawn with "the zip hierarchical drawing
    editor": diagrams are trees of grouped parts.  A group hit-tests
    and moves as a unit, and draws its children in order.
    """

    kind = "group"

    def __init__(self, children: List[Shape]) -> None:
        if not children:
            raise ValueError("a group needs at least one shape")
        self.children = list(children)

    def bounds(self) -> Rect:
        box = Rect.empty()
        for child in self.children:
            box = box.union(child.bounds())
        return box

    def draw(self, graphic: Graphic) -> None:
        for child in self.children:
            child.draw(graphic)

    def hit_test(self, point: Point, slop: int = 1) -> bool:
        return any(child.hit_test(point, slop) for child in self.children)

    def move_by(self, dx: int, dy: int) -> None:
        for child in self.children:
            child.move_by(dx, dy)

    def flatten(self) -> List[Shape]:
        """All leaf shapes, depth-first."""
        leaves: List[Shape] = []
        for child in self.children:
            if isinstance(child, GroupShape):
                leaves.extend(child.flatten())
            else:
                leaves.append(child)
        return leaves

    def spec(self) -> str:
        # Groups serialize as their child count; children follow as
        # consecutive @shape lines consumed by the reader.
        return f"group {len(self.children)}"


class TextShape(Shape):
    """An embedded text component inside a drawing (section 3).

    "The drawing editor used the text component to display and edit
    text within the drawings."  The shape holds the embedded TextData
    and the rectangle allocated to its view; the drawing view realizes
    the child view, and the line-over-text routing decision (E13) is
    made against this shape's rect.
    """

    kind = "text"

    def __init__(self, rect: Rect, data, view_type: str = "textview") -> None:
        self.rect = rect
        self.data = data
        self.view_type = view_type

    def bounds(self) -> Rect:
        return self.rect

    def draw(self, graphic: Graphic) -> None:
        pass  # the embedded view draws itself as a child of the drawing view

    def hit_test(self, point: Point, slop: int = 1) -> bool:
        return self.rect.inset(-slop, -slop).contains_point(point)

    def move_by(self, dx: int, dy: int) -> None:
        self.rect = self.rect.offset(dx, dy)

    def spec(self) -> str:
        r = self.rect
        return f"text {r.left} {r.top} {r.width} {r.height}"
