"""The spreadsheet formula engine (paper sections 1-2, Figure 5).

The table component doubles as a spreadsheet ("It also shows off the
spreadsheet capabilities of the table", Fig. 5).  This module provides
the formula language:

* cell references ``A1``, ``B12`` (column letters, 1-based rows);
* ranges ``A1:B3`` as function arguments;
* operators ``+ - * / ^``, unary minus, parentheses;
* functions ``SUM AVG MIN MAX COUNT ABS SQRT``;
* the ``#REF`` marker left behind when a structural edit deletes a
  referenced row or column — it parses, survives the external
  representation, and always evaluates to an error;

plus dependency extraction (for recalculation ordering) and reference
*rebasing*: :meth:`Formula.rebase` rewrites every reference through a
mapping function and regenerates canonical source text, which is how
``insert_row``/``delete_col`` keep formulas pointing at the cells they
meant.

The engine is standalone: it evaluates against any ``resolve(row, col)``
callback, so tests exercise it without a table.
"""

from __future__ import annotations

import math
import re
from typing import Callable, Iterator, List, Optional, Set, Union

__all__ = [
    "FormulaError",
    "CellRef",
    "REF_DELETED",
    "parse_ref",
    "ref_name",
    "col_name",
    "parse_col",
    "Formula",
    "evaluate",
    "extract_refs",
    "FUNCTIONS",
]

Number = float
Resolver = Callable[[int, int], Number]


class FormulaError(ValueError):
    """Raised for syntax errors, bad references, and evaluation faults."""


#: The token a deleted reference rebases to.  ``=A1+#REF`` is legal
#: source (it round-trips through the datastream) and evaluating it
#: raises :class:`FormulaError`, so the cell displays ``#VALUE``.
REF_DELETED = "#REF"


class CellRef:
    """A (row, col) cell reference, 0-based internally."""

    __slots__ = ("row", "col")

    def __init__(self, row: int, col: int) -> None:
        self.row = row
        self.col = col

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, CellRef)
            and self.row == other.row
            and self.col == other.col
        )

    def __hash__(self) -> int:
        return hash((self.row, self.col))

    def __repr__(self) -> str:
        return f"CellRef({ref_name(self.row, self.col)})"


def col_name(col: int) -> str:
    """0-based column index to letters: 0->A, 25->Z, 26->AA."""
    if col < 0:
        raise FormulaError(f"negative column {col}")
    name = ""
    col += 1
    while col:
        col, rem = divmod(col - 1, 26)
        name = chr(ord("A") + rem) + name
    return name


def parse_col(letters: str) -> int:
    value = 0
    for char in letters.upper():
        if not "A" <= char <= "Z":
            raise FormulaError(f"bad column letters {letters!r}")
        value = value * 26 + (ord(char) - ord("A") + 1)
    return value - 1


def ref_name(row: int, col: int) -> str:
    """0-based (row, col) to the display name, e.g. (0, 0) -> ``A1``."""
    return f"{col_name(col)}{row + 1}"


_REF_RE = re.compile(r"^([A-Za-z]+)([0-9]+)$")


def parse_ref(name: str) -> CellRef:
    """Parse ``A1``-style name to a 0-based :class:`CellRef`."""
    match = _REF_RE.match(name)
    if match is None:
        raise FormulaError(f"bad cell reference {name!r}")
    return CellRef(int(match.group(2)) - 1, parse_col(match.group(1)))


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<number>\d+\.?\d*(?:[eE][-+]?\d+)?)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<badref>#REF)"
    r"|(?P<op>[-+*/^():,])"
    r")"
)

def _single(values: List[float], name: str) -> float:
    if len(values) != 1:
        raise FormulaError(f"{name} takes exactly one value")
    return values[0]


def _pair(values: List[float], name: str):
    if len(values) != 2:
        raise FormulaError(f"{name} takes exactly two values")
    return values


def _round(values: List[float]) -> float:
    if len(values) == 1:
        return float(round(values[0]))
    value, digits = _pair(values, "ROUND")
    return round(value, int(digits))


def _mod(values: List[float]) -> float:
    value, divisor = _pair(values, "MOD")
    if divisor == 0:
        raise FormulaError("MOD by zero")
    return math.fmod(value, divisor)


FUNCTIONS = {
    "SUM": lambda values: sum(values),
    "AVG": lambda values: (sum(values) / len(values)) if values else 0.0,
    "MIN": lambda values: min(values) if values else 0.0,
    "MAX": lambda values: max(values) if values else 0.0,
    "COUNT": lambda values: float(len(values)),
    "ABS": lambda values: abs(_single(values, "ABS")),
    "SQRT": lambda values: math.sqrt(_single(values, "SQRT")),
    "ROUND": _round,
    "INT": lambda values: float(math.floor(_single(values, "INT"))),
    "MOD": _mod,
}


def _tokenize(source: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None or match.end() == pos:
            if source[pos:].strip():
                raise FormulaError(
                    f"unexpected character {source[pos]!r} in formula"
                )
            break
        tokens.append(match.group().strip())
        pos = match.end()
    return [t for t in tokens if t]


# ---------------------------------------------------------------------------
# Parser (recursive descent into an AST of tuples)
# ---------------------------------------------------------------------------
# Node shapes:
#   ("num", float) | ("ref", CellRef) | ("range", CellRef, CellRef)
#   ("neg", node) | ("bin", op, left, right) | ("call", name, [nodes])
#   ("badref",)  — a reference destroyed by a structural edit

class _Parser:
    def __init__(self, tokens: List[str]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise FormulaError("unexpected end of formula")
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise FormulaError(f"expected {token!r}, got {got!r}")

    def parse(self):
        node = self.expr()
        if self.peek() is not None:
            raise FormulaError(f"trailing tokens from {self.peek()!r}")
        return node

    def expr(self):
        node = self.term()
        while self.peek() in ("+", "-"):
            op = self.next()
            node = ("bin", op, node, self.term())
        return node

    def term(self):
        node = self.power()
        while self.peek() in ("*", "/"):
            op = self.next()
            node = ("bin", op, node, self.power())
        return node

    def power(self):
        node = self.unary()
        if self.peek() == "^":
            self.next()
            node = ("bin", "^", node, self.power())  # right associative
        return node

    def unary(self):
        if self.peek() == "-":
            self.next()
            return ("neg", self.unary())
        if self.peek() == "+":
            self.next()
            return self.unary()
        return self.atom()

    def atom(self):
        token = self.next()
        if token == "(":
            node = self.expr()
            self.expect(")")
            return node
        if token == REF_DELETED:
            return ("badref",)
        if re.match(r"^\d", token):
            return ("num", float(token))
        upper = token.upper()
        if upper in FUNCTIONS:
            self.expect("(")
            args = []
            if self.peek() != ")":
                args.append(self.argument())
                while self.peek() == ",":
                    self.next()
                    args.append(self.argument())
            self.expect(")")
            return ("call", upper, args)
        if _REF_RE.match(token):
            ref = parse_ref(token)
            if self.peek() == ":":
                self.next()
                end_token = self.next()
                if not _REF_RE.match(end_token):
                    raise FormulaError(f"bad range end {end_token!r}")
                return ("range", ref, parse_ref(end_token))
            return ("ref", ref)
        raise FormulaError(f"unknown name {token!r}")

    def argument(self):
        return self.expr()


# ---------------------------------------------------------------------------
# Evaluation & analysis
# ---------------------------------------------------------------------------

def _range_cells(start: CellRef, end: CellRef) -> Iterator[CellRef]:
    for row in range(min(start.row, end.row), max(start.row, end.row) + 1):
        for col in range(min(start.col, end.col), max(start.col, end.col) + 1):
            yield CellRef(row, col)


def _eval(node, resolve: Resolver) -> Union[float, List[float]]:
    kind = node[0]
    if kind == "num":
        return node[1]
    if kind == "badref":
        raise FormulaError(f"{REF_DELETED}: reference was deleted")
    if kind == "ref":
        return float(resolve(node[1].row, node[1].col))
    if kind == "range":
        return [float(resolve(c.row, c.col)) for c in _range_cells(node[1], node[2])]
    if kind == "neg":
        return -_scalar(_eval(node[1], resolve))
    if kind == "bin":
        _, op, left, right = node
        a = _scalar(_eval(left, resolve))
        b = _scalar(_eval(right, resolve))
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            if b == 0:
                raise FormulaError("division by zero")
            return a / b
        if op == "^":
            return a ** b
    if kind == "call":
        _, name, args = node
        values: List[float] = []
        for arg in args:
            result = _eval(arg, resolve)
            if isinstance(result, list):
                values.extend(result)
            else:
                values.append(result)
        return FUNCTIONS[name](values)
    raise FormulaError(f"bad AST node {node!r}")  # pragma: no cover


def _scalar(value) -> float:
    if isinstance(value, list):
        raise FormulaError("range used where a single value is required")
    return value


# Operator/node precedence for the unparser.  Atoms bind tightest;
# unary minus binds tighter than ``^`` (mirroring the parser, where
# ``power`` descends into ``unary``: ``-2^2`` is ``(-2)^2``).
_PREC = {"+": 1, "-": 1, "*": 2, "/": 2, "^": 3}
_NEG_PREC = 4
_ATOM_PREC = 9


def _node_prec(node) -> int:
    kind = node[0]
    if kind == "bin":
        return _PREC[node[1]]
    if kind == "neg":
        return _NEG_PREC
    return _ATOM_PREC


def _format_number(value: float) -> str:
    text = f"{value:g}"
    # The tokenizer has no leading-sign or bare-dot numbers; ``%g``
    # never emits either for the non-negative finite floats the parser
    # produced, so canonical output is always re-parseable.
    return text


def _unparse(node) -> str:
    """Canonical source text for an AST; ``parse(unparse(n)) == n``."""
    kind = node[0]
    if kind == "num":
        return _format_number(node[1])
    if kind == "ref":
        return ref_name(node[1].row, node[1].col)
    if kind == "range":
        return (f"{ref_name(node[1].row, node[1].col)}"
                f":{ref_name(node[2].row, node[2].col)}")
    if kind == "badref":
        return REF_DELETED
    if kind == "neg":
        inner = _unparse(node[1])
        if _node_prec(node[1]) < _NEG_PREC:
            inner = f"({inner})"
        return f"-{inner}"
    if kind == "bin":
        _, op, left, right = node
        prec = _PREC[op]
        left_text = _unparse(left)
        right_text = _unparse(right)
        if op == "^":
            # Right associative: parenthesise an exponent on the left.
            if _node_prec(left) <= prec and left[0] != "neg":
                left_text = f"({left_text})"
            if _node_prec(right) < prec:
                right_text = f"({right_text})"
        else:
            if _node_prec(left) < prec:
                left_text = f"({left_text})"
            if _node_prec(right) <= prec:
                right_text = f"({right_text})"
        return f"{left_text}{op}{right_text}"
    if kind == "call":
        args = ",".join(_unparse(arg) for arg in node[2])
        return f"{node[1]}({args})"
    raise FormulaError(f"bad AST node {node!r}")  # pragma: no cover


RefMapper = Callable[[CellRef], Optional[CellRef]]


def _rebase_node(node, mapper: RefMapper):
    """Rewrite every reference through ``mapper``; ``None`` destroys it.

    Returns ``(new_node, changed)``.  A destroyed plain reference — or a
    range either of whose *endpoints* is destroyed — becomes the
    ``("badref",)`` node, so the formula survives structurally but
    evaluates to an error.  Interior range rows/columns are not the
    range's responsibility: their deletion merely shrinks the span via
    the shifted endpoints.
    """
    kind = node[0]
    if kind == "ref":
        mapped = mapper(node[1])
        if mapped is None:
            return ("badref",), True
        if mapped == node[1]:
            return node, False
        return ("ref", mapped), True
    if kind == "range":
        start, end = mapper(node[1]), mapper(node[2])
        if start is None or end is None:
            return ("badref",), True
        if start == node[1] and end == node[2]:
            return node, False
        return ("range", start, end), True
    if kind == "neg":
        inner, changed = _rebase_node(node[1], mapper)
        return (("neg", inner), True) if changed else (node, False)
    if kind == "bin":
        left, left_changed = _rebase_node(node[2], mapper)
        right, right_changed = _rebase_node(node[3], mapper)
        if left_changed or right_changed:
            return ("bin", node[1], left, right), True
        return node, False
    if kind == "call":
        args = [_rebase_node(arg, mapper) for arg in node[2]]
        if any(changed for _, changed in args):
            return ("call", node[1], [arg for arg, _ in args]), True
        return node, False
    return node, False  # num, badref


def _walk_refs(node) -> Iterator[CellRef]:
    kind = node[0]
    if kind == "ref":
        yield node[1]
    elif kind == "range":
        yield from _range_cells(node[1], node[2])
    elif kind == "neg":
        yield from _walk_refs(node[1])
    elif kind == "bin":
        yield from _walk_refs(node[2])
        yield from _walk_refs(node[3])
    elif kind == "call":
        for arg in node[2]:
            yield from _walk_refs(arg)


class Formula:
    """A parsed formula: evaluate repeatedly, inspect dependencies."""

    __slots__ = ("source", "_ast")

    def __init__(self, source: str) -> None:
        self.source = source
        stripped = source[1:] if source.startswith("=") else source
        self._ast = _Parser(_tokenize(stripped)).parse()

    @classmethod
    def _from_ast(cls, ast) -> "Formula":
        formula = cls.__new__(cls)
        formula._ast = ast
        formula.source = "=" + _unparse(ast)
        return formula

    def refs(self) -> Set[CellRef]:
        """Every cell this formula reads."""
        return set(_walk_refs(self._ast))

    def rebase(self, mapper: RefMapper) -> "Formula":
        """This formula with every reference rewritten through ``mapper``.

        ``mapper(ref) -> CellRef`` relocates a reference, ``None``
        destroys it (the node becomes ``#REF``).  Returns ``self`` when
        no reference moved, so callers can cheaply detect the formulas
        a structural edit actually touched; otherwise a new formula
        with regenerated canonical source.
        """
        ast, changed = _rebase_node(self._ast, mapper)
        return Formula._from_ast(ast) if changed else self

    def evaluate(self, resolve: Resolver) -> float:
        result = _eval(self._ast, resolve)
        return _scalar(result) if isinstance(result, list) else float(result)

    def __repr__(self) -> str:
        return f"Formula({self.source!r})"


def evaluate(source: str, resolve: Resolver) -> float:
    """Parse and evaluate ``source`` in one step."""
    return Formula(source).evaluate(resolve)


def extract_refs(source: str) -> Set[CellRef]:
    """The cell references in ``source`` without evaluating it."""
    return Formula(source).refs()
