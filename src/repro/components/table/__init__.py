"""The table/spreadsheet component, its views, and the chart example."""

from .chart import BarChartView, ChartData, PieChartView
from .formula import (
    CellRef,
    Formula,
    FormulaError,
    REF_DELETED,
    col_name,
    evaluate,
    extract_refs,
    parse_col,
    parse_ref,
    ref_name,
)
from .recalc import CycleError, DependencyGraph
from .tabledata import CYCLE_ERROR, Cell, TableData, VALUE_ERROR
from .tableview import TableView

__all__ = [
    "TableData",
    "TableView",
    "Cell",
    "CYCLE_ERROR",
    "VALUE_ERROR",
    "REF_DELETED",
    "Formula",
    "FormulaError",
    "CycleError",
    "DependencyGraph",
    "CellRef",
    "parse_ref",
    "ref_name",
    "col_name",
    "parse_col",
    "evaluate",
    "extract_refs",
    "ChartData",
    "PieChartView",
    "BarChartView",
]
