"""The table view ("spread"): an editable grid on a TableData.

Displays a spreadsheet-style grid — lettered columns, numbered rows —
and edits cells in place.  Cells holding embedded data objects realize
child views by name through the dynamic loader, exactly like the text
view; a cell's row grows to give the embedded view room (the Fig. 5
document embeds text, an equation and an animation inside table cells).

Repaint is region-level: a ``("cell", (row, col))`` change record
damages only that cell's rectangle (tracked in ``_damaged_cells`` and
consumed by :meth:`draw`, which restricts its row/column sweep to the
graphic's clip band), and moving the selection repaints exactly the two
cells involved.  Full relayout (``_needs_layout``) is reserved for
shape changes, column-width drags, scrolling, and cells whose embedded
component arrives or departs — the cases where geometry actually moves.

The datastream view-type tag for this class is ``spread`` (the paper's
section-5 example places ``\\view{spread, 2}`` on a table), registered
as an alias alongside ``tableview``.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ...class_system.dynamic import load_class
from ...class_system.errors import DynamicLoadError
from ...class_system.registry import register_alias
from ...core.view import View
from ...graphics.geometry import Point, Rect
from ...graphics.graphic import Graphic
from ..scrollbar import Scrollable
from .formula import col_name
from .tabledata import Cell, TableData

__all__ = ["TableView"]

DEFAULT_COL_WIDTH = 9
ROW_LABEL_WIDTH = 4
HEADER_ROWS = 2  # column letters + rule


class TableView(View, Scrollable):
    """Editable grid view over a :class:`TableData`."""

    atk_name = "tableview"

    def __init__(self, dataobject: Optional[TableData] = None) -> None:
        super().__init__()
        self.selected: Tuple[int, int] = (0, 0)
        self.editing: Optional[str] = None  # the in-progress cell entry
        self._top_row = 0
        self.col_widths: Dict[int, int] = {}
        self._embed_views: Dict[Tuple[int, int], View] = {}
        self._damaged_cells: Set[Tuple[int, int]] = set()
        self._dragging_col: Optional[int] = None
        self._bind_keys()
        self._build_menus()
        if dataobject is not None:
            self.set_dataobject(dataobject)

    @property
    def data(self) -> Optional[TableData]:
        return self.dataobject

    def on_data_changed(self, change) -> None:
        data = self.data
        if (
            change.what == "cell"
            and data is not None
            and not self._needs_layout
            and isinstance(change.where, tuple)
        ):
            row, col = change.where
            key = (row, col)
            if key in self._embed_views or data.cell(row, col).kind == "object":
                # An embedded component arrived or departed: row heights
                # move, so geometry must be rebuilt.
                self._needs_layout = True
                self.want_update()
                return
            if key in self._damaged_cells:
                return  # damage already posted, repaint still pending
            rect = self.cell_rect(row, col).intersection(self.local_bounds)
            if rect.is_empty():
                return  # scrolled off or clipped away: nothing to paint
            self._damaged_cells.add(key)
            self.want_update(rect)
            return
        self._needs_layout = True
        if data is not None:
            rows, cols = data.rows, data.cols
            self.selected = (
                min(self.selected[0], rows - 1),
                min(self.selected[1], cols - 1),
            )
        self.want_update()

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    def col_width(self, col: int) -> int:
        return self.col_widths.get(col, DEFAULT_COL_WIDTH)

    def set_col_width(self, col: int, width: int) -> None:
        self.col_widths[col] = max(3, width)
        self._needs_layout = True
        self.want_update()

    def _col_x(self, col: int) -> int:
        """X of the left edge of a column's cell area."""
        x = ROW_LABEL_WIDTH
        for c in range(col):
            x += self.col_width(c) + 1  # +1 for the separator bar
        return x

    def row_height(self, row: int) -> int:
        """Rows grow to fit their tallest embedded view."""
        if self.data is None:
            return 1
        height = 1
        # Before this view has been allocated space (height 0), size
        # rows purely by content so desired_size reports honest needs.
        cap = (
            self.height - HEADER_ROWS
            if self.height > HEADER_ROWS else 10 ** 6
        )
        for col in range(self.data.cols):
            cell = self.data.cell(row, col)
            if cell.kind == "object":
                view = self._view_for_cell(row, col, cell)
                _, h = view.desired_size(self.col_width(col),
                                         self.height or 24)
                height = max(height, max(1, min(h, cap)))
        return height

    def _row_y(self, row: int) -> int:
        """Y of a data row relative to the view (may be negative)."""
        y = HEADER_ROWS
        for r in range(self._top_row, row):
            y += self.row_height(r)
        return y

    def cell_rect(self, row: int, col: int) -> Rect:
        return Rect(
            self._col_x(col), self._row_y(row),
            self.col_width(col), self.row_height(row),
        )

    def cell_at(self, point: Point) -> Optional[Tuple[int, int]]:
        """Hit test a view-local point to a (row, col)."""
        if self.data is None or point.y < HEADER_ROWS:
            return None
        y = HEADER_ROWS
        for row in range(self._top_row, self.data.rows):
            height = self.row_height(row)
            if y <= point.y < y + height:
                for col in range(self.data.cols):
                    x = self._col_x(col)
                    if x <= point.x < x + self.col_width(col):
                        return (row, col)
                return None
            y += height
        return None

    # ------------------------------------------------------------------
    # Embedded-cell views
    # ------------------------------------------------------------------

    def _view_for_cell(self, row: int, col: int, cell: Cell) -> View:
        view = self._embed_views.get((row, col))
        if view is None or view.dataobject is not cell.content:
            if view is not None:
                self.remove_child(view)
            try:
                cls = load_class(cell.view_type or "label")
            except DynamicLoadError:
                from ..text.textview import _UnknownComponentView

                cls = _UnknownComponentView
            view = cls(cell.content)
            self._embed_views[(row, col)] = view
            self.add_child(view)
        return view

    def layout(self) -> None:
        if self.data is None:
            return
        live = set()
        for row in range(self.data.rows):
            for col in range(self.data.cols):
                cell = self.data.cell(row, col)
                if cell.kind != "object":
                    continue
                live.add((row, col))
                view = self._view_for_cell(row, col, cell)
                rect = self.cell_rect(row, col).intersection(self.local_bounds)
                view.set_bounds(rect)
        for key, view in list(self._embed_views.items()):
            if key not in live:
                self.remove_child(view)
                del self._embed_views[key]

    # ------------------------------------------------------------------
    # Scrollable (by rows)
    # ------------------------------------------------------------------

    def scroll_total(self) -> int:
        return self.data.rows if self.data is not None else 0

    def scroll_pos(self) -> int:
        return self._top_row

    def scroll_visible(self) -> int:
        visible = 0
        y = HEADER_ROWS
        if self.data is None:
            return 0
        for row in range(self._top_row, self.data.rows):
            y += self.row_height(row)
            if y > self.height:
                break
            visible += 1
        return max(1, visible)

    def apply_scroll_pos(self, pos: int) -> None:
        if self.data is None:
            return
        self._top_row = pos
        if self._embed_views:
            # Embedded cell views are children placed by layout(); a
            # viewport move really does change their bounds.
            self._needs_layout = True

    def scroll_blit_area(self) -> Rect:
        """Only the body scrolls; the column-letter header is fixed."""
        return Rect(0, HEADER_ROWS, self.width,
                    max(0, self.height - HEADER_ROWS))

    def scroll_blit_ok(self) -> bool:
        # Embedded views may be clipped at the bottom edge (they render
        # content the shift could not source); rows are 1 device row
        # only on a cell backend and only without embeds.
        return not self._embed_views and self._scroll_unit_is_device_row()

    # ------------------------------------------------------------------
    # Drawing
    # ------------------------------------------------------------------

    def draw(self, graphic: Graphic) -> None:
        if self.data is None:
            return
        data = self.data
        clip = graphic.bounds
        # Culling must account for ink extent, not just the grid pitch:
        # on raster backends glyphs are line_height device rows tall and
        # char_width columns wide, spilling past the 1-unit row/column
        # pitch.  Skipping a string whose anchor is outside the clip but
        # whose ink reaches into it would make a clipped repaint diverge
        # from the full render — the idempotence the damage system (and
        # the compositor's sub-rect store repair) relies on.
        ink_h = graphic.line_height()
        ink_w = graphic.string_width("0")
        # Column headers and the full-height separators.  Separators are
        # outside every cell rect, so cell-level damage never needs them;
        # the clip makes skipping them free when it excludes them.
        for col in range(data.cols):
            x = self._col_x(col)
            if x >= self.width or x - 1 >= clip.right:
                break
            if clip.top < ink_h:
                graphic.draw_string_centered(
                    Rect(x, 0, self.col_width(col), 1), col_name(col)
                )
            graphic.draw_vline(x - 1, 0, self.height - 1)
        if clip.top < HEADER_ROWS:
            graphic.draw_hline(0, self.width - 1, 1)
        # Rows: only the band the clip touches pays per-cell work, so a
        # single damaged cell redraws one string, not the whole grid.
        y = HEADER_ROWS
        for row in range(self._top_row, data.rows):
            if y >= self.height or y >= clip.bottom:
                break
            height = self.row_height(row)
            if y + max(height, ink_h) <= clip.top:
                y += height
                continue  # row (and its glyph ink) wholly above the band
            if clip.left < max(ROW_LABEL_WIDTH, 3 * ink_w):
                graphic.draw_string(0, y, f"{row + 1:>3}")
            for col in range(data.cols):
                x = self._col_x(col)
                if x >= self.width or x >= clip.right:
                    break
                width = self.col_width(col)
                if x + max(width, width * ink_w) <= clip.left:
                    continue  # column (and its ink) wholly left of the band
                if (row, col) == self.selected and self.editing is not None:
                    text = self.editing[-width:]
                else:
                    text = data.display_at(row, col)[:width]
                graphic.draw_string(x, y, text)
                if (row, col) == self.selected:
                    graphic.invert_rect(Rect(x, y, width, 1))
            y += height
        self._damaged_cells.clear()  # repainted everything we damaged

    # ------------------------------------------------------------------
    # Interaction
    # ------------------------------------------------------------------

    def separator_col_at(self, point: Point) -> Optional[int]:
        """Which column's right-edge separator a header click grabs.

        Grabbing in the header rows within one cell of the rule between
        columns starts a width drag — the same enlarged-grab-zone idea
        as the frame's divider (§3).
        """
        if self.data is None or point.y >= HEADER_ROWS:
            return None
        for col in range(self.data.cols):
            separator_x = self._col_x(col + 1) - 1
            if abs(point.x - separator_x) <= 1:
                return col
        return None

    def handle_mouse(self, event) -> bool:
        from ...wm.events import MouseAction

        if event.action == MouseAction.DOWN:
            grab = self.separator_col_at(event.point)
            if grab is not None:
                self._dragging_col = grab
                return True
            hit = self.cell_at(event.point)
            if hit is not None:
                self._commit_edit()
                old = self.selected
                self.selected = hit
                self._damage_cell(*old)
                self._damage_cell(*hit)
            self.want_input_focus()
            return True
        if event.action == MouseAction.DRAG and self._dragging_col is not None:
            new_width = event.point.x - self._col_x(self._dragging_col)
            self.set_col_width(self._dragging_col, new_width)
            return True
        if event.action == MouseAction.UP:
            self._dragging_col = None
            return True
        return event.action == MouseAction.DRAG

    def _damage_cell(self, row: int, col: int) -> None:
        """Post repaint damage for exactly one cell's rectangle."""
        rect = self.cell_rect(row, col).intersection(self.local_bounds)
        if not rect.is_empty():
            self.want_update(rect)

    def select(self, row: int, col: int) -> None:
        if self.data is None:
            return
        self._commit_edit()
        old = self.selected
        self.selected = (
            max(0, min(row, self.data.rows - 1)),
            max(0, min(col, self.data.cols - 1)),
        )
        scrolled = False
        if self.selected[0] < self._top_row:
            self._top_row = self.selected[0]
            scrolled = True
        while self.selected[0] >= self._top_row + self.scroll_visible():
            self._top_row += 1
            scrolled = True
        if scrolled:
            self._needs_layout = True
            self.want_update()
            return
        # The grid did not move: repaint exactly the two cells whose
        # highlight changed.
        self._damage_cell(*old)
        self._damage_cell(*self.selected)

    def _commit_edit(self) -> None:
        if self.editing is not None and self.data is not None:
            row, col = self.selected
            self.data.set_cell(row, col, self.editing)
            self.editing = None

    def _cancel_edit(self) -> None:
        self.editing = None
        self._damage_cell(*self.selected)

    # -- keymap commands ----------------------------------------------------

    def _cmd_type(self, view, key) -> None:
        self.editing = (self.editing or "") + key.char
        self._damage_cell(*self.selected)

    def _cmd_backspace(self, view, key) -> None:
        if self.editing:
            self.editing = self.editing[:-1]
        elif self.data is not None:
            self.data.clear_cell(*self.selected)
        self._damage_cell(*self.selected)

    def _cmd_commit(self, view, key) -> None:
        self._commit_edit()
        self.select(self.selected[0] + 1, self.selected[1])

    def _cmd_cancel(self, view, key) -> None:
        self._cancel_edit()

    def _move(self, dr: int, dc: int) -> None:
        self.select(self.selected[0] + dr, self.selected[1] + dc)

    def _bind_keys(self) -> None:
        keymap = self.keymap
        keymap.bind_printables(self._cmd_type)
        keymap.bind("Return", self._cmd_commit)
        keymap.bind("Backspace", self._cmd_backspace)
        keymap.bind("Escape", self._cmd_cancel)
        keymap.bind("Up", lambda v, k: self._move(-1, 0))
        keymap.bind("Down", lambda v, k: self._move(1, 0))
        keymap.bind("Left", lambda v, k: self._move(0, -1))
        keymap.bind("Right", lambda v, k: self._move(0, 1))
        keymap.bind("Tab", lambda v, k: self._move(0, 1))

    def _build_menus(self) -> None:
        card = self.menu_card("Table")
        card.add("Insert Row", lambda v, e: self._insert_row())
        card.add("Delete Row", lambda v, e: self._delete_row())
        card.add("Insert Column", lambda v, e: self._insert_col())
        card.add("Delete Column", lambda v, e: self._delete_col())

    def _insert_row(self) -> None:
        if self.data is not None:
            self.data.insert_row(self.selected[0])

    def _delete_row(self) -> None:
        if self.data is not None and self.data.rows > 1:
            self.data.delete_row(self.selected[0])

    def _insert_col(self) -> None:
        if self.data is not None:
            self.data.insert_col(self.selected[1])

    def _delete_col(self) -> None:
        if self.data is not None and self.data.cols > 1:
            self.data.delete_col(self.selected[1])

    # ------------------------------------------------------------------
    # Embedding
    # ------------------------------------------------------------------

    def desired_size(self, width: int, height: int) -> Tuple[int, int]:
        if self.data is None:
            return (width, 3)
        want_w = self._col_x(self.data.cols)
        want_h = HEADER_ROWS + sum(
            self.row_height(r) for r in range(self.data.rows)
        )
        return (min(width, want_w), min(height, want_h))


# The paper's §5 example places a view of type "spread" on a table.
register_alias("spread", TableView)
