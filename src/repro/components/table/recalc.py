"""The dependency-graph incremental recalculation engine (§2, §5).

The paper's spreadsheet promise — "live formula recalculation under the
delayed-update discipline" — only scales if an edit's cost is bounded
by what the edit *influences*, not by the sheet.  This module provides
the machinery :class:`~repro.components.table.tabledata.TableData`
uses to keep recalculation proportional to the dirty cone:

* :class:`DependencyGraph` — forward edges (``cell -> cells its formula
  reads``, built from :meth:`Formula.refs` at assignment time) and the
  reverse *dependents* index, so "who must recompute when this cell
  changes" is one BFS over reverse edges (:meth:`dirty_cone`);

* :meth:`DependencyGraph.scc_order` — an **iterative** Tarjan
  strongly-connected-components pass restricted to a cone, emitting
  components in dependency order (a component is emitted only after
  every component it reads from).  Components of more than one cell —
  or a single cell referencing itself — are reference cycles: the
  caller stamps exactly those members ``#CYCLE``.  This replaces the
  seed's in-progress-colour DFS whose error routing hinged on a
  ``CYCLE_ERROR in str(exc)`` substring test;

* :class:`CycleError` — the typed error raised when a formula *reads* a
  cell stamped ``#CYCLE``.  Only true cycle members display ``#CYCLE``;
  cells downstream of a cycle catch :class:`CycleError` (a
  :class:`FormulaError`) and display ``#VALUE`` like any other
  unevaluable reference;

* :meth:`DependencyGraph.rebuild` — from-scratch reconstruction after
  structural edits rebase every key (the rebase itself lives in
  ``TableData``: cells, cached values and formula sources all shift
  through one mapping).

Keys are ``(row, col)`` tuples throughout.  The graph stores only cells
that carry formulas (plus the reverse index for their referents), so a
100k-cell sheet of numbers with a few hundred formulas costs a few
hundred graph entries, not 100k.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from .formula import FormulaError

__all__ = ["CycleError", "DependencyGraph"]

Key = Tuple[int, int]


class CycleError(FormulaError):
    """A formula read a cell that is a member of a reference cycle.

    Typed so recalculation can distinguish "my input is circular" from
    any other evaluation fault without inspecting message strings.  It
    still *is* a :class:`FormulaError`: generic handlers keep working.
    """


class DependencyGraph:
    """Reference edges between cells, indexed in both directions.

    ``deps[key]`` is the frozen set of cells ``key``'s formula reads;
    ``dependents[key]`` is the live set of formula cells that read
    ``key``.  Non-formula cells never appear in ``deps`` and appear in
    ``dependents`` only while some formula references them.
    """

    __slots__ = ("deps", "dependents", "edge_count")

    def __init__(self) -> None:
        self.deps: Dict[Key, FrozenSet[Key]] = {}
        self.dependents: Dict[Key, Set[Key]] = {}
        self.edge_count = 0

    # ------------------------------------------------------------------
    # Edge maintenance (called from every cell assignment)
    # ------------------------------------------------------------------

    def set_refs(self, key: Key, refs: Iterable[Key]) -> None:
        """Declare the cells ``key``'s formula reads (empty to clear)."""
        new = frozenset(refs)
        old = self.deps.get(key, frozenset())
        if new == old:
            return
        for gone in old - new:
            holders = self.dependents.get(gone)
            if holders is not None:
                holders.discard(key)
                if not holders:
                    del self.dependents[gone]
        for added in new - old:
            self.dependents.setdefault(added, set()).add(key)
        self.edge_count += len(new) - len(old)
        if new:
            self.deps[key] = new
        else:
            self.deps.pop(key, None)

    def clear(self, key: Key) -> None:
        """Remove ``key``'s outgoing edges (its formula went away)."""
        self.set_refs(key, ())

    def rebuild(self, formulas: Dict[Key, Iterable[Key]]) -> None:
        """Reconstruct the whole graph (after a structural rebase)."""
        self.deps = {}
        self.dependents = {}
        self.edge_count = 0
        for key, refs in formulas.items():
            self.set_refs(key, refs)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def refs_of(self, key: Key) -> FrozenSet[Key]:
        return self.deps.get(key, frozenset())

    def dirty_cone(self, seeds: Iterable[Key]) -> Set[Key]:
        """Every cell whose value may change when ``seeds`` change.

        The seeds themselves plus the transitive closure over reverse
        edges.  Bounded by the influenced region — the whole point.
        """
        cone: Set[Key] = set(seeds)
        frontier: List[Key] = list(cone)
        while frontier:
            key = frontier.pop()
            for dependent in self.dependents.get(key, ()):
                if dependent not in cone:
                    cone.add(dependent)
                    frontier.append(dependent)
        return cone

    def scc_order(self, cone: Iterable[Key]) -> List[Tuple[Key, ...]]:
        """Strongly connected components of the cone, dependencies first.

        Iterative Tarjan over the subgraph induced by ``cone`` (edges
        leaving the cone are ignored — those cells' values are already
        valid).  Tarjan emits a component only after every component
        reachable from it, which for "reads" edges means *evaluation
        order*: recompute components as emitted and every reference a
        formula makes is either outside the cone (valid) or already
        recomputed.  Components with more than one member, or whose
        single member references itself, are reference cycles.

        Iterative on an explicit stack: a 100k-cell chain must not hit
        CPython's recursion limit.
        """
        members = set(cone)
        index: Dict[Key, int] = {}
        lowlink: Dict[Key, int] = {}
        on_stack: Set[Key] = set()
        stack: List[Key] = []
        components: List[Tuple[Key, ...]] = []
        counter = 0

        for root in members:
            if root in index:
                continue
            # Each frame is [key, iterator over its in-cone deps].
            work: List[List] = [[root, None]]
            while work:
                frame = work[-1]
                key = frame[0]
                if frame[1] is None:
                    index[key] = lowlink[key] = counter
                    counter += 1
                    stack.append(key)
                    on_stack.add(key)
                    frame[1] = iter(
                        dep for dep in self.deps.get(key, ())
                        if dep in members
                    )
                advanced = False
                for dep in frame[1]:
                    if dep not in index:
                        work.append([dep, None])
                        advanced = True
                        break
                    if dep in on_stack:
                        lowlink[key] = min(lowlink[key], index[dep])
                if advanced:
                    continue
                work.pop()
                if lowlink[key] == index[key]:
                    component: List[Key] = []
                    while True:
                        node = stack.pop()
                        on_stack.discard(node)
                        component.append(node)
                        if node == key:
                            break
                    components.append(tuple(component))
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[key])
        return components

    def is_cycle(self, component: Tuple[Key, ...]) -> bool:
        """Is this SCC a true reference cycle (incl. self-reference)?"""
        if len(component) > 1:
            return True
        key = component[0]
        return key in self.deps.get(key, frozenset())

    def __repr__(self) -> str:
        return (
            f"<DependencyGraph {len(self.deps)} formula cells, "
            f"{self.edge_count} edges>"
        )
