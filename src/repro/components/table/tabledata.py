r"""The table/spreadsheet data object (paper sections 1, 2, 5, Fig. 5).

A :class:`TableData` is a rows x cols grid whose cells hold text,
numbers, formulas, or **embedded data objects** — the table is a
multi-media component just like text: "The text and table components
are multi-media components, in that they allow the embedding [of] other
components within their description."

Formulas recalculate through a dependency graph with cycle detection
(cycles display as ``#CYCLE``); every mutation follows the
delayed-update discipline, announcing ``("cell", (row, col))`` changes
so any number of views — the table view, the pie chart's auxiliary data
object (§2's observer example) — repair themselves afterwards.

External representation body::

    @dims <rows> <cols>
    @cell <row> <col> n <number>
    @cell <row> <col> t <escaped text>
    @cell <row> <col> f <formula>
    @cell <row> <col> o
    \begindata{...}...\enddata{...}
    \view{<viewtype>, <id>}

Text cells escape backslash as ``\\`` and newline as ``\n``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple, Union

from ...core.dataobject import DataObject
from ...core.datastream import (
    BeginObject,
    BodyLine,
    DataStreamError,
    EndObject,
    ViewRef,
)
from .formula import Formula, FormulaError, ref_name

__all__ = ["TableData", "Cell", "CYCLE_ERROR", "VALUE_ERROR"]

CYCLE_ERROR = "#CYCLE"
VALUE_ERROR = "#VALUE"


class Cell:
    """One table cell.

    ``content`` is one of: ``None`` (empty), ``str`` (text), ``float``
    (number), :class:`Formula`, or a :class:`DataObject` with its view
    type in ``view_type``.
    """

    __slots__ = ("content", "view_type")

    def __init__(self, content=None, view_type: Optional[str] = None) -> None:
        self.content = content
        self.view_type = view_type

    @property
    def kind(self) -> str:
        if self.content is None:
            return "empty"
        if isinstance(self.content, Formula):
            return "formula"
        if isinstance(self.content, float):
            return "number"
        if isinstance(self.content, DataObject):
            return "object"
        return "text"

    def __repr__(self) -> str:
        return f"Cell({self.kind}: {self.content!r})"


class TableData(DataObject):
    """A grid of cells with spreadsheet recalculation."""

    atk_name = "table"

    def __init__(self, rows: int = 4, cols: int = 4) -> None:
        super().__init__()
        if rows < 1 or cols < 1:
            raise ValueError(f"table must be at least 1x1, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self._cells: Dict[Tuple[int, int], Cell] = {}
        self._values: Dict[Tuple[int, int], Union[float, str]] = {}
        self._values_valid = False
        self.recalc_count = 0  # full recalculations (benches read this)

    # ------------------------------------------------------------------
    # Cell access
    # ------------------------------------------------------------------

    def _check(self, row: int, col: int) -> None:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(
                f"cell ({row}, {col}) outside {self.rows}x{self.cols} table"
            )

    def cell(self, row: int, col: int) -> Cell:
        self._check(row, col)
        return self._cells.get((row, col), Cell())

    def set_cell(self, row: int, col: int, value) -> None:
        """Assign a cell from a Python value or user-typed string.

        Strings are interpreted the way the original spreadsheet did at
        entry time: ``=...`` parses as a formula, numeric literals
        become numbers, everything else is text.  Pass a
        :class:`DataObject` to embed a component (default view type
        ``<tag>view``).
        """
        self._check(row, col)
        cell = self._coerce(value)
        if cell.content is None:
            self._cells.pop((row, col), None)
        else:
            self._cells[(row, col)] = cell
        self._values_valid = False
        self.changed("cell", where=(row, col))

    @staticmethod
    def _coerce(value) -> Cell:
        if value is None or value == "":
            return Cell()
        if isinstance(value, Cell):
            return value
        if isinstance(value, Formula):
            return Cell(value)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return Cell(float(value))
        if isinstance(value, DataObject):
            return Cell(value, view_type=f"{value.type_tag}view")
        if isinstance(value, str):
            if value.startswith("="):
                try:
                    return Cell(Formula(value))
                except FormulaError:
                    return Cell(value)  # keep the bad formula as text
            try:
                return Cell(float(value))
            except ValueError:
                return Cell(value)
        raise TypeError(f"cannot store {value!r} in a table cell")

    def embed_object(self, row: int, col: int, data: DataObject,
                     view_type: Optional[str] = None) -> None:
        """Embed a component in a cell (the Fig. 5 pattern)."""
        self._check(row, col)
        cell = Cell(data, view_type or f"{data.type_tag}view")
        self._cells[(row, col)] = cell
        self._values_valid = False
        self.changed("cell", where=(row, col))

    def clear_cell(self, row: int, col: int) -> None:
        self.set_cell(row, col, None)

    def cells(self) -> Iterator[Tuple[int, int, Cell]]:
        """All non-empty cells, row-major."""
        for (row, col) in sorted(self._cells):
            yield (row, col, self._cells[(row, col)])

    def embedded_objects(self) -> List[DataObject]:
        return [
            cell.content
            for _, _, cell in self.cells()
            if isinstance(cell.content, DataObject)
        ]

    # ------------------------------------------------------------------
    # Recalculation
    # ------------------------------------------------------------------

    def value_at(self, row: int, col: int) -> Union[float, str]:
        """The computed value: numbers/formula results as float, text
        as str, errors as ``#CYCLE``/``#VALUE``, empty as 0.0 for
        formula reads but ``""`` here."""
        self._check(row, col)
        if not self._values_valid:
            self._recalculate()
        return self._values.get((row, col), "")

    def display_at(self, row: int, col: int) -> str:
        """The string a view shows for the cell."""
        value = self.value_at(row, col)
        if isinstance(value, float):
            return f"{value:g}"
        cell = self.cell(row, col)
        if cell.kind == "object":
            return ""  # the embedded view draws itself
        return str(value)

    def _recalculate(self) -> None:
        """Full-table recalc with cycle detection (DFS, three colors)."""
        self.recalc_count += 1
        self._values = {}
        states: Dict[Tuple[int, int], int] = {}  # 1=in progress, 2=done

        def resolve(row: int, col: int) -> float:
            if not (0 <= row < self.rows and 0 <= col < self.cols):
                raise FormulaError(f"reference {ref_name(row, col)} off table")
            value = compute(row, col)
            if isinstance(value, float):
                return value
            if value in (CYCLE_ERROR, VALUE_ERROR):
                raise FormulaError(value)
            return 0.0  # text/objects/empty read as 0 in formulas

        def compute(row: int, col: int) -> Union[float, str]:
            key = (row, col)
            if key in self._values:
                return self._values[key]
            cell = self._cells.get(key)
            if cell is None or cell.content is None:
                return ""
            if states.get(key) == 1:
                self._values[key] = CYCLE_ERROR
                return CYCLE_ERROR
            if isinstance(cell.content, float):
                self._values[key] = cell.content
                return cell.content
            if isinstance(cell.content, Formula):
                states[key] = 1
                try:
                    value: Union[float, str] = cell.content.evaluate(resolve)
                except FormulaError as exc:
                    value = (
                        CYCLE_ERROR if CYCLE_ERROR in str(exc) else VALUE_ERROR
                    )
                states[key] = 2
                # A cycle may have already stamped this cell; keep that.
                self._values.setdefault(key, value)
                return self._values[key]
            if isinstance(cell.content, str):
                self._values[key] = cell.content
                return cell.content
            self._values[key] = ""  # embedded object: no scalar value
            return ""

        for (row, col) in list(self._cells):
            compute(row, col)
        self._values_valid = True

    def column_values(self, col: int) -> List[float]:
        """The numeric values down a column (non-numbers skipped)."""
        out = []
        for row in range(self.rows):
            value = self.value_at(row, col)
            if isinstance(value, float):
                out.append(value)
        return out

    def row_values(self, row: int) -> List[float]:
        out = []
        for col in range(self.cols):
            value = self.value_at(row, col)
            if isinstance(value, float):
                out.append(value)
        return out

    # ------------------------------------------------------------------
    # Structure edits
    # ------------------------------------------------------------------

    def insert_row(self, at: int) -> None:
        """Insert an empty row before ``at`` (0..rows)."""
        if not 0 <= at <= self.rows:
            raise IndexError(f"row {at} outside 0..{self.rows}")
        moved = {}
        for (row, col), cell in self._cells.items():
            moved[(row + 1 if row >= at else row, col)] = cell
        self._cells = moved
        self.rows += 1
        self._values_valid = False
        self.changed("shape", where=("row", at), extent=1)

    def delete_row(self, at: int) -> None:
        if not 0 <= at < self.rows:
            raise IndexError(f"row {at} outside 0..{self.rows - 1}")
        if self.rows == 1:
            raise ValueError("cannot delete the last row")
        moved = {}
        for (row, col), cell in self._cells.items():
            if row == at:
                continue
            moved[(row - 1 if row > at else row, col)] = cell
        self._cells = moved
        self.rows -= 1
        self._values_valid = False
        self.changed("shape", where=("row", at), extent=-1)

    def insert_col(self, at: int) -> None:
        if not 0 <= at <= self.cols:
            raise IndexError(f"column {at} outside 0..{self.cols}")
        moved = {}
        for (row, col), cell in self._cells.items():
            moved[(row, col + 1 if col >= at else col)] = cell
        self._cells = moved
        self.cols += 1
        self._values_valid = False
        self.changed("shape", where=("col", at), extent=1)

    def delete_col(self, at: int) -> None:
        if not 0 <= at < self.cols:
            raise IndexError(f"column {at} outside 0..{self.cols - 1}")
        if self.cols == 1:
            raise ValueError("cannot delete the last column")
        moved = {}
        for (row, col), cell in self._cells.items():
            if col == at:
                continue
            moved[(row, col - 1 if col > at else col)] = cell
        self._cells = moved
        self.cols -= 1
        self._values_valid = False
        self.changed("shape", where=("col", at), extent=-1)

    # ------------------------------------------------------------------
    # External representation
    # ------------------------------------------------------------------

    @staticmethod
    def _escape(text: str) -> str:
        return text.replace("\\", "\\\\").replace("\n", "\\n")

    @staticmethod
    def _unescape(text: str) -> str:
        out: List[str] = []
        i = 0
        while i < len(text):
            if text[i] == "\\" and i + 1 < len(text):
                nxt = text[i + 1]
                out.append("\n" if nxt == "n" else nxt)
                i += 2
            else:
                out.append(text[i])
                i += 1
        return "".join(out)

    def write_body(self, writer) -> None:
        writer.write_body_line(f"@dims {self.rows} {self.cols}")
        for row, col, cell in self.cells():
            prefix = f"@cell {row} {col}"
            if cell.kind == "number":
                writer.write_body_line(f"{prefix} n {cell.content:g}")
            elif cell.kind == "formula":
                writer.write_body_line(f"{prefix} f {cell.content.source}")
            elif cell.kind == "text":
                encoded = self._escape(cell.content)
                # Long text cells wrap as repeated '+'-continuation lines;
                # never split in the middle of an escape pair.
                first = True
                while True:
                    room = 74 - len(prefix)
                    chunk = encoded[:room]
                    trailing = len(chunk) - len(chunk.rstrip("\\"))
                    if trailing % 2 == 1 and len(chunk) < len(encoded):
                        chunk = chunk[:-1]
                    encoded = encoded[len(chunk):]
                    marker = "t" if first else "+"
                    writer.write_body_line(f"{prefix} {marker} {chunk}")
                    first = False
                    if not encoded:
                        break
            elif cell.kind == "object":
                writer.write_body_line(f"{prefix} o")
                object_id = writer.write_object(cell.content)
                writer.write_view_ref(cell.view_type or "unknown", object_id)

    def read_body(self, reader) -> None:
        self._cells = {}
        self._values_valid = False
        pending_object_cell: Optional[Tuple[int, int]] = None
        last_text_cell: Optional[Tuple[int, int]] = None
        for event in reader.body_events():
            if isinstance(event, BodyLine):
                pending_object_cell, last_text_cell = self._read_line(
                    event, pending_object_cell, last_text_cell
                )
            elif isinstance(event, BeginObject):
                reader.read_object(event)
            elif isinstance(event, ViewRef):
                if pending_object_cell is None:
                    raise DataStreamError(
                        "\\view in table body without an 'o' cell",
                        event.line,
                    )
                data = reader.objects_by_id.get(event.object_id)
                if data is None:
                    raise DataStreamError(
                        f"unknown object id {event.object_id}", event.line
                    )
                self._cells[pending_object_cell] = Cell(
                    data, view_type=event.view_type
                )
                pending_object_cell = None
            elif isinstance(event, EndObject):
                break
        self.changed("shape", where=("all", 0))

    def _read_line(self, event: BodyLine, pending, last_text):
        parts = event.text.split(" ", 4)
        if not parts or not parts[0]:
            return pending, last_text
        if parts[0] == "@dims":
            self.rows, self.cols = int(parts[1]), int(parts[2])
            return pending, last_text
        if parts[0] != "@cell":
            raise DataStreamError(
                f"unknown table directive {event.text!r}", event.line
            )
        if len(parts) < 4:
            raise DataStreamError(f"malformed cell {event.text!r}", event.line)
        row, col, kind = int(parts[1]), int(parts[2]), parts[3]
        payload = parts[4] if len(parts) > 4 else ""
        key = (row, col)
        if kind == "n":
            self._cells[key] = Cell(float(payload))
        elif kind == "f":
            try:
                self._cells[key] = Cell(Formula(payload))
            except FormulaError:
                self._cells[key] = Cell(payload)
        elif kind == "t":
            self._cells[key] = Cell(self._unescape(payload))
            return pending, key
        elif kind == "+":
            if last_text != key or key not in self._cells:
                raise DataStreamError(
                    f"continuation for non-open text cell {event.text!r}",
                    event.line,
                )
            cell = self._cells[key]
            self._cells[key] = Cell(cell.content + self._unescape(payload))
            return pending, key
        elif kind == "o":
            return key, None
        else:
            raise DataStreamError(
                f"unknown cell kind {kind!r} in {event.text!r}", event.line
            )
        return pending, None

    def __repr__(self) -> str:
        return f"<table {self.rows}x{self.cols}, {len(self._cells)} cells>"
