r"""The table/spreadsheet data object (paper sections 1, 2, 5, Fig. 5).

A :class:`TableData` is a rows x cols grid whose cells hold text,
numbers, formulas, or **embedded data objects** — the table is a
multi-media component just like text: "The text and table components
are multi-media components, in that they allow the embedding [of] other
components within their description."

Formulas recalculate **incrementally** through a dependency graph
(:mod:`.recalc`): every cell assignment updates the graph's edges from
:meth:`Formula.refs`, and once values have been materialised an edit
recomputes only the edited cell's *dirty cone* — the transitive
dependents, in topological order, with iterative-Tarjan cycle
detection stamping exactly the members of a reference cycle
``#CYCLE``.  Cells that merely *read* a cyclic cell display ``#VALUE``
(the read raises the typed :class:`~.recalc.CycleError`).  Structural
edits (``insert_row`` .. ``delete_col``) rebase cells, cached values,
formula references and the graph through one coordinate mapping;
references into a deleted row/column become ``#REF`` and evaluate to
``#VALUE``.

Every mutation follows the delayed-update discipline, announcing
``("cell", (row, col))`` for the edited cell and one further
``("cell", (row, col), detail="recalc")`` record **per downstream cell
whose value actually changed**, so any number of views — the table
view, the pie chart's auxiliary data object (§2's observer example) —
can repair exactly the damaged cells afterwards.

Telemetry (``ANDREW_METRICS=1``): ``table.recalc_full`` /
``table.recalc_incremental`` count the two recalc kinds,
``table.cells_recomputed`` counts every cell evaluation either way,
and the ``table.deps_edges`` gauge tracks the live graph size.

External representation body::

    @dims <rows> <cols>
    @cell <row> <col> n <number>
    @cell <row> <col> t <escaped text>
    @cell <row> <col> f <formula>
    @cell <row> <col> o
    \begindata{...}...\enddata{...}
    \view{<viewtype>, <id>}

Text cells escape backslash as ``\\`` and newline as ``\n``.
"""

from __future__ import annotations

import math
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from ... import obs
from ...core.dataobject import DataObject
from ...core.datastream import (
    BeginObject,
    BodyLine,
    DataStreamError,
    EndObject,
    ViewRef,
)
from .formula import CellRef, Formula, FormulaError, ref_name
from .recalc import CycleError, DependencyGraph

__all__ = ["TableData", "Cell", "CYCLE_ERROR", "VALUE_ERROR"]

CYCLE_ERROR = "#CYCLE"
VALUE_ERROR = "#VALUE"


class _ErrorValue(str):
    """A computed error value (``#CYCLE``/``#VALUE``).

    A distinct type so recalculation can tell an error *result* from a
    text cell that happens to spell the same string — equality and
    display still behave like the plain string.
    """

    __slots__ = ()


_CYCLE = _ErrorValue(CYCLE_ERROR)
_VALUE = _ErrorValue(VALUE_ERROR)

#: Distinguishes "no cached value" from every real value in
#: change-detection comparisons (``None`` is not used: an empty cell's
#: computed value is represented by *absence* from the cache).
_ABSENT = object()


class Cell:
    """One table cell.

    ``content`` is one of: ``None`` (empty), ``str`` (text), ``float``
    (number), :class:`Formula`, or a :class:`DataObject` with its view
    type in ``view_type``.
    """

    __slots__ = ("content", "view_type")

    def __init__(self, content=None, view_type: Optional[str] = None) -> None:
        self.content = content
        self.view_type = view_type

    @property
    def kind(self) -> str:
        if self.content is None:
            return "empty"
        if isinstance(self.content, Formula):
            return "formula"
        if isinstance(self.content, float):
            return "number"
        if isinstance(self.content, DataObject):
            return "object"
        return "text"

    def __repr__(self) -> str:
        return f"Cell({self.kind}: {self.content!r})"


class TableData(DataObject):
    """A grid of cells with spreadsheet recalculation."""

    atk_name = "table"

    #: Class-level switch: instances (the equivalence fuzzer's control
    #: arm, A/B benches) may set ``incremental_enabled = False`` to get
    #: the seed behaviour — every edit invalidates, every read recalcs
    #: the whole sheet.
    incremental_enabled = True

    def __init__(self, rows: int = 4, cols: int = 4) -> None:
        super().__init__()
        if rows < 1 or cols < 1:
            raise ValueError(f"table must be at least 1x1, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self._cells: Dict[Tuple[int, int], Cell] = {}
        self._values: Dict[Tuple[int, int], Union[float, str]] = {}
        self._values_valid = False
        self._graph = DependencyGraph()
        self.recalc_count = 0  # full recalculations (benches read this)
        self.incremental_count = 0  # cone recalculations

    # ------------------------------------------------------------------
    # Cell access
    # ------------------------------------------------------------------

    def _check(self, row: int, col: int) -> None:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(
                f"cell ({row}, {col}) outside {self.rows}x{self.cols} table"
            )

    def cell(self, row: int, col: int) -> Cell:
        self._check(row, col)
        return self._cells.get((row, col), Cell())

    def set_cell(self, row: int, col: int, value) -> None:
        """Assign a cell from a Python value or user-typed string.

        Strings are interpreted the way the original spreadsheet did at
        entry time: ``=...`` parses as a formula, numeric literals
        become numbers, everything else is text.  Pass a
        :class:`DataObject` to embed a component (default view type
        ``<tag>view``).

        Once values have been materialised (any :meth:`value_at` read),
        the edit recomputes only its dependency cone and announces one
        ``("cell", ...)`` change per cell whose value actually changed
        — the edited cell's record always comes first.
        """
        self._check(row, col)
        key = (row, col)
        cell = self._coerce(value)
        if cell.content is None:
            self._cells.pop(key, None)
        else:
            self._cells[key] = cell
        self._after_assign(key, cell)

    def _after_assign(self, key: Tuple[int, int], cell: Cell) -> None:
        """Re-index the graph for ``key`` and repair/announce values."""
        if isinstance(cell.content, Formula):
            self._graph.set_refs(
                key, ((ref.row, ref.col) for ref in cell.content.refs())
            )
        else:
            self._graph.clear(key)
        if obs.metrics_on:
            obs.registry.gauge("table.deps_edges", self._graph.edge_count)
        if not (self.incremental_enabled and self._values_valid):
            # Values were never materialised (sheet still being built,
            # or incremental repair disabled): stay lazy, one record.
            self._values_valid = False
            self.changed("cell", where=key)
            return
        self.incremental_count += 1
        if obs.metrics_on:
            obs.registry.inc("table.recalc_incremental")
        cone = self._graph.dirty_cone((key,))
        changed_keys = self._recompute(cone, seeds=(key,))
        self.changed("cell", where=key)
        for other in changed_keys:
            if other != key:
                self.changed("cell", where=other, detail="recalc")

    @staticmethod
    def _coerce(value) -> Cell:
        if value is None or value == "":
            return Cell()
        if isinstance(value, Cell):
            return value
        if isinstance(value, Formula):
            return Cell(value)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return Cell(float(value))
        if isinstance(value, DataObject):
            return Cell(value, view_type=f"{value.type_tag}view")
        if isinstance(value, str):
            if value.startswith("="):
                try:
                    return Cell(Formula(value))
                except FormulaError:
                    return Cell(value)  # keep the bad formula as text
            try:
                number = float(value)
            except ValueError:
                return Cell(value)
            if not math.isfinite(number):
                # float() accepts "nan"/"inf"/"infinity" (any case/sign)
                # but a spreadsheet user typing those means text.
                return Cell(value)
            return Cell(number)
        raise TypeError(f"cannot store {value!r} in a table cell")

    def embed_object(self, row: int, col: int, data: DataObject,
                     view_type: Optional[str] = None) -> None:
        """Embed a component in a cell (the Fig. 5 pattern)."""
        self._check(row, col)
        cell = Cell(data, view_type or f"{data.type_tag}view")
        self._cells[(row, col)] = cell
        self._after_assign((row, col), cell)

    def clear_cell(self, row: int, col: int) -> None:
        self.set_cell(row, col, None)

    def cells(self) -> Iterator[Tuple[int, int, Cell]]:
        """All non-empty cells, row-major."""
        for (row, col) in sorted(self._cells):
            yield (row, col, self._cells[(row, col)])

    def embedded_objects(self) -> List[DataObject]:
        return [
            cell.content
            for _, _, cell in self.cells()
            if isinstance(cell.content, DataObject)
        ]

    # ------------------------------------------------------------------
    # Recalculation
    # ------------------------------------------------------------------

    def value_at(self, row: int, col: int) -> Union[float, str]:
        """The computed value: numbers/formula results as float, text
        as str, errors as ``#CYCLE``/``#VALUE``, empty as 0.0 for
        formula reads but ``""`` here."""
        self._check(row, col)
        if not self._values_valid:
            self._recalculate()
        return self._values.get((row, col), "")

    def display_at(self, row: int, col: int) -> str:
        """The string a view shows for the cell."""
        value = self.value_at(row, col)
        if isinstance(value, float):
            return f"{value:g}"
        cell = self.cell(row, col)
        if cell.kind == "object":
            return ""  # the embedded view draws itself
        return str(value)

    def _recalculate(self) -> None:
        """Full-sheet recalc: the cone is "every non-empty cell"."""
        self.recalc_count += 1
        if obs.metrics_on:
            obs.registry.inc("table.recalc_full")
        self._values = {}
        everything = set(self._cells)
        self._recompute(everything, seeds=everything)
        self._values_valid = True

    def _resolve(self, row: int, col: int) -> float:
        """Read a referenced cell's cached value for formula evaluation.

        Text, objects and empty cells read as 0; reading a cycle member
        raises the typed :class:`CycleError`; any other error value (or
        an off-table reference) raises :class:`FormulaError`, so the
        reading formula displays ``#VALUE``.
        """
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise FormulaError(f"reference {ref_name(row, col)} off table")
        value = self._values.get((row, col), "")
        if isinstance(value, float):
            return value
        if isinstance(value, _ErrorValue):
            if value == CYCLE_ERROR:
                raise CycleError(
                    f"{ref_name(row, col)} is in a reference cycle"
                )
            raise FormulaError(f"{ref_name(row, col)} has no value")
        return 0.0  # text/objects/empty read as 0 in formulas

    def _compute_one(self, key: Tuple[int, int]):
        """One cell's value from its content; ``None`` means empty."""
        cell = self._cells.get(key)
        if cell is None or cell.content is None:
            return None
        content = cell.content
        if isinstance(content, float):
            return content
        if isinstance(content, Formula):
            try:
                value = content.evaluate(self._resolve)
            except (ValueError, ArithmeticError):
                # FormulaError (a ValueError), math domain errors, and
                # overflow/zero-division all surface as #VALUE.
                return _VALUE
            if not math.isfinite(value):
                return _VALUE  # non-finite results are errors, not data
            return value
        if isinstance(content, str):
            return content
        return ""  # embedded object: no scalar value

    def _recompute(
        self,
        cone: Set[Tuple[int, int]],
        seeds: Iterable[Tuple[int, int]],
    ) -> List[Tuple[int, int]]:
        """Re-evaluate ``cone`` in dependency order; return changed keys.

        Propagation is change-driven: a strongly connected component is
        re-evaluated only if it contains a seed, reads a cell that
        changed earlier in the pass, or carries a ``#CYCLE`` stamp that
        no longer matches its cycle-ness (an edit elsewhere can dissolve
        a cycle without changing any input *value* of the remnant
        cells).  So an edit whose value lands equal to the old one stops
        dead instead of recomputing its whole cone.  Components that are
        true cycles are stamped ``#CYCLE`` member-by-member, never
        evaluated.
        """
        graph = self._graph
        seed_set = set(seeds)
        changed: List[Tuple[int, int]] = []
        changed_set: Set[Tuple[int, int]] = set()
        recomputed = 0
        values = self._values
        for component in graph.scc_order(cone):
            is_cycle = graph.is_cycle(component)
            if not (
                seed_set.intersection(component)
                or any(
                    (values.get(key, _ABSENT) is _CYCLE) != is_cycle
                    for key in component
                )
                or any(
                    dep in changed_set
                    for key in component
                    for dep in graph.refs_of(key)
                )
            ):
                continue  # no input changed: the cached value stands
            for key in component:
                recomputed += 1
                new = _CYCLE if is_cycle else self._compute_one(key)
                old = values.get(key, _ABSENT)
                if new is None:
                    if old is not _ABSENT:
                        del values[key]
                        changed.append(key)
                        changed_set.add(key)
                    continue
                if old is _ABSENT or old != new or type(old) is not type(new):
                    values[key] = new
                    changed.append(key)
                    changed_set.add(key)
        if obs.metrics_on:
            obs.registry.inc("table.cells_recomputed", recomputed)
        return changed

    def column_values(self, col: int) -> List[float]:
        """The numeric values down a column (non-numbers skipped)."""
        out = []
        for row in range(self.rows):
            value = self.value_at(row, col)
            if isinstance(value, float):
                out.append(value)
        return out

    def row_values(self, row: int) -> List[float]:
        out = []
        for col in range(self.cols):
            value = self.value_at(row, col)
            if isinstance(value, float):
                out.append(value)
        return out

    # ------------------------------------------------------------------
    # Structure edits
    # ------------------------------------------------------------------

    def _structural_edit(
        self,
        row_map: Callable[[int], Optional[int]],
        col_map: Callable[[int], Optional[int]],
    ) -> List[Tuple[int, int]]:
        """Rebase cells, cached values, formulas and the graph.

        ``row_map``/``col_map`` send an old index to its new index, or
        to ``None`` if the structural edit deleted it.  One mapping
        drives everything: cell keys shift, cached values shift with
        them, and every formula is rewritten through
        :meth:`Formula.rebase` — a reference into a deleted row/column
        (or a destroyed range endpoint) becomes ``#REF``, which
        evaluates to ``#VALUE``.

        Returns the keys of *retouched* formulas (those whose source
        actually changed) after recomputing their dirty cones, as the
        list of value-changed keys — empty when values are still lazy.
        The caller must have updated ``self.rows``/``self.cols`` first
        (bounds checks during recompute use the new shape).
        """

        def map_ref(ref: CellRef) -> Optional[CellRef]:
            row, col = row_map(ref.row), col_map(ref.col)
            if row is None or col is None:
                return None
            return ref if (row, col) == (ref.row, ref.col) else CellRef(row, col)

        moved_cells: Dict[Tuple[int, int], Cell] = {}
        retouched: List[Tuple[int, int]] = []
        for (row, col), cell in self._cells.items():
            new_row, new_col = row_map(row), col_map(col)
            if new_row is None or new_col is None:
                continue  # the cell itself was deleted
            key = (new_row, new_col)
            content = cell.content
            if isinstance(content, Formula):
                rebased = content.rebase(map_ref)
                if rebased is not content:
                    cell = Cell(rebased, cell.view_type)
                    retouched.append(key)
            moved_cells[key] = cell
        self._cells = moved_cells

        moved_values: Dict[Tuple[int, int], Union[float, str]] = {}
        for (row, col), value in self._values.items():
            new_row, new_col = row_map(row), col_map(col)
            if new_row is not None and new_col is not None:
                moved_values[(new_row, new_col)] = value
        self._values = moved_values

        self._graph.rebuild({
            key: tuple((ref.row, ref.col) for ref in cell.content.refs())
            for key, cell in self._cells.items()
            if isinstance(cell.content, Formula)
        })
        if obs.metrics_on:
            obs.registry.gauge("table.deps_edges", self._graph.edge_count)
        if not (self.incremental_enabled and self._values_valid):
            self._values_valid = False
            return []
        if not retouched:
            return []
        self.incremental_count += 1
        if obs.metrics_on:
            obs.registry.inc("table.recalc_incremental")
        cone = self._graph.dirty_cone(retouched)
        return self._recompute(cone, seeds=retouched)

    def _announce_structure(self, kind: str, at: int, extent: int,
                            changed_keys: List[Tuple[int, int]]) -> None:
        self.changed("shape", where=(kind, at), extent=extent)
        for key in changed_keys:
            self.changed("cell", where=key, detail="recalc")

    def insert_row(self, at: int) -> None:
        """Insert an empty row before ``at`` (0..rows)."""
        if not 0 <= at <= self.rows:
            raise IndexError(f"row {at} outside 0..{self.rows}")
        self.rows += 1
        changed = self._structural_edit(
            lambda row: row + 1 if row >= at else row, lambda col: col
        )
        self._announce_structure("row", at, 1, changed)

    def delete_row(self, at: int) -> None:
        if not 0 <= at < self.rows:
            raise IndexError(f"row {at} outside 0..{self.rows - 1}")
        if self.rows == 1:
            raise ValueError("cannot delete the last row")
        self.rows -= 1
        changed = self._structural_edit(
            lambda row: None if row == at else (row - 1 if row > at else row),
            lambda col: col,
        )
        self._announce_structure("row", at, -1, changed)

    def insert_col(self, at: int) -> None:
        if not 0 <= at <= self.cols:
            raise IndexError(f"column {at} outside 0..{self.cols}")
        self.cols += 1
        changed = self._structural_edit(
            lambda row: row, lambda col: col + 1 if col >= at else col
        )
        self._announce_structure("col", at, 1, changed)

    def delete_col(self, at: int) -> None:
        if not 0 <= at < self.cols:
            raise IndexError(f"column {at} outside 0..{self.cols - 1}")
        if self.cols == 1:
            raise ValueError("cannot delete the last column")
        self.cols -= 1
        changed = self._structural_edit(
            lambda row: row,
            lambda col: None if col == at else (col - 1 if col > at else col),
        )
        self._announce_structure("col", at, -1, changed)

    # ------------------------------------------------------------------
    # External representation
    # ------------------------------------------------------------------

    @staticmethod
    def _escape(text: str) -> str:
        return text.replace("\\", "\\\\").replace("\n", "\\n")

    @staticmethod
    def _unescape(text: str) -> str:
        out: List[str] = []
        i = 0
        while i < len(text):
            if text[i] == "\\" and i + 1 < len(text):
                nxt = text[i + 1]
                out.append("\n" if nxt == "n" else nxt)
                i += 2
            else:
                out.append(text[i])
                i += 1
        return "".join(out)

    def write_body(self, writer) -> None:
        writer.write_body_line(f"@dims {self.rows} {self.cols}")
        for row, col, cell in self.cells():
            prefix = f"@cell {row} {col}"
            if cell.kind == "number":
                writer.write_body_line(f"{prefix} n {cell.content:g}")
            elif cell.kind == "formula":
                writer.write_body_line(f"{prefix} f {cell.content.source}")
            elif cell.kind == "text":
                encoded = self._escape(cell.content)
                # Long text cells wrap as repeated '+'-continuation lines;
                # never split in the middle of an escape pair.
                first = True
                while True:
                    room = 74 - len(prefix)
                    chunk = encoded[:room]
                    trailing = len(chunk) - len(chunk.rstrip("\\"))
                    if trailing % 2 == 1 and len(chunk) < len(encoded):
                        chunk = chunk[:-1]
                    encoded = encoded[len(chunk):]
                    marker = "t" if first else "+"
                    writer.write_body_line(f"{prefix} {marker} {chunk}")
                    first = False
                    if not encoded:
                        break
            elif cell.kind == "object":
                writer.write_body_line(f"{prefix} o")
                object_id = writer.write_object(cell.content)
                writer.write_view_ref(cell.view_type or "unknown", object_id)

    def read_body(self, reader) -> None:
        self._cells = {}
        self._values = {}
        self._values_valid = False
        self._graph = DependencyGraph()
        pending_object_cell: Optional[Tuple[int, int]] = None
        last_text_cell: Optional[Tuple[int, int]] = None
        for event in reader.body_events():
            if isinstance(event, BodyLine):
                pending_object_cell, last_text_cell = self._read_line(
                    event, pending_object_cell, last_text_cell
                )
            elif isinstance(event, BeginObject):
                reader.read_object(event)
            elif isinstance(event, ViewRef):
                if pending_object_cell is None:
                    raise DataStreamError(
                        "\\view in table body without an 'o' cell",
                        event.line,
                    )
                data = reader.objects_by_id.get(event.object_id)
                if data is None:
                    raise DataStreamError(
                        f"unknown object id {event.object_id}", event.line
                    )
                self._cells[pending_object_cell] = Cell(
                    data, view_type=event.view_type
                )
                pending_object_cell = None
            elif isinstance(event, EndObject):
                break
        self._graph.rebuild({
            key: tuple((ref.row, ref.col) for ref in cell.content.refs())
            for key, cell in self._cells.items()
            if isinstance(cell.content, Formula)
        })
        self.changed("shape", where=("all", 0))

    def _read_line(self, event: BodyLine, pending, last_text):
        parts = event.text.split(" ", 4)
        if not parts or not parts[0]:
            return pending, last_text
        if parts[0] == "@dims":
            self.rows, self.cols = int(parts[1]), int(parts[2])
            return pending, last_text
        if parts[0] != "@cell":
            raise DataStreamError(
                f"unknown table directive {event.text!r}", event.line
            )
        if len(parts) < 4:
            raise DataStreamError(f"malformed cell {event.text!r}", event.line)
        row, col, kind = int(parts[1]), int(parts[2]), parts[3]
        payload = parts[4] if len(parts) > 4 else ""
        key = (row, col)
        if kind == "n":
            self._cells[key] = Cell(float(payload))
        elif kind == "f":
            try:
                self._cells[key] = Cell(Formula(payload))
            except FormulaError:
                self._cells[key] = Cell(payload)
        elif kind == "t":
            self._cells[key] = Cell(self._unescape(payload))
            return pending, key
        elif kind == "+":
            if last_text != key or key not in self._cells:
                raise DataStreamError(
                    f"continuation for non-open text cell {event.text!r}",
                    event.line,
                )
            cell = self._cells[key]
            self._cells[key] = Cell(cell.content + self._unescape(payload))
            return pending, key
        elif kind == "o":
            return key, None
        else:
            raise DataStreamError(
                f"unknown cell kind {kind!r} in {event.text!r}", event.line
            )
        return pending, None

    def __repr__(self) -> str:
        return f"<table {self.rows}x{self.cols}, {len(self._cells)} cells>"
