"""Charts on table data: the paper's observer example (section 2).

"In the chart example, the underlying data object is a table of values
... the chart view would be viewing not a table data object but an
auxiliary chart data object.  The chart data object would retain
information such as axes labelling.  In addition, the chart data object
would be an observer of the table data object.  As information in the
table changed, the chart data object would be notified and it, in turn,
would notify the chart view."

:class:`ChartData` is that auxiliary data object.  It persists the
view-adjacent state a chart needs (title, labels, which column is the
series) — state that belongs in *no* view because views are transient —
and observes a :class:`TableData`, recomputing its series and notifying
its own observers when the table changes.  :class:`PieChartView` and
:class:`BarChartView` are two view types on the chart data, giving the
paper's "table of numbers and a pie chart representing the table" in
one window.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from ...class_system.observable import ChangeRecord, Observer
from ...core.dataobject import DataObject
from ...core.datastream import BodyLine, EndObject
from ...core.view import View
from ...graphics.geometry import Rect
from ...graphics.graphic import Graphic
from .tabledata import TableData

__all__ = ["ChartData", "PieChartView", "BarChartView"]


class ChartData(DataObject, Observer):
    """Auxiliary data object: chart configuration + derived series.

    Persistable state: ``title``, ``series_axis`` (``"col"``/``"row"``),
    ``series_index``, ``labels``.  The observed table itself is *not*
    written to the chart's body — in a document, chart and table are
    siblings and the embedding component re-links them (the table is the
    authority on the numbers; the chart only caches them).
    """

    atk_name = "chart"

    def __init__(self, table: Optional[TableData] = None,
                 series_axis: str = "col", series_index: int = 0,
                 title: str = "") -> None:
        super().__init__()
        if series_axis not in ("col", "row"):
            raise ValueError(f"series_axis must be 'col' or 'row', not {series_axis!r}")
        self.title = title
        self.series_axis = series_axis
        self.series_index = series_index
        self.labels: List[str] = []
        self._table: Optional[TableData] = None
        self._series: List[float] = []
        self.recompute_count = 0
        if table is not None:
            self.attach_table(table)

    # -- table observation ------------------------------------------------

    def attach_table(self, table: Optional[TableData]) -> None:
        """Observe ``table``; detaches from any previous one."""
        if self._table is not None:
            self._table.remove_observer(self)
        self._table = table
        if table is not None:
            table.add_observer(self)
        self._recompute()

    @property
    def table(self) -> Optional[TableData]:
        return self._table

    def observed_changed(self, change: ChangeRecord) -> None:
        """The table changed: refresh the series, then tell *our*
        observers (the chart views) — the paper's two-hop update.

        Cell-level records carry the edited coordinate, so edits in
        rows/columns outside the charted series are ignored entirely —
        the table's incremental recalc announces one record per changed
        value, and only the ones crossing our series cost a recompute.
        """
        if change.what == "cell" and isinstance(change.where, tuple):
            row, col = change.where
            in_series = (
                col == self.series_index
                if self.series_axis == "col"
                else row == self.series_index
            )
            if not in_series:
                return
        self._recompute()

    def observed_destroyed(self, source) -> None:
        if source is self._table:
            self._table = None
            self._recompute()

    def _recompute(self) -> None:
        self.recompute_count += 1
        if self._table is None:
            self._series = []
        elif self.series_axis == "col":
            self._series = self._table.column_values(self.series_index)
        else:
            self._series = self._table.row_values(self.series_index)
        self.changed("series", extent=len(self._series))

    # -- configuration (persisted; the stable state of §2) -------------------

    def series(self) -> List[float]:
        return list(self._series)

    def set_title(self, title: str) -> None:
        self.title = title
        self.changed("config")

    def set_series(self, axis: str, index: int) -> None:
        if axis not in ("col", "row"):
            raise ValueError(f"axis must be 'col' or 'row', not {axis!r}")
        self.series_axis = axis
        self.series_index = index
        self._recompute()

    def set_labels(self, labels: List[str]) -> None:
        self.labels = list(labels)
        self.changed("config")

    # -- external representation ----------------------------------------------

    def write_body(self, writer) -> None:
        writer.write_body_line(f"@title {self.title}")
        writer.write_body_line(
            f"@series {self.series_axis} {self.series_index}"
        )
        for label in self.labels:
            writer.write_body_line(f"@label {label}")

    def read_body(self, reader) -> None:
        self.labels = []
        for event in reader.body_events():
            if isinstance(event, BodyLine):
                text = event.text
                if text.startswith("@title "):
                    self.title = text[len("@title "):]
                elif text.startswith("@title"):
                    self.title = ""
                elif text.startswith("@series "):
                    parts = text.split()
                    self.series_axis, self.series_index = parts[1], int(parts[2])
                elif text.startswith("@label "):
                    self.labels.append(text[len("@label "):])
            elif isinstance(event, EndObject):
                break


class _ChartViewBase(View):
    """Shared machinery for the chart view types."""

    atk_register = False

    def __init__(self, dataobject: Optional[ChartData] = None) -> None:
        super().__init__(dataobject)

    @property
    def chart(self) -> Optional[ChartData]:
        return self.dataobject

    def _series(self) -> List[float]:
        return self.chart.series() if self.chart is not None else []

    def _label(self, index: int) -> str:
        if self.chart is not None and index < len(self.chart.labels):
            return self.chart.labels[index]
        return f"#{index + 1}"


class PieChartView(_ChartViewBase):
    """A pie over the series: ellipse plus sector radii, slice legend.

    On a cell device the 'pie' is small but real — radii drawn with the
    line primitives — and the legend carries the percentages, keeping
    snapshots meaningful on both window systems.
    """

    atk_name = "piechartview"

    def desired_size(self, width: int, height: int) -> Tuple[int, int]:
        values = [v for v in self._series() if v > 0]
        return (min(width, 40), min(height, max(7, len(values) + 3)))

    def draw(self, graphic: Graphic) -> None:
        values = [v for v in self._series() if v > 0]
        total = sum(values)
        title = self.chart.title if self.chart is not None else ""
        if title:
            graphic.draw_string(0, 0, title)
        if total <= 0:
            graphic.draw_string(0, 1, "(no data)")
            return
        # The pie occupies the left half; legend on the right.
        size = max(4, min(self.height - 2, self.width // 2 - 1))
        pie = Rect(0, 1, size * 2, size)
        graphic.draw_ellipse(pie)
        center = pie.center
        angle = -math.pi / 2  # twelve o'clock
        for value in values:
            dx = round(math.cos(angle) * pie.width / 2)
            dy = round(math.sin(angle) * pie.height / 2)
            graphic.draw_line(center.x, center.y, center.x + dx, center.y + dy)
            angle += 2 * math.pi * (value / total)
        legend_x = pie.right + 2
        for index, value in enumerate(values):
            if 1 + index >= self.height:
                break
            share = 100.0 * value / total
            graphic.draw_string(
                legend_x, 1 + index,
                f"{self._label(index)} {share:.0f}%",
            )


class BarChartView(_ChartViewBase):
    """Horizontal bars over the series — the second chart view type."""

    atk_name = "barchartview"

    def desired_size(self, width: int, height: int) -> Tuple[int, int]:
        return (min(width, 40), min(height, len(self._series()) + 2))

    def draw(self, graphic: Graphic) -> None:
        values = self._series()
        title = self.chart.title if self.chart is not None else ""
        if title:
            graphic.draw_string(0, 0, title)
        top = 1 if title else 0
        peak = max((abs(v) for v in values), default=0.0)
        if peak <= 0:
            graphic.draw_string(0, top, "(no data)")
            return
        label_width = 8
        avail = max(1, self.width - label_width - 8)
        for index, value in enumerate(values):
            y = top + index
            if y >= self.height:
                break
            length = max(1, round(abs(value) / peak * avail))
            graphic.draw_string(0, y, self._label(index)[:label_width - 1])
            graphic.fill_rect(Rect(label_width, y, length, 1), 1)
            graphic.draw_string(label_width + length + 1, y, f"{value:g}")
