"""The component library (paper section 1).

"The toolkit provides the usual set of simple components (menu, scroll
bars, etc) and a number of higher-level editable components including
multi-font text, tables/spreadsheets, drawings, equations, rasters and
simple animations."

Importing this package registers every component class with the class
system, which is what a statically linked application image contained;
components left *out* of an image load dynamically on first reference
(see ``plugins/`` at the repository root for the music example).
"""

from .animation import AnimationData, AnimationView, pascal_triangle_frames
from .button import Button
from .drawing import (
    DrawView,
    DrawingData,
    EllipseShape,
    GroupShape,
    LineShape,
    PolylineShape,
    RectShape,
    Shape,
    TextShape,
)
from .equation import EquationData, EquationView, render_equation
from .frame import Frame, GRAB_SLOP, MessageLine
from .label import Label
from .listview import ListView
from .menuview import MenuPopupView, menu_snapshot
from .pagelayout import PageLayoutData, PageLayoutView, Placement
from .split import SplitView
from .raster import RasterData, RasterView
from .scrollbar import ScrollBar, Scrollable
from .table import (
    BarChartView,
    ChartData,
    Formula,
    FormulaError,
    PieChartView,
    TableData,
    TableView,
)
from .text import (
    EmbeddedObject,
    OBJECT_CHAR,
    PageView,
    StyleSpan,
    TextData,
    TextView,
)

__all__ = [
    "Label",
    "ListView",
    "MenuPopupView",
    "menu_snapshot",
    "PageLayoutData",
    "PageLayoutView",
    "Placement",
    "SplitView",
    "Button",
    "ScrollBar",
    "Scrollable",
    "Frame",
    "MessageLine",
    "GRAB_SLOP",
    "TextData",
    "TextView",
    "PageView",
    "EmbeddedObject",
    "OBJECT_CHAR",
    "StyleSpan",
    "TableData",
    "TableView",
    "Formula",
    "FormulaError",
    "ChartData",
    "PieChartView",
    "BarChartView",
    "DrawingData",
    "DrawView",
    "Shape",
    "LineShape",
    "RectShape",
    "EllipseShape",
    "GroupShape",
    "PolylineShape",
    "TextShape",
    "EquationData",
    "EquationView",
    "render_equation",
    "RasterData",
    "RasterView",
    "AnimationData",
    "AnimationView",
    "pascal_triangle_frames",
]
