"""The text view: a display-based (WYSLRN) editor on a TextData.

"Currently the text view is a display-based text processing system ...
It displays text with multiple fonts, indentations, etc. but makes no
attempt to display the information as it would appear on a piece of
paper."  (The paper-based companion is
:mod:`repro.components.text.wysiwyg`, which views the *same* data
object — the section-2 two-views example.)

Responsibilities:

* wrap the buffer to the view width, honouring per-style fonts and
  paragraph indentation/centering;
* realize each embedded object as a child view, created **by name
  through the dynamic loader** — the text view has no compiled-in
  knowledge of any embedded component's type;
* edit the data object through its mutators only, letting change
  notifications drive repaints (the delayed-update discipline), so any
  number of other views on the same buffer stay correct;
* expose the :class:`~repro.components.scrollbar.Scrollable` protocol
  so a scroll bar can adjust it (Figure 1's arrangement).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Tuple

from ... import obs
from ...class_system.dynamic import load_class
from ...class_system.errors import DynamicLoadError
from ...class_system.observable import ChangeRecord
from ...core.view import View
from ...graphics.fontdesc import FontDesc, FontMetrics
from ...graphics.geometry import Point, Rect
from ...graphics.graphic import Graphic
from ..scrollbar import Scrollable
from .marks import LEFT, Mark, RIGHT
from .styles import Style
from .textdata import EmbeddedObject, OBJECT_CHAR, TextData

__all__ = ["TextView"]

# One shared kill buffer, like the original's cut buffer.
_clipboard: List[str] = [""]


class _TextLine:
    """One wrapped display line of character cells.

    The characters on one display line always occupy consecutive buffer
    positions, so the line stores a plain string plus its first
    position; ``doc_start`` is a mutable int that the view shifts when
    edits move content without re-wrapping the line (incremental
    relayout).
    """

    __slots__ = ("doc_start", "text", "indent", "centered", "height")

    def __init__(self, doc_start: int, text: str,
                 indent: int, centered: bool, height: int) -> None:
        self.doc_start = doc_start
        self.text = text
        self.indent = indent
        self.centered = centered
        self.height = height

    @property
    def doc_end(self) -> int:
        """One past the last position on this line."""
        return self.doc_start + len(self.text)


class _EmbedLine:
    """A display block occupied by an embedded component's view."""

    __slots__ = ("embed", "indent", "width", "height")

    def __init__(self, embed: EmbeddedObject, indent: int,
                 width: int, height: int) -> None:
        self.embed = embed
        self.indent = indent
        self.width = width
        self.height = height

    @property
    def doc_start(self) -> int:
        return self.embed.pos

    @property
    def doc_end(self) -> int:
        return self.embed.pos + 1


class TextView(View, Scrollable):
    """Interactive multi-font text editor view."""

    atk_name = "textview"

    base_font = FontDesc("andy", 12)

    #: Class-level escape hatch: False forces every layout to re-wrap
    #: from scratch (benchmarks use it as the control arm).
    incremental_enabled = True

    def __init__(self, dataobject: Optional[TextData] = None,
                 read_only: bool = False) -> None:
        View.__init__(self)
        self.read_only = read_only
        self._dot: Optional[Mark] = None       # the caret
        self._anchor: Optional[Mark] = None    # selection anchor (or None)
        self._region_start: Optional[Mark] = None
        self._region_end: Optional[Mark] = None
        self._top = 0                          # first visible display line
        self._lines: List[object] = []
        self._embed_views: Dict[int, View] = {}
        # Incremental-relayout state: the dirty span is kept in current
        # buffer coordinates (each edit both widens it and shifts the
        # cached lines' doc_starts); a full layout is forced when the
        # cache cannot be trusted (width change, region change, embed
        # mutations, no prior lines).
        self._dirty_lo: Optional[int] = None
        self._dirty_hi: Optional[int] = None
        self._full_layout = True
        self._prefix: Optional[List[int]] = None  # cumulative line heights
        self._starts: Optional[List[int]] = None  # doc_start per line
        self._bind_keys()
        self._build_menus()
        if dataobject is not None:
            self.set_dataobject(dataobject)

    # ------------------------------------------------------------------
    # Data linkage
    # ------------------------------------------------------------------

    def set_dataobject(self, dataobject) -> None:
        if self.dataobject is not None:
            if self._dot is not None:
                self.dataobject.marks.release(self._dot)
                self._dot = None
            self.clear_region()
        super().set_dataobject(dataobject)
        if dataobject is not None:
            self._dot = dataobject.marks.create(0, RIGHT)
        self._anchor = None
        self._region_start = None
        self._region_end = None
        self._full_layout = True
        self._needs_layout = True

    def set_region(self, start: int, end: int) -> None:
        """Restrict this view to the buffer section ``[start, end)``.

        The section-2 PageMaker scenario: several views examining
        *different sections of the same data object*.  The bounds are
        marks, so they follow edits; the caret is clamped inside.
        """
        if self.data is None:
            raise ValueError("set_region requires a data object")
        self.clear_region()
        self._region_start = self.data.marks.create(start, LEFT)
        self._region_end = self.data.marks.create(end, RIGHT)
        self.set_dot(max(start, min(self.dot, end)))
        self._full_layout = True
        self._needs_layout = True
        self.want_update()

    def clear_region(self) -> None:
        """Show the whole buffer again."""
        if self.data is not None:
            if self._region_start is not None:
                self.data.marks.release(self._region_start)
            if self._region_end is not None:
                self.data.marks.release(self._region_end)
        self._region_start = self._region_end = None
        self._full_layout = True
        self._needs_layout = True

    def region(self) -> Tuple[int, int]:
        """The visible section ``(start, end)`` (whole buffer if unset)."""
        if self.data is None:
            return (0, 0)
        if self._region_start is None or self._region_end is None:
            return (0, self.data.length)
        start = max(0, min(self._region_start.pos, self.data.length))
        end = max(start, min(self._region_end.pos, self.data.length))
        return (start, end)

    @property
    def data(self) -> Optional[TextData]:
        return self.dataobject

    @property
    def dot(self) -> int:
        """The caret position."""
        return self._dot.pos if self._dot is not None else 0

    def set_dot(self, pos: int, extend: bool = False) -> None:
        """Move the caret; ``extend`` grows the selection instead."""
        if self.data is None or self._dot is None:
            return
        lo, hi = self.region()
        pos = max(lo, min(pos, hi))
        if extend:
            if self._anchor is None:
                self._anchor = self.data.marks.create(self._dot.pos)
        else:
            self._clear_selection()
        self._dot.pos = pos
        self._scroll_dot_visible()
        self.want_update()

    def selection(self) -> Optional[Tuple[int, int]]:
        """The selected range (start, end), or None."""
        if self._anchor is None or self._dot is None:
            return None
        a, b = self._anchor.pos, self._dot.pos
        if a == b:
            return None
        return (min(a, b), max(a, b))

    def selected_text(self) -> str:
        span = self.selection()
        if span is None or self.data is None:
            return ""
        return self.data.text(span[0], span[1])

    def _clear_selection(self) -> None:
        if self._anchor is not None and self.data is not None:
            self.data.marks.release(self._anchor)
        self._anchor = None

    def set_bounds(self, bounds: Rect) -> None:
        if bounds.width != self.bounds.width:
            self._full_layout = True
        super().set_bounds(bounds)

    def on_data_changed(self, change: ChangeRecord) -> None:
        """Repair incrementally: "the view must determine what the
        change is and update its visual representation appropriately"
        (§2).  An edit can only move content on its own display line
        and below (wrap is per-paragraph, top-down), so the damage is
        the changed line's row to the bottom of the view; changes above
        or below the visible region damage everything / nothing."""
        damage_top = self._damage_row_for(change)
        self._record_change(change)
        # doc_starts may have shifted (cached lines and embed marks):
        # drop the position index so pre-layout hit tests stay honest.
        self._starts = None
        self._needs_layout = True
        if damage_top is None:
            self.want_update()
        elif damage_top < self.height:
            self.want_update(
                Rect(0, damage_top, self.width, self.height - damage_top)
            )

    # -- incremental-relayout bookkeeping -----------------------------------

    def _record_change(self, change: ChangeRecord) -> None:
        """Fold one change record into the dirty span (current coords).

        Inserts and deletes also shift the cached ``doc_start`` of every
        unaffected line so the cache stays addressed in current buffer
        coordinates; embed mutations and anything unclassifiable force
        the one-shot full-layout fallback.
        """
        if self._full_layout:
            return
        what, where, extent = change.what, change.where, change.extent
        if what not in ("insert", "delete", "style") or not isinstance(
            where, int
        ) or not isinstance(extent, int):
            self._full_layout = True
            return
        if not self._lines:
            self._full_layout = True
            return
        if what == "insert":
            self._shift_dirty_insert(where, extent)
            self._extend_dirty(where, where + extent)
            for line in self._lines:
                if isinstance(line, _TextLine) and line.doc_start >= where:
                    line.doc_start += extent
        elif what == "delete":
            self._shift_dirty_delete(where, extent)
            # The join point plus one: a cached line starting exactly at
            # ``where`` may have lost leading characters, so it can never
            # be trusted for suffix reuse.
            self._extend_dirty(where, where + 1)
            cutoff = where + extent
            for line in self._lines:
                if not isinstance(line, _TextLine):
                    continue  # embed lines track their marks
                if line.doc_start >= cutoff:
                    line.doc_start -= extent
                elif line.doc_start > where:
                    line.doc_start = where  # inside the cut: dirty anyway
        else:  # style: no positions move
            self._extend_dirty(where, where + extent)

    def _extend_dirty(self, lo: int, hi: int) -> None:
        if self._dirty_lo is None:
            self._dirty_lo, self._dirty_hi = lo, hi
        else:
            self._dirty_lo = min(self._dirty_lo, lo)
            self._dirty_hi = max(self._dirty_hi, hi)

    def _shift_dirty_insert(self, where: int, extent: int) -> None:
        if self._dirty_lo is not None and self._dirty_lo >= where:
            self._dirty_lo += extent
        if self._dirty_hi is not None and self._dirty_hi >= where:
            self._dirty_hi += extent

    def _shift_dirty_delete(self, where: int, extent: int) -> None:
        def map_pos(pos: int) -> int:
            if pos < where:
                return pos
            if pos >= where + extent:
                return pos - extent
            return where
        if self._dirty_lo is not None:
            self._dirty_lo = map_pos(self._dirty_lo)
        if self._dirty_hi is not None:
            self._dirty_hi = map_pos(self._dirty_hi)

    def _reset_dirty(self) -> None:
        self._dirty_lo = self._dirty_hi = None
        self._full_layout = False

    def _damage_row_for(self, change: ChangeRecord) -> Optional[int]:
        """First view row affected by ``change``, or None for 'all'."""
        if change.what not in ("insert", "delete", "style") or not isinstance(
            change.where, int
        ):
            return None
        if not self._lines or self._top >= len(self._lines):
            return None
        visible = self._lines[self._top:]
        if change.where < visible[0].doc_start:
            return 0  # content above the window moved: repaint all
        y = 0
        for line in visible:
            if y >= self.height:
                return self.height  # change below the window: no damage
            # ``<=`` so an edit at a line's end (the caret sitting at
            # end-of-line, the common typing position) damages that
            # line's row; damage runs to the bottom, so attributing it
            # one row early is always safe, never wrong.
            if change.where <= line.doc_end or line is self._lines[-1]:
                return y
            y += line.height
        return self.height

    # ------------------------------------------------------------------
    # Metrics & layout
    # ------------------------------------------------------------------

    def _metrics(self, font: FontDesc) -> FontMetrics:
        im = self.interaction_manager()
        if im is not None:
            return im.window_system.font_metrics(font)
        return FontMetrics(font, 1, 1, 0)

    def font_for_styles(self, styles: List[Style]) -> FontDesc:
        font = self.base_font
        size = font.size
        flags = set(font.styles)
        for style in styles:
            size += style.size_delta
            if style.bold:
                flags.add("bold")
            if style.italic:
                flags.add("italic")
            if style.fixed:
                flags.add("fixed")
        return FontDesc(font.family, max(4, size), flags)

    def _font_at(self, pos: int) -> FontDesc:
        assert self.data is not None
        return self.font_for_styles(self.data.styles_at(pos))

    def _paragraph_props(self, pos: int) -> Tuple[int, bool]:
        """(indent, centered) from the styles covering ``pos``."""
        indent = 0
        centered = False
        if self.data is not None:
            for style in self.data.styles_at(pos):
                indent += style.indent
                centered = centered or style.centered
        return (indent, centered)

    def layout(self) -> None:
        """Rebuild or incrementally repair the wrapped display-line list.

        Edit-to-repaint cost stays proportional to the damage: when the
        change records since the last layout pinned down a dirty span,
        only the dirty paragraphs are re-wrapped and the preserved lines
        are spliced back in.  A from-scratch wrap runs when the cache
        cannot be trusted (first layout, width change, region change,
        embed mutations, dataobject swap).
        """
        if self.data is None or self.width <= 0:
            self._lines = []
            self._dirty_lo = self._dirty_hi = None
            self._full_layout = True
            self._prefix = None
            self._starts = None
            self._place_embed_views()
            return
        done = (
            self.incremental_enabled
            and not self._full_layout
            and self._layout_incremental()
        )
        if not done:
            self._layout_full()
        self._reset_dirty()
        self._prefix = None
        self._starts = None
        self._clamp_top()
        self._place_embed_views()

    def _layout_full(self) -> None:
        lo, hi = self.region()
        self._lines = self._wrap_range(lo, hi, final_trailing=True)
        if obs.metrics_on:
            obs.registry.inc("text.layout_full")
            obs.registry.inc("text.lines_wrapped", len(self._lines))

    def _layout_incremental(self) -> bool:
        """Re-wrap only the dirty paragraphs; splice cached lines around.

        Returns False when the cached line list cannot be repaired in
        place (the caller then falls back to a full wrap).  Cached
        ``doc_start`` values were already shifted into current buffer
        coordinates by :meth:`_record_change`, so paragraph boundaries
        are re-verified against the live buffer before any line is
        trusted for reuse.
        """
        lines = self._lines
        n = len(lines)
        lo, hi = self.region()
        if (not n or not isinstance(lines[-1], _TextLine)
                or lines[0].doc_start != lo):
            return False
        if self._dirty_lo is None:
            # Only scroll/placement state changed: reuse every line.
            self._refresh_embed_lines()
            if obs.metrics_on:
                obs.registry.inc("text.layout_incremental")
                obs.registry.inc("text.lines_reused", n)
            return True
        dlo = max(lo, min(self._dirty_lo, hi))
        dhi = max(dlo, min(self._dirty_hi, hi))
        starts = [line.doc_start for line in lines]
        # Paragraph start at or before the dirty span (verified against
        # the live buffer — cached lines may be stale inside the span).
        if self._hard_start(dlo, lo):
            para_start = dlo
        else:
            idx = bisect_right(starts, dlo) - 1
            if idx < 0:
                return False
            while idx > 0 and not self._line_is_hard(lines[idx], lo):
                idx -= 1
            if not self._line_is_hard(lines[idx], lo):
                return False
            para_start = lines[idx].doc_start
            if para_start > dlo:
                return False
        # Prefix: lines lying entirely before the re-wrapped range.  A
        # stale line can share the paragraph's doc_start (a deletion
        # clamps interior lines to the join point), so membership is by
        # content extent, not by index arithmetic.
        i0 = bisect_left(starts, para_start)
        while i0 > 0 and lines[i0 - 1].doc_end > para_start:
            i0 -= 1
        # Suffix: the first verified paragraph-start line at or after
        # the dirty end; it and everything below are reused as-is.
        k = bisect_left(starts, dhi, i0)
        while k < n and not self._line_is_hard(lines[k], lo):
            k += 1
        if k == n - 1 and not lines[k].text:
            # The empty trailing line (the caret home) inherits its
            # paragraph properties from the wrap state left by the
            # content before it — re-derive it with the re-wrap.
            k = n
        if k == n and para_start >= hi:
            # Empty re-wrap range ending at the buffer tail: the trailing
            # line's paragraph properties are leftover wrap state from
            # content before ``para_start``, which only a full pass sees.
            return False
        if k < n:
            if lines[-1].doc_end != hi:
                return False  # suffix drifted: cache not trustworthy
            new_lines = self._wrap_range(
                para_start, lines[k].doc_start, final_trailing=False
            )
            reused = i0 + (n - k)
        else:
            new_lines = self._wrap_range(para_start, hi, final_trailing=True)
            reused = i0
        self._lines[i0:k] = new_lines
        self._refresh_embed_lines()
        if obs.metrics_on:
            obs.registry.inc("text.layout_incremental")
            obs.registry.inc("text.lines_reused", reused)
            obs.registry.inc("text.lines_wrapped", len(new_lines))
        return True

    def _refresh_embed_lines(self) -> None:
        """Re-measure embedded blocks on reused lines.

        A full layout re-asks every embedded view's ``desired_size``;
        reused lines must do the same, or an embedded component that
        grew (a table gaining rows, say) would keep its stale block
        size until the next full wrap.
        """
        for line in self._lines:
            if isinstance(line, _EmbedLine):
                view = self._view_for_embed(line.embed)
                offer_w = max(1, self.width - line.indent - 1)
                offer_h = max(1, self.height - 1) if self.height else 8
                w, h = view.desired_size(offer_w, offer_h)
                line.width = max(1, w)
                line.height = max(1, h)

    def _hard_start(self, pos: int, region_lo: int) -> bool:
        """Is ``pos`` a wrap-restart point (region or paragraph start)?

        Verified against the live buffer, not cached flags, so stale
        line state after a deletion cannot fake a boundary.
        """
        if pos == region_lo:
            return True
        if pos <= 0 or pos > self.data.length:
            return False
        return self.data.char_at(pos - 1) == "\n"

    def _line_is_hard(self, line: object, region_lo: int) -> bool:
        return isinstance(line, _TextLine) and self._hard_start(
            line.doc_start, region_lo
        )

    def _wrap_range(self, start: int, end: int,
                    final_trailing: bool) -> List[object]:
        """Wrap buffer positions ``[start, end)`` into display lines.

        The single wrap state machine: full layout runs it over the
        whole region with ``final_trailing=True`` (the trailing line
        exists even when empty — the caret home), incremental relayout
        over a paragraph range ending just after a newline with
        ``final_trailing=False``.  Fonts, metrics and paragraph
        properties are resolved once per constant-style run, not once
        per character.
        """
        data = self.data
        out: List[object] = []
        base_metrics = self._metrics(self.base_font)
        base_height = base_metrics.height
        wrap_unit = base_metrics.char_width
        text = data.text(start, end)
        current: List[str] = []
        current_start = start
        current_width = 0
        line_height = base_height
        indent, centered = self._paragraph_props(start)
        avail = max(1, self.width - indent - 1)

        def flush(next_start: int) -> None:
            nonlocal current, current_start, current_width, line_height
            out.append(
                _TextLine(current_start, "".join(current), indent, centered,
                          max(1, line_height))
            )
            current = []
            current_start = next_start
            current_width = 0
            line_height = base_height

        for run_start, run_end, styles in data.runs(start, end):
            metrics = self._metrics(self.font_for_styles(styles))
            run_indent = 0
            run_centered = False
            for style in styles:
                run_indent += style.indent
                run_centered = run_centered or style.centered
            for pos in range(run_start, run_end):
                char = text[pos - start]
                if not current:
                    current_start = pos
                    indent, centered = run_indent, run_centered
                    avail = max(1, self.width - indent - 1)
                if char == "\n":
                    flush(pos + 1)
                    continue
                if char == OBJECT_CHAR:
                    embed = data.embedded_at(pos)
                    if current:
                        flush(pos + 1)
                    if embed is not None:
                        view = self._view_for_embed(embed)
                        offer_w = max(1, self.width - indent - 1)
                        offer_h = max(1, self.height - 1) if self.height else 8
                        w, h = view.desired_size(offer_w, offer_h)
                        out.append(
                            _EmbedLine(embed, indent, max(1, w), max(1, h))
                        )
                    continue
                advance = metrics.char_width * (4 if char == "\t" else 1)
                if current and current_width + advance > avail * wrap_unit:
                    flush(pos)
                    indent, centered = run_indent, run_centered
                    avail = max(1, self.width - indent - 1)
                current.append(char)
                current_width += advance
                line_height = max(line_height, metrics.height)
        if final_trailing:
            out.append(
                _TextLine(current_start, "".join(current), indent, centered,
                          max(1, line_height))
            )
        return out

    def _view_for_embed(self, embed: EmbeddedObject) -> View:
        """The child view displaying ``embed``, created on demand.

        The view class is resolved by name through the dynamic loader —
        this line is where a never-linked component's code gets pulled
        into a running editor.
        """
        view = self._embed_views.get(id(embed))
        if view is None:
            try:
                cls = load_class(embed.view_type)
            except DynamicLoadError:
                cls = _UnknownComponentView
            view = cls(embed.data) if issubclass(cls, View) else _UnknownComponentView(embed.data)
            self._embed_views[id(embed)] = view
            self.add_child(view)
        return view

    def _place_embed_views(self) -> None:
        """Assign window space to embedded views for the current scroll."""
        y = 0
        for index, line in enumerate(self._lines):
            if index < self._top:
                if isinstance(line, _EmbedLine):
                    self._embed_views_bounds(line.embed, Rect(0, 0, 0, 0))
                continue
            if isinstance(line, _EmbedLine):
                visible_h = min(line.height, max(0, self.height - y))
                rect = (
                    Rect(line.indent + 1, y, line.width, visible_h)
                    if visible_h > 0 else Rect(0, 0, 0, 0)
                )
                self._embed_views_bounds(line.embed, rect)
            y += line.height
        # Views whose embeds were deleted leave the tree.
        current = (
            {id(e) for e in self.data.embeds()} if self.data is not None else set()
        )
        for key, view in list(self._embed_views.items()):
            if key not in current:
                self.remove_child(view)
                del self._embed_views[key]

    def _embed_views_bounds(self, embed: EmbeddedObject, rect: Rect) -> None:
        view = self._embed_views.get(id(embed))
        if view is not None:
            clipped = self.local_bounds.intersection(rect)
            view.set_bounds(clipped if not rect.is_empty() else rect)

    # ------------------------------------------------------------------
    # Scrollable protocol
    # ------------------------------------------------------------------

    def _prefix_heights(self) -> List[int]:
        """``p[i]`` = total height of display lines before index ``i``.

        Cached alongside the line list (invalidated by every layout), so
        scrollbar queries and clip searches are O(1)/O(log n) instead of
        an O(lines) sum per call.
        """
        prefix = self._prefix
        if prefix is None:
            total = 0
            prefix = [0]
            for line in self._lines:
                total += line.height
                prefix.append(total)
            self._prefix = prefix
        return prefix

    def _doc_starts(self) -> List[int]:
        """Cached ``doc_start`` per line, for binary position searches."""
        starts = self._starts
        if starts is None:
            starts = [line.doc_start for line in self._lines]
            self._starts = starts
        return starts

    def scroll_total(self) -> int:
        self.ensure_layout()
        return self._prefix_heights()[-1]

    def scroll_pos(self) -> int:
        self.ensure_layout()
        prefix = self._prefix_heights()
        return prefix[min(self._top, len(prefix) - 1)]

    def scroll_visible(self) -> int:
        return self.height

    def scroll_clamp(self, pos: int) -> int:
        # Positions are device pixels into the wrapped document; the
        # bisect in apply_scroll_pos snaps them to a line start, so the
        # only clamp needed here is non-negativity.
        return max(0, pos)

    def apply_scroll_pos(self, pos: int) -> None:
        # A viewport-origin move: the wrap (line list, prefix heights)
        # is untouched, so _needs_layout stays clear — scrolling must
        # never re-run layout.  Only embedded children, whose bounds
        # are viewport-relative, need replacing.
        self.ensure_layout()
        prefix = self._prefix_heights()
        index = bisect_right(prefix, pos) - 1
        self._top = min(index, max(0, len(self._lines) - 1))
        self._clamp_top()
        if self._embed_views:
            self._place_embed_views()

    def scroll_blit_ok(self) -> bool:
        # Display lines occupy disjoint vertical bands on every backend
        # (line.height covers the glyphs), so TextView may shift on the
        # raster device too — unless embeds are present: a bottom-
        # clipped embedded view renders content a shift cannot source.
        return not self._embed_views

    def _clamp_top(self) -> None:
        self._top = max(0, min(self._top, max(0, len(self._lines) - 1)))

    def _scroll_dot_visible(self) -> None:
        # Decide against the *current* wrap, not the stale pre-edit
        # lines: an edit that split the caret's display line would
        # otherwise leave the caret one row below the window and the
        # view would never follow it.  Cheap now that layout is
        # incremental.  Like apply_scroll_pos, this moves only the
        # viewport origin: the wrap stays valid and _needs_layout
        # stays clear.
        self.ensure_layout()
        index = self._line_index_of(self.dot)
        if index is None:
            return
        before = self._top
        if index < self._top:
            self._top = index
        else:
            # Walk down until the dot line starts inside the window.
            prefix = self._prefix_heights()
            window = max(1, self.height)
            while self._top < index and (
                prefix[index] - prefix[self._top] >= window
            ):
                self._top += 1
        if self._top != before and self._embed_views:
            self._place_embed_views()

    # ------------------------------------------------------------------
    # Position mapping
    # ------------------------------------------------------------------

    def _line_index_of(self, pos: int) -> Optional[int]:
        self.ensure_layout()
        lines = self._lines
        n = len(lines)
        if not n:
            return None
        idx = bisect_right(self._doc_starts(), pos) - 1
        if idx < 0:
            idx = 0
        # Earlier lines can share a doc_start boundary (an embed at the
        # very end leaves the trailing empty line at the embed's own
        # position); back up while a predecessor still contains ``pos``.
        while idx > 0 and lines[idx - 1].doc_end > pos:
            idx -= 1
        for index in range(idx, n):
            line = lines[index]
            if line.doc_start <= pos < line.doc_end:
                return index
            if isinstance(line, _TextLine) and pos == line.doc_end and (
                index == n - 1 or lines[index + 1].doc_start > pos
            ):
                return index
        return n - 1

    def position_at(self, point: Point) -> int:
        """Document position under a view-local point (hit test)."""
        self.ensure_layout()
        if self.data is None:
            return 0
        y = 0
        for line in self._lines[self._top:]:
            if y <= point.y < y + line.height:
                if isinstance(line, _EmbedLine):
                    return line.embed.pos
                x = line.indent
                if line.centered:
                    x += self._center_pad(line)
                for offset, char in enumerate(line.text):
                    pos = line.doc_start + offset
                    width = self._metrics(self._font_at(pos)).char_width * (
                        4 if char == "\t" else 1
                    )
                    if point.x < x + width:
                        return pos
                    x += width
                return line.doc_end
            y += line.height
        return self.region()[1]

    def _center_pad(self, line: _TextLine) -> int:
        used = 0
        for offset, char in enumerate(line.text):
            used += self._metrics(
                self._font_at(line.doc_start + offset)
            ).char_width * (4 if char == "\t" else 1)
        return max(0, (self.width - line.indent - used) // 2)

    # ------------------------------------------------------------------
    # Drawing
    # ------------------------------------------------------------------

    def draw(self, graphic: Graphic) -> None:
        self.ensure_layout()
        if self.data is None:
            return
        selection = self.selection()
        caret_index = (
            self._line_index_of(self.dot) if selection is None else None
        )
        lines = self._lines
        prefix = self._prefix_heights()
        clip = graphic.bounds
        top_offset = prefix[min(self._top, len(prefix) - 1)]
        limit = min(self.height, clip.bottom)
        # Start at the first display line intersecting the clip instead
        # of walking down from _top unconditionally (damage culling).
        start = bisect_right(prefix, top_offset + max(0, clip.top)) - 1
        start = max(start, self._top)
        if start >= len(lines):
            return
        y = prefix[start] - top_offset
        for index in range(start, len(lines)):
            line = lines[index]
            if y >= limit:
                break
            if isinstance(line, _EmbedLine):
                # A marker column so embedded blocks are findable in
                # snapshots; the child view draws itself after us.
                graphic.draw_string(line.indent, y, "")
                y += line.height
                continue
            x = line.indent + (self._center_pad(line) if line.centered else 0)
            for run_start, run_end, styles in self.data.runs(
                line.doc_start, line.doc_end
            ):
                font = self.font_for_styles(styles)
                metrics = self._metrics(font)
                graphic.set_font(font)
                for pos in range(run_start, run_end):
                    char = line.text[pos - line.doc_start]
                    width = metrics.char_width * (4 if char == "\t" else 1)
                    if char != "\t":
                        graphic.draw_string(x, y, char)
                    if selection is not None and (
                        selection[0] <= pos < selection[1]
                    ):
                        graphic.invert_rect(Rect(x, y, width, line.height))
                    x += width
            if caret_index is not None and lines[caret_index] is line:
                caret_x = self._caret_x(line)
                graphic.invert_rect(
                    Rect(caret_x, y,
                         self._metrics(self.base_font).char_width,
                         line.height)
                )
            y += line.height

    def _caret_x(self, line: _TextLine) -> int:
        x = line.indent + (self._center_pad(line) if line.centered else 0)
        for offset, char in enumerate(line.text):
            pos = line.doc_start + offset
            if pos >= self.dot:
                break
            x += self._metrics(self._font_at(pos)).char_width * (
                4 if char == "\t" else 1
            )
        return x

    # ------------------------------------------------------------------
    # Mouse
    # ------------------------------------------------------------------

    def handle_mouse(self, event) -> bool:
        from ...wm.events import MouseAction

        if event.action == MouseAction.DOWN:
            self.set_dot(self.position_at(event.point))
            self.want_input_focus()
            return True
        if event.action == MouseAction.DRAG:
            self.set_dot(self.position_at(event.point), extend=True)
            return True
        if event.action == MouseAction.UP:
            return True
        return False

    # ------------------------------------------------------------------
    # Editing commands
    # ------------------------------------------------------------------

    def insert_text(self, text: str) -> None:
        """Type ``text`` at the caret (replacing any selection)."""
        if self.data is None or self.read_only:
            return
        span = self.selection()
        if span is not None:
            self.data.delete(span[0], span[1] - span[0])
            self._clear_selection()
        at = self.dot
        self.data.insert(at, text)
        self._dot.pos = at + len(text)
        self._follow_caret()

    def insert_object(self, data, view_type: Optional[str] = None):
        """Embed a component at the caret."""
        if self.data is None or self.read_only:
            return None
        at = self.dot
        embed = self.data.insert_object(at, data, view_type)
        self._dot.pos = at + 1
        self._follow_caret()
        return embed

    def delete_selection_or(self, fallback_start: int, fallback_len: int) -> None:
        if self.data is None or self.read_only:
            return
        span = self.selection()
        if span is not None:
            self.data.delete(span[0], span[1] - span[0])
            self._clear_selection()
        elif 0 <= fallback_start and fallback_start + fallback_len <= self.data.length:
            self.data.delete(fallback_start, fallback_len)
        self._follow_caret()

    def _follow_caret(self) -> None:
        """Keep the caret in the window after an edit moved it.

        Typing at the bottom row used to push the caret silently below
        the window once its display line wrapped; the view never
        scrolled after it.  Only an actual scroll posts (full) damage —
        the ordinary keystroke keeps its row-clipped damage rect.
        """
        before = self._top
        self._scroll_dot_visible()
        if self._top != before:
            self.want_update()

    # -- command implementations (bound in the keymap) ----------------------

    def _cmd_self_insert(self, view, key) -> None:
        self.insert_text(key.char)

    def _cmd_newline(self, view, key) -> None:
        self.insert_text("\n")

    def _cmd_tab(self, view, key) -> None:
        self.insert_text("\t")

    def _cmd_backspace(self, view, key) -> None:
        if self.selection() is not None:
            self.delete_selection_or(0, 0)
        elif self.dot > 0:
            at = self.dot - 1
            self.delete_selection_or(at, 1)

    def _cmd_delete(self, view, key) -> None:
        self.delete_selection_or(self.dot, 1)

    def _cmd_left(self, view, key) -> None:
        self.set_dot(self.dot - 1)

    def _cmd_right(self, view, key) -> None:
        self.set_dot(self.dot + 1)

    def _vertical_move(self, delta: int) -> None:
        index = self._line_index_of(self.dot)
        if index is None:
            return
        target = max(0, min(index + delta, len(self._lines) - 1))
        line = self._lines[target]
        offset = self.dot - self._lines[index].doc_start
        if isinstance(line, _TextLine):
            self.set_dot(min(line.doc_start + offset, line.doc_end))
        else:
            self.set_dot(line.doc_start)

    def _cmd_up(self, view, key) -> None:
        self._vertical_move(-1)

    def _cmd_down(self, view, key) -> None:
        self._vertical_move(1)

    def _line_bounds(self) -> Tuple[int, int]:
        """(start, end) of the logical line around the caret."""
        assert self.data is not None
        text = self.data.text()
        start = text.rfind("\n", 0, self.dot) + 1
        end = text.find("\n", self.dot)
        return (start, len(text) if end < 0 else end)

    def _cmd_line_start(self, view, key) -> None:
        self.set_dot(self._line_bounds()[0])

    def _cmd_line_end(self, view, key) -> None:
        self.set_dot(self._line_bounds()[1])

    def _cmd_kill_line(self, view, key) -> None:
        if self.data is None or self.read_only:
            return
        start, end = self._line_bounds()
        if self.dot == end and end < self.data.length:
            end += 1  # at EOL: kill the newline
        if end > self.dot:
            _clipboard[0] = self.data.text(self.dot, end)
            self.data.delete(self.dot, end - self.dot)

    def _cmd_yank(self, view, key) -> None:
        self.insert_text(_clipboard[0])

    def search_forward(self, needle: str) -> int:
        """Move the caret to the next occurrence of ``needle``.

        Searches from just past the caret, wrapping to the start;
        returns the match position or -1.  Used by C-s via the frame's
        dialog facility.
        """
        if self.data is None or not needle:
            return -1
        pos = self.data.search(needle, self.dot + 1)
        if pos < 0:
            pos = self.data.search(needle, 0)
        if pos >= 0:
            self.set_dot(pos)
        return pos

    def _enclosing_frame(self):
        node = self.parent
        while node is not None and not hasattr(node, "ask"):
            node = node.parent
        return node

    def _cmd_search(self, view, key) -> None:
        frame = self._enclosing_frame()
        if frame is None:
            return

        def do_search(needle: str) -> None:
            if self.search_forward(needle) < 0 and hasattr(
                frame, "post_message"
            ):
                frame.post_message(f"Can't find {needle!r}")
            self.want_input_focus()

        frame.ask("Search for: ", do_search)

    def _cmd_copy(self, view, event) -> None:
        text = self.selected_text()
        if text:
            _clipboard[0] = text.replace(OBJECT_CHAR, "")

    def _cmd_cut(self, view, event) -> None:
        self._cmd_copy(view, event)
        self.delete_selection_or(0, 0)

    def _cmd_paste(self, view, event) -> None:
        self.insert_text(_clipboard[0])

    def _apply_style(self, name: str) -> None:
        span = self.selection()
        if span is not None and self.data is not None and not self.read_only:
            self.data.add_style(span[0], span[1], name)

    def _cmd_plainer(self, view, event) -> None:
        span = self.selection()
        if span is not None and self.data is not None:
            self.data.clear_styles(span[0], span[1])

    def _bind_keys(self) -> None:
        keymap = self.keymap
        keymap.bind_printables(self._cmd_self_insert)
        keymap.bind("Return", self._cmd_newline)
        keymap.bind("Tab", self._cmd_tab)
        keymap.bind("Backspace", self._cmd_backspace)
        keymap.bind("Delete", self._cmd_delete)
        keymap.bind("C-d", self._cmd_delete)
        keymap.bind("Left", self._cmd_left)
        keymap.bind("Right", self._cmd_right)
        keymap.bind("Up", self._cmd_up)
        keymap.bind("Down", self._cmd_down)
        keymap.bind("C-b", self._cmd_left)
        keymap.bind("C-f", self._cmd_right)
        keymap.bind("C-p", self._cmd_up)
        keymap.bind("C-n", self._cmd_down)
        keymap.bind("C-a", self._cmd_line_start)
        keymap.bind("C-e", self._cmd_line_end)
        keymap.bind("C-k", self._cmd_kill_line)
        keymap.bind("C-y", self._cmd_yank)
        keymap.bind("C-w", self._cmd_cut)
        keymap.bind("C-s", self._cmd_search)

    def _build_menus(self) -> None:
        card = self.menu_card("Text")
        card.add("Cut", lambda v, e: self._cmd_cut(v, e), keys="C-w")
        card.add("Copy", lambda v, e: self._cmd_copy(v, e))
        card.add("Paste", lambda v, e: self._cmd_paste(v, e), keys="C-y")
        card.add("Search...", lambda v, e: self._cmd_search(v, e),
                 keys="C-s")
        style_card = self.menu_card("Style")
        for name in ("bold", "italic", "bigger", "center", "typewriter"):
            style_card.add(
                name.capitalize(),
                lambda v, e, _n=name: self._apply_style(_n),
            )
        style_card.add("Plainer", self._cmd_plainer)

    # ------------------------------------------------------------------
    # Sizing for embedding (text inside tables, drawings, ...)
    # ------------------------------------------------------------------

    def desired_size(self, width: int, height: int) -> Tuple[int, int]:
        """Enough lines to show the content at the offered width."""
        if self.data is None:
            return (width, 1)
        base = self._metrics(self.base_font)
        rows = 0
        for paragraph in self.data.text().split("\n"):
            cells = max(1, len(paragraph))
            per_row = max(1, width // max(1, base.char_width))
            rows += (cells + per_row - 1) // per_row
        rows += sum(1 for e in self.data.embeds())
        return (width, min(height, max(1, rows) * base.height))


class _UnknownComponentView(View):
    """Placeholder shown when a component's code cannot be found.

    The original editor showed an empty box for unloadable components;
    this keeps documents usable when a plugin is missing.
    """

    atk_name = "unknowncomponentview"

    def __init__(self, dataobject=None) -> None:
        super().__init__(dataobject)

    def desired_size(self, width: int, height: int) -> Tuple[int, int]:
        return (min(width, 20), min(height, 3))

    def draw(self, graphic: Graphic) -> None:
        graphic.draw_rect(self.local_bounds)
        tag = self.dataobject.type_tag if self.dataobject else "?"
        graphic.draw_string_centered(self.local_bounds, f"<{tag}>")
