"""Text styles (paper sections 1-2: "multi-font text").

A :class:`Style` bundles the display properties the Andrew text
component supported: font changes (bold, italic, fixed, size), layout
changes (indentation, centering).  Styles are applied to regions as
:class:`StyleSpan` s, which behave like paired marks: they stretch and
shrink as the buffer is edited.

Span gravity follows the usual editor convention: an insertion exactly
at a span's start lands *outside* it, and an insertion exactly at its
end also lands outside, so typing at a bold word's edge produces plain
text.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

__all__ = ["Style", "StyleSpan", "STANDARD_STYLES", "style_named",
           "effective_styles"]


class Style:
    """A named bundle of character/paragraph display attributes."""

    __slots__ = ("name", "bold", "italic", "fixed", "size_delta",
                 "indent", "centered")

    def __init__(self, name: str, bold: bool = False, italic: bool = False,
                 fixed: bool = False, size_delta: int = 0,
                 indent: int = 0, centered: bool = False) -> None:
        self.name = name
        self.bold = bold
        self.italic = italic
        self.fixed = fixed
        self.size_delta = size_delta
        self.indent = indent
        self.centered = centered

    def __eq__(self, other) -> bool:
        return isinstance(other, Style) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("style", self.name))

    def __repr__(self) -> str:
        return f"Style({self.name!r})"


#: The styles the original editor menus offered.
STANDARD_STYLES: Dict[str, Style] = {
    style.name: style
    for style in (
        Style("bold", bold=True),
        Style("italic", italic=True),
        Style("bolditalic", bold=True, italic=True),
        Style("typewriter", fixed=True),
        Style("bigger", size_delta=4),
        Style("smaller", size_delta=-2),
        Style("chapter", bold=True, size_delta=8),
        Style("section", bold=True, size_delta=4),
        Style("subsection", bold=True, size_delta=2),
        Style("quotation", indent=4, italic=True),
        Style("indent", indent=4),
        Style("center", centered=True),
        Style("majorheading", bold=True, size_delta=8, centered=True),
        Style("heading", bold=True, size_delta=4),
    )
}


def style_named(name: str) -> Style:
    """Resolve a style name; unknown names become inert styles so
    documents written by richer editors still open."""
    style = STANDARD_STYLES.get(name)
    if style is None:
        style = Style(name)
    return style


class StyleSpan:
    """A style applied to the half-open region ``[start, end)``."""

    __slots__ = ("start", "end", "style")

    def __init__(self, start: int, end: int, style: Style) -> None:
        if end < start:
            raise ValueError(f"span end {end} before start {start}")
        self.start = int(start)
        self.end = int(end)
        self.style = style

    @property
    def length(self) -> int:
        return self.end - self.start

    def is_empty(self) -> bool:
        return self.end <= self.start

    def covers(self, pos: int) -> bool:
        return self.start <= pos < self.end

    def adjust_insert(self, at: int, length: int) -> None:
        if at <= self.start:  # at the start edge: new text lands outside
            self.start += length
            self.end += length
        elif at < self.end:   # strictly inside: the span stretches
            self.end += length

    def adjust_delete(self, at: int, length: int) -> None:
        cut_end = at + length

        def shift(pos: int) -> int:
            if pos >= cut_end:
                return pos - length
            if pos > at:
                return at
            return pos

        self.start = shift(self.start)
        self.end = shift(self.end)

    def __repr__(self) -> str:
        return f"StyleSpan({self.start}, {self.end}, {self.style.name})"


def effective_styles(spans: Iterable[StyleSpan], pos: int) -> List[Style]:
    """The styles covering ``pos``, in application order."""
    return [span.style for span in spans if span.covers(pos)]
