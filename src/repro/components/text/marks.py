"""Sticky positions in editable text.

Everything that refers into a text buffer — style spans, embedded
object placements, view carets — must survive edits made elsewhere in
the buffer.  A :class:`Mark` is a position with *gravity*: when text is
inserted exactly at the mark, left gravity keeps the mark before the
insertion and right gravity moves it after.  The text data object owns
a :class:`MarkSet` and adjusts it inside every mutation, so observers
reading marks after a change notification always see consistent
positions.
"""

from __future__ import annotations

from typing import Iterator, List

__all__ = ["Mark", "MarkSet", "LEFT", "RIGHT"]

LEFT = "left"
RIGHT = "right"


class Mark:
    """A position in a text buffer that moves with edits."""

    __slots__ = ("pos", "gravity")

    def __init__(self, pos: int, gravity: str = LEFT) -> None:
        if gravity not in (LEFT, RIGHT):
            raise ValueError(f"gravity must be 'left' or 'right', got {gravity!r}")
        self.pos = int(pos)
        self.gravity = gravity

    def adjust_insert(self, at: int, length: int) -> None:
        """Shift for an insertion of ``length`` characters at ``at``."""
        if self.pos > at or (self.pos == at and self.gravity == RIGHT):
            self.pos += length

    def adjust_delete(self, at: int, length: int) -> None:
        """Shift for a deletion of ``length`` characters at ``at``.

        A mark inside the deleted range collapses to its start.
        """
        if self.pos >= at + length:
            self.pos -= length
        elif self.pos > at:
            self.pos = at

    def __repr__(self) -> str:
        return f"Mark({self.pos}, {self.gravity})"


class MarkSet:
    """All the marks registered against one buffer."""

    def __init__(self) -> None:
        self._marks: List[Mark] = []

    def create(self, pos: int, gravity: str = LEFT) -> Mark:
        mark = Mark(pos, gravity)
        self._marks.append(mark)
        return mark

    def adopt(self, mark: Mark) -> Mark:
        if mark not in self._marks:
            self._marks.append(mark)
        return mark

    def release(self, mark: Mark) -> None:
        if mark in self._marks:
            self._marks.remove(mark)

    def adjust_insert(self, at: int, length: int) -> None:
        for mark in self._marks:
            mark.adjust_insert(at, length)

    def adjust_delete(self, at: int, length: int) -> None:
        for mark in self._marks:
            mark.adjust_delete(at, length)

    def __iter__(self) -> Iterator[Mark]:
        return iter(self._marks)

    def __len__(self) -> int:
        return len(self._marks)
