r"""The multi-font text data object (paper sections 1, 2, 5).

"The text data object contains the actual characters, style information
and pointers to embedded data objects.  It also provides ways to alter
the data, such as inserting characters and deleting characters."

Representation
--------------
The buffer is a character sequence in which each embedded object
occupies exactly one position, held as the Unicode object-replacement
character (``OBJECT_CHAR``).  Style spans and embedded placements are
kept in side tables that the mutators adjust, so every position-bearing
structure stays consistent across edits.  Views' carets are
:class:`~repro.components.text.marks.Mark` s registered with the
buffer's mark set.

External representation
-----------------------
The body between the ``\begindata{text, id}`` markers is:

* ``@style <name> <start> <length>`` lines, one per style span
  (positions count embedded-object placeholders);
* content lines, where a trailing single backslash means "no newline
  here" (used both to wrap long lines at the 80-column transport limit
  and to interrupt a line for an embedded object); literal backslashes
  are doubled and a leading ``@`` is doubled;
* each embedded object's data written inline (nested
  ``\begindata``/``\enddata``) followed by ``\view{<viewtype>, <id>}``
  at its placement point — byte-for-byte the shape of the paper's
  section-5 example.

All mutators follow the delayed-update discipline: they change the
buffer, record a change, and notify observers; they never touch views.
Change vocabulary: ``insert``, ``delete``, ``embed``, ``style`` with
``where`` = position and ``extent`` = length.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple, Union

from ...core.dataobject import DataObject
from ...core.datastream import (
    BeginObject,
    BodyLine,
    DataStreamError,
    EndObject,
    ViewRef,
)
from .marks import Mark, MarkSet, RIGHT
from .styles import Style, StyleSpan, style_named

__all__ = ["TextData", "EmbeddedObject", "OBJECT_CHAR"]

#: The buffer placeholder occupied by an embedded object.
OBJECT_CHAR = "￼"

_WRAP_WIDTH = 76  # encoded columns before a continuation split


class EmbeddedObject:
    """One embedded component: the data object plus its placement."""

    __slots__ = ("data", "view_type", "mark")

    def __init__(self, data: DataObject, view_type: str, mark: Mark) -> None:
        self.data = data
        self.view_type = view_type
        self.mark = mark

    @property
    def pos(self) -> int:
        return self.mark.pos

    def __repr__(self) -> str:
        return (
            f"EmbeddedObject({self.data.type_tag}, view={self.view_type!r}, "
            f"pos={self.pos})"
        )


class TextData(DataObject):
    """Editable multi-font text with embedded objects."""

    atk_name = "text"

    def __init__(self, text: str = "") -> None:
        super().__init__()
        self._chars: List[str] = []
        self.marks = MarkSet()
        self.spans: List[StyleSpan] = []
        self._embeds: List[EmbeddedObject] = []
        if text:
            self.insert(0, text)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    @property
    def length(self) -> int:
        return len(self._chars)

    def char_at(self, pos: int) -> str:
        return self._chars[pos]

    def text(self, start: int = 0, end: Optional[int] = None) -> str:
        """The raw buffer slice (embedded objects appear as OBJECT_CHAR)."""
        if end is None:
            end = len(self._chars)
        return "".join(self._chars[start:end])

    def plain_text(self) -> str:
        """The buffer with embedded-object placeholders removed."""
        return "".join(c for c in self._chars if c != OBJECT_CHAR)

    def search(self, needle: str, start: int = 0) -> int:
        """Offset of ``needle`` at or after ``start``, or -1."""
        return self.text().find(needle, start)

    def line_count(self) -> int:
        return self.text().count("\n") + 1

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def _check_range(self, pos: int, length: int = 0) -> None:
        if not 0 <= pos <= len(self._chars):
            raise IndexError(f"position {pos} outside buffer of {len(self._chars)}")
        if not 0 <= pos + length <= len(self._chars):
            raise IndexError(
                f"range {pos}+{length} outside buffer of {len(self._chars)}"
            )

    def insert(self, pos: int, text: str) -> None:
        """Insert ``text`` at ``pos`` and notify observers.

        ``text`` may contain newlines but not the reserved placeholder
        character; use :meth:`insert_object` to embed components.
        """
        if OBJECT_CHAR in text:
            raise ValueError("use insert_object() to embed components")
        if not text:
            return
        self._check_range(pos)
        self._chars[pos:pos] = list(text)
        self.marks.adjust_insert(pos, len(text))
        for span in self.spans:
            span.adjust_insert(pos, len(text))
        self.changed("insert", where=pos, extent=len(text))

    def append(self, text: str) -> None:
        self.insert(self.length, text)

    def delete(self, pos: int, length: int) -> None:
        """Delete ``length`` characters at ``pos`` and notify observers.

        Embedded objects inside the range are removed from the embed
        table (their data objects are *not* destroyed — other views may
        still display them; ownership is the caller's).
        """
        if length <= 0:
            return
        self._check_range(pos, length)
        removed_embeds = [
            embed for embed in self._embeds if pos <= embed.pos < pos + length
        ]
        for embed in removed_embeds:
            self._embeds.remove(embed)
            self.marks.release(embed.mark)
        del self._chars[pos:pos + length]
        self.marks.adjust_delete(pos, length)
        for span in self.spans:
            span.adjust_delete(pos, length)
        self.spans = [s for s in self.spans if not s.is_empty()]
        self.changed("delete", where=pos, extent=length)

    def replace(self, pos: int, length: int, text: str) -> None:
        self.delete(pos, length)
        self.insert(pos, text)

    # ------------------------------------------------------------------
    # Embedded objects (the architecture's central feature)
    # ------------------------------------------------------------------

    def insert_object(self, pos: int, data: DataObject,
                      view_type: Optional[str] = None) -> EmbeddedObject:
        """Embed ``data`` at ``pos``.

        ``view_type`` names the view class to place on the object
        (datastream ``\\view`` tag); it defaults to ``<type>view``.
        The text component neither knows nor cares what the component
        is — "authors of new objects are strongly encouraged to handle
        the inclusion of arbitrary objects".
        """
        self._check_range(pos)
        if view_type is None:
            view_type = f"{data.type_tag}view"
        self._chars[pos:pos] = [OBJECT_CHAR]
        self.marks.adjust_insert(pos, 1)
        for span in self.spans:
            span.adjust_insert(pos, 1)
        # RIGHT gravity: an insertion exactly at the placeholder pushes
        # the placeholder right, and the mark must follow it.
        mark = self.marks.create(pos, RIGHT)
        embed = EmbeddedObject(data, view_type, mark)
        self._embeds.append(embed)
        self.changed("embed", where=pos, extent=1, detail=embed)
        return embed

    def append_object(self, data: DataObject,
                      view_type: Optional[str] = None) -> EmbeddedObject:
        return self.insert_object(self.length, data, view_type)

    def embeds(self) -> List[EmbeddedObject]:
        """Embedded objects in buffer order."""
        return sorted(self._embeds, key=lambda e: e.pos)

    def embedded_at(self, pos: int) -> Optional[EmbeddedObject]:
        for embed in self._embeds:
            if embed.pos == pos:
                return embed
        return None

    def embedded_objects(self) -> List[DataObject]:
        return [embed.data for embed in self.embeds()]

    # ------------------------------------------------------------------
    # Styles
    # ------------------------------------------------------------------

    def add_style(self, start: int, end: int,
                  style: Union[str, Style]) -> StyleSpan:
        """Apply a style to ``[start, end)`` and notify observers."""
        self._check_range(start, end - start)
        if isinstance(style, str):
            style = style_named(style)
        span = StyleSpan(start, end, style)
        self.spans.append(span)
        self.changed("style", where=start, extent=end - start)
        return span

    def clear_styles(self, start: int, end: int) -> int:
        """Remove spans lying entirely inside ``[start, end)``."""
        before = len(self.spans)
        self.spans = [
            s for s in self.spans if not (start <= s.start and s.end <= end)
        ]
        removed = before - len(self.spans)
        if removed:
            self.changed("style", where=start, extent=end - start)
        return removed

    def styles_at(self, pos: int) -> List[Style]:
        return [span.style for span in self.spans if span.covers(pos)]

    def runs(self, start: int, end: int) -> Iterator[Tuple[int, int, List[Style]]]:
        """Yield ``(run_start, run_end, styles)`` over ``[start, end)``.

        A run is a maximal range whose every position carries the same
        style set, so consumers (the text view's wrap loop, drawing)
        can resolve fonts and paragraph properties once per run instead
        of once per character.  Runs are contiguous and cover the whole
        range in order.
        """
        if end <= start:
            return
        edges = {start, end}
        for span in self.spans:
            for edge in (span.start, span.end):
                if start < edge < end:
                    edges.add(edge)
        points = sorted(edges)
        for run_start, run_end in zip(points, points[1:]):
            yield (run_start, run_end, self.styles_at(run_start))

    # ------------------------------------------------------------------
    # Paragraph iteration (consumed by views)
    # ------------------------------------------------------------------

    def segments(self) -> Iterator[Tuple[str, int, object]]:
        """Yield ``(kind, pos, payload)`` runs in buffer order.

        ``("text", pos, string)`` for maximal runs of plain characters
        (which may contain newlines), ``("embed", pos, EmbeddedObject)``
        for placements.
        """
        embeds_by_pos = {embed.pos: embed for embed in self._embeds}
        run_start = 0
        run: List[str] = []
        for pos, char in enumerate(self._chars):
            if char == OBJECT_CHAR:
                if run:
                    yield ("text", run_start, "".join(run))
                    run = []
                embed = embeds_by_pos.get(pos)
                if embed is not None:
                    yield ("embed", pos, embed)
                run_start = pos + 1
            else:
                if not run:
                    run_start = pos
                run.append(char)
        if run:
            yield ("text", run_start, "".join(run))

    # ------------------------------------------------------------------
    # External representation
    # ------------------------------------------------------------------

    def write_body(self, writer) -> None:
        for span in self.spans:
            if not span.is_empty():
                writer.write_body_line(
                    f"@style {span.style.name} {span.start} {span.length}"
                )

        # Encoded units (1-2 chars each; escape pairs are never split by
        # wrapping) accumulated for the logical line currently open.
        open_units: List[str] = []

        def flush(continue_line: bool) -> None:
            """Emit the open units, wrapping at the transport width.

            A trailing single backslash means "this logical line is not
            finished": used for width wraps, for interruptions by an
            embedded object, and for a document not ending in newline.
            """
            column = 0
            buffer: List[str] = []
            for unit in open_units:
                if column + len(unit) > _WRAP_WIDTH:
                    writer.write_body_line("".join(buffer) + "\\")
                    buffer = []
                    column = 0
                buffer.append(unit)
                column += len(unit)
            suffix = "\\" if continue_line else ""
            writer.write_body_line("".join(buffer) + suffix)
            open_units.clear()

        wrote_anything = False
        for kind, _pos, payload in self.segments():
            if kind == "text":
                pieces = payload.split("\n")
                for index, piece in enumerate(pieces):
                    for char in piece:
                        if char == "\\":
                            open_units.append("\\\\")
                        elif char == "@":
                            open_units.append("@@")
                        else:
                            open_units.append(char)
                    if index < len(pieces) - 1:
                        flush(continue_line=False)
                        wrote_anything = True
            else:  # embed: interrupt the open line, write data + placement
                flush(continue_line=True)
                wrote_anything = True
                object_id = writer.write_object(payload.data)
                writer.write_view_ref(payload.view_type, object_id)
        if open_units or not wrote_anything:
            flush(continue_line=True)  # final partial line: no newline

    def read_body(self, reader) -> None:
        self._chars = []
        self.spans = []
        self._embeds = []
        self.marks = MarkSet()
        content: List[str] = []
        line_open = False  # previous physical line ended with continuation

        def append_text(text: str) -> None:
            content.extend(text)

        for event in reader.body_events():
            if isinstance(event, BodyLine):
                raw = event.text
                if raw.startswith("@style "):
                    self._read_style_line(raw, event.line)
                    continue
                decoded, continued = _decode_content_line(raw, event.line)
                append_text(decoded)
                if not continued:
                    append_text("\n")
                line_open = continued
            elif isinstance(event, BeginObject):
                reader.read_object(event)  # registers in objects_by_id
            elif isinstance(event, ViewRef):
                data = reader.objects_by_id.get(event.object_id)
                if data is None:
                    raise DataStreamError(
                        f"\\view references unknown object {event.object_id}",
                        event.line,
                    )
                pos = len(content)
                content.append(OBJECT_CHAR)
                mark = self.marks.create(pos, RIGHT)
                self._embeds.append(
                    EmbeddedObject(data, event.view_type, mark)
                )
            elif isinstance(event, EndObject):
                break
        self._chars = content
        # Re-pin embed marks (content assembly didn't go through insert()).
        for embed in self._embeds:
            embed.mark.pos = min(embed.mark.pos, len(self._chars))
        self.changed("insert", where=0, extent=len(self._chars))

    def _read_style_line(self, raw: str, lineno: int) -> None:
        parts = raw.split()
        if len(parts) != 4:
            raise DataStreamError(f"malformed style line {raw!r}", lineno)
        _, name, start, length = parts
        try:
            start_pos, span_len = int(start), int(length)
        except ValueError:
            raise DataStreamError(f"malformed style line {raw!r}", lineno)
        self.spans.append(
            StyleSpan(start_pos, start_pos + span_len, style_named(name))
        )


def _decode_content_line(raw: str, lineno: int) -> Tuple[str, bool]:
    """Decode one encoded content line; returns (text, continued)."""
    out: List[str] = []
    i = 0
    continued = False
    while i < len(raw):
        char = raw[i]
        if char == "\\":
            if i + 1 < len(raw) and raw[i + 1] == "\\":
                out.append("\\")
                i += 2
                continue
            if i == len(raw) - 1:
                continued = True
                i += 1
                continue
            raise DataStreamError(
                f"stray backslash in content line {raw!r}", lineno
            )
        if char == "@":
            if i + 1 < len(raw) and raw[i + 1] == "@":
                out.append("@")
                i += 2
                continue
            raise DataStreamError(
                f"unknown text directive in {raw!r}", lineno
            )
        out.append(char)
        i += 1
    return ("".join(out), continued)
