"""The multi-font text component (data object, editor view, page view)."""

from .marks import LEFT, Mark, MarkSet, RIGHT
from .styles import (
    STANDARD_STYLES,
    Style,
    StyleSpan,
    effective_styles,
    style_named,
)
from .textdata import EmbeddedObject, OBJECT_CHAR, TextData
from .textview import TextView
from .wysiwyg import PageView

__all__ = [
    "TextData",
    "TextView",
    "PageView",
    "EmbeddedObject",
    "OBJECT_CHAR",
    "Mark",
    "MarkSet",
    "LEFT",
    "RIGHT",
    "Style",
    "StyleSpan",
    "STANDARD_STYLES",
    "style_named",
    "effective_styles",
]
