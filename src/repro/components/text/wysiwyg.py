"""The paper-based (WYSIWYG) text view (paper section 2).

"In this case we plan on providing a full WYSIWYG text view.  This
paper-based text view will be designed to use the same text data
object.  The user of the system will be able to choose to use either
view or perhaps have one window using the normal text view and the
other using the WYSIWYG text view.  Again changes made in one window
will automatically be reflected in the other window."

:class:`PageView` is that second view type: it formats the *same*
:class:`~repro.components.text.textdata.TextData` into fixed-size pages
with margins and page rules, entirely independent of the editing view's
wrap.  It is read-only (a proofing view) but fully live: it observes
the data object, so edits made through a TextView in another window
re-paginate here automatically — the experiment-E3 "two different types
of views displaying information contained in the one data object" case.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...core.view import View
from ...graphics.geometry import Rect
from ...graphics.graphic import Graphic
from ..scrollbar import Scrollable
from .textdata import OBJECT_CHAR, TextData

__all__ = ["PageView"]

PAGE_TEXT_WIDTH = 56
PAGE_TEXT_HEIGHT = 16
MARGIN = 2


class _Page:
    """One formatted page: a list of text rows."""

    __slots__ = ("rows", "number")

    def __init__(self, number: int) -> None:
        self.rows: List[str] = []
        self.number = number


class PageView(View, Scrollable):
    """Proof view: the buffer formatted as printed pages."""

    atk_name = "pageview"

    def __init__(self, dataobject: Optional[TextData] = None) -> None:
        super().__init__(dataobject)
        self._pages: List[_Page] = []
        self._top = 0  # first visible row across the page stack

    @property
    def data(self) -> Optional[TextData]:
        return self.dataobject

    def on_data_changed(self, change) -> None:
        self._needs_layout = True
        self.want_update()

    # -- pagination -------------------------------------------------------

    def paginate(self) -> List[_Page]:
        """Format the buffer into pages (word wrap, centered headings)."""
        pages: List[_Page] = []
        if self.data is None:
            return pages

        page = _Page(1)
        pages.append(page)

        def new_row(text: str) -> None:
            nonlocal page
            if len(page.rows) >= PAGE_TEXT_HEIGHT:
                page = _Page(page.number + 1)
                pages.append(page)
            page.rows.append(text)

        for paragraph in self.data.text().split("\n"):
            paragraph = paragraph.replace(OBJECT_CHAR, "[embedded object]")
            if not paragraph:
                new_row("")
                continue
            words = paragraph.split(" ")
            line = ""
            for word in words:
                candidate = f"{line} {word}".strip()
                if len(candidate) > PAGE_TEXT_WIDTH and line:
                    new_row(line)
                    line = word
                else:
                    line = candidate
            if line:
                new_row(line)
        return pages

    def layout(self) -> None:
        self._pages = self.paginate()

    # -- Scrollable ----------------------------------------------------------

    def _page_display_height(self) -> int:
        return PAGE_TEXT_HEIGHT + 2 * MARGIN + 1  # rule between pages

    def scroll_total(self) -> int:
        self.ensure_layout()
        return len(self._pages) * self._page_display_height()

    def scroll_pos(self) -> int:
        return self._top

    def scroll_visible(self) -> int:
        return self.height

    def apply_scroll_pos(self, pos: int) -> None:
        self._top = pos

    # -- drawing ----------------------------------------------------------------

    def draw(self, graphic: Graphic) -> None:
        self.ensure_layout()
        page_h = self._page_display_height()
        y = -self._top
        page_width = min(self.width, PAGE_TEXT_WIDTH + 2 * MARGIN)
        for page in self._pages:
            if y + page_h > 0 and y < self.height:
                frame = Rect(0, y, page_width, page_h - 1)
                graphic.draw_rect(frame)
                graphic.draw_string(
                    page_width - MARGIN - 6, y + page_h - 2,
                    f"- {page.number} -",
                )
                for row, text in enumerate(page.rows):
                    graphic.draw_string(MARGIN, y + MARGIN + row, text)
            y += page_h
            if y >= self.height:
                break

    def page_count(self) -> int:
        self.ensure_layout()
        return len(self._pages)

    def desired_size(self, width: int, height: int) -> Tuple[int, int]:
        return (
            min(width, PAGE_TEXT_WIDTH + 2 * MARGIN),
            min(height, self._page_display_height()),
        )
