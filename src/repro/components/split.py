"""SplitView: two children side by side (or stacked) with a draggable
divider.

The application windows of Figures 2 and 3 are built from these: the
messages window is a vertical split (folders | a horizontal split of
captions over the message body).  The divider uses the same enlarged
grab zone and cursor-override machinery as the frame (§3).
"""

from __future__ import annotations

from typing import Optional

from ..core.view import View
from ..graphics.geometry import Point, Rect
from ..graphics.graphic import Graphic
from ..wm.base import Cursor, HORIZONTAL_BARS
from ..wm.events import MouseAction, MouseEvent

__all__ = ["SplitView"]

GRAB_SLOP = 1


class SplitView(View):
    """Splits its rectangle between ``first`` and ``second``.

    ``vertical=True`` puts them left|right; ``False`` stacks them
    top/bottom.  ``ratio`` is the first child's share in percent.
    """

    atk_name = "splitview"

    def __init__(self, first: Optional[View] = None,
                 second: Optional[View] = None,
                 vertical: bool = True, ratio: int = 50) -> None:
        super().__init__()
        self.vertical = vertical
        self.ratio = max(5, min(95, ratio))
        self.first: Optional[View] = None
        self.second: Optional[View] = None
        self._dragging = False
        if first is not None:
            self.set_first(first)
        if second is not None:
            self.set_second(second)

    def set_first(self, view: View) -> None:
        if self.first is not None:
            self.remove_child(self.first)
        self.first = view
        self.add_child(view)
        self._needs_layout = True

    def set_second(self, view: View) -> None:
        if self.second is not None:
            self.remove_child(self.second)
        self.second = view
        self.add_child(view)
        self._needs_layout = True

    def initial_focus(self):
        target = self.second if self.second is not None else self.first
        return target.initial_focus() if target is not None else self

    # -- geometry -------------------------------------------------------------

    @property
    def divider_pos(self) -> int:
        """Column (vertical) or row (horizontal) of the divider line."""
        extent = self.width if self.vertical else self.height
        return max(1, min(extent - 2, extent * self.ratio // 100))

    def layout(self) -> None:
        if self.width < 3 or self.height < 3:
            return
        divider = self.divider_pos
        if self.vertical:
            first_rect = Rect(0, 0, divider, self.height)
            second_rect = Rect(
                divider + 1, 0, self.width - divider - 1, self.height
            )
        else:
            first_rect = Rect(0, 0, self.width, divider)
            second_rect = Rect(
                0, divider + 1, self.width, self.height - divider - 1
            )
        if self.first is not None:
            self.first.set_bounds(first_rect)
        if self.second is not None:
            self.second.set_bounds(second_rect)

    def near_divider(self, point: Point) -> bool:
        axis = point.x if self.vertical else point.y
        return abs(axis - self.divider_pos) <= GRAB_SLOP

    # -- drawing ----------------------------------------------------------------

    def draw(self, graphic: Graphic) -> None:
        divider = self.divider_pos
        if self.vertical:
            graphic.draw_vline(divider, 0, self.height - 1)
        else:
            graphic.draw_hline(0, self.width - 1, divider)

    # -- routing: same parental claim as the frame (§3) ------------------------

    def route_mouse(self, event: MouseEvent) -> Optional[View]:
        if self.near_divider(event.point) or self._dragging:
            return None
        return self.child_at(event.point)

    def handle_mouse(self, event: MouseEvent) -> bool:
        if event.action == MouseAction.DOWN and self.near_divider(event.point):
            self._dragging = True
            return True
        if event.action == MouseAction.DRAG and self._dragging:
            self._drag_to(event.point)
            return True
        if event.action == MouseAction.UP and self._dragging:
            self._drag_to(event.point)
            self._dragging = False
            return True
        return False

    def _drag_to(self, point: Point) -> None:
        extent = self.width if self.vertical else self.height
        if extent <= 0:
            return
        axis = point.x if self.vertical else point.y
        self.ratio = max(5, min(95, axis * 100 // extent))
        self._needs_layout = True
        self.want_update()

    def cursor_for(self, point: Point) -> Optional[Cursor]:
        if self.near_divider(point):
            return Cursor(HORIZONTAL_BARS)
        return None
