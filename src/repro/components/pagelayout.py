r"""Page layout: the section-2 PageMaker scenario.

"A system like Aldus' PageMaker(TM) could be built under the Andrew
Toolkit by allowing the user to specify a set of views and their
placement on a page.  Some of those views (for example, the text views)
would be examining different sections of the same data object."

:class:`PageLayoutData` stores a page's *placements*: a rectangle, a
component data object, a view type, and (for text) an optional buffer
section.  :class:`PageLayoutView` realizes each placement as a child
view — text placements get a region-restricted
:class:`~repro.components.text.textview.TextView`, so two frames can
flow different sections of one story, and editing the story updates
every frame.

External representation body::

    @page <w> <h>
    @place <x> <y> <w> <h> <viewtype> [<region-start> <region-end>]
    \begindata{...}...\enddata{...}
    \view{<viewtype>, <id>}

Placements referring to the *same* data object write it once and
reference it by id thereafter — exercising the datastream's id
semantics beyond simple containment.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..class_system.dynamic import load_class
from ..class_system.errors import DynamicLoadError
from ..core.dataobject import DataObject
from ..core.datastream import (
    BeginObject,
    BodyLine,
    DataStreamError,
    EndObject,
    ViewRef,
)
from ..core.view import View
from ..graphics.geometry import Rect
from ..graphics.graphic import Graphic

__all__ = ["Placement", "PageLayoutData", "PageLayoutView"]


class Placement:
    """One framed view on the page."""

    __slots__ = ("rect", "data", "view_type", "region")

    def __init__(self, rect: Rect, data: DataObject, view_type: str,
                 region: Optional[Tuple[int, int]] = None) -> None:
        self.rect = rect
        self.data = data
        self.view_type = view_type
        self.region = region

    def __repr__(self) -> str:
        return (
            f"Placement({tuple(self.rect)}, {self.data.type_tag}, "
            f"{self.view_type!r}, region={self.region})"
        )


class PageLayoutData(DataObject):
    """A page: an ordered list of placements."""

    atk_name = "pagelayout"

    def __init__(self, width: int = 80, height: int = 40) -> None:
        super().__init__()
        self.page_width = width
        self.page_height = height
        self.placements: List[Placement] = []

    def place(self, rect: Rect, data: DataObject,
              view_type: Optional[str] = None,
              region: Optional[Tuple[int, int]] = None) -> Placement:
        """Add a frame showing ``data`` (optionally a text section)."""
        placement = Placement(
            rect, data, view_type or f"{data.type_tag}view", region
        )
        self.placements.append(placement)
        self.changed("placement", detail=placement)
        return placement

    def remove(self, placement: Placement) -> None:
        if placement in self.placements:
            self.placements.remove(placement)
            self.changed("placement", detail=placement)

    def move(self, placement: Placement, rect: Rect) -> None:
        placement.rect = rect
        self.changed("placement", detail=placement)

    def embedded_objects(self) -> List[DataObject]:
        seen: List[DataObject] = []
        for placement in self.placements:
            if placement.data not in seen:
                seen.append(placement.data)
        return seen

    # -- external representation ------------------------------------------

    def write_body(self, writer) -> None:
        writer.write_body_line(
            f"@page {self.page_width} {self.page_height}"
        )
        for placement in self.placements:
            r = placement.rect
            region = (
                f" {placement.region[0]} {placement.region[1]}"
                if placement.region is not None else ""
            )
            writer.write_body_line(
                f"@place {r.left} {r.top} {r.width} {r.height} "
                f"{placement.view_type}{region}"
            )
            if not writer.is_written(placement.data):
                writer.write_object(placement.data)
            writer.write_view_ref(
                placement.view_type, writer.id_for(placement.data)
            )

    def read_body(self, reader) -> None:
        self.placements = []
        pending: Optional[Tuple[Rect, str, Optional[Tuple[int, int]]]] = None
        for event in reader.body_events():
            if isinstance(event, BodyLine):
                text = event.text
                if not text.strip():
                    continue
                parts = text.split()
                if parts[0] == "@page":
                    self.page_width, self.page_height = (
                        int(parts[1]), int(parts[2])
                    )
                elif parts[0] == "@place":
                    rect = Rect(*map(int, parts[1:5]))
                    view_type = parts[5]
                    region = (
                        (int(parts[6]), int(parts[7]))
                        if len(parts) >= 8 else None
                    )
                    pending = (rect, view_type, region)
                else:
                    raise DataStreamError(
                        f"unknown pagelayout directive {text!r}", event.line
                    )
            elif isinstance(event, BeginObject):
                reader.read_object(event)
            elif isinstance(event, ViewRef):
                if pending is None:
                    raise DataStreamError(
                        "\\view without @place in pagelayout", event.line
                    )
                data = reader.objects_by_id.get(event.object_id)
                if data is None:
                    raise DataStreamError(
                        f"unknown object id {event.object_id}", event.line
                    )
                rect, view_type, region = pending
                self.placements.append(
                    Placement(rect, data, view_type, region)
                )
                pending = None
            elif isinstance(event, EndObject):
                break
        self.changed("placement")


class PageLayoutView(View):
    """Realizes a page's placements as live child views."""

    atk_name = "pagelayoutview"

    def __init__(self, dataobject: Optional[PageLayoutData] = None) -> None:
        super().__init__()
        self._frames: Dict[int, View] = {}
        if dataobject is not None:
            self.set_dataobject(dataobject)

    @property
    def data(self) -> Optional[PageLayoutData]:
        return self.dataobject

    def on_data_changed(self, change) -> None:
        self._needs_layout = True
        self.want_update()

    def view_for(self, placement: Placement) -> Optional[View]:
        self.ensure_layout()
        return self._frames.get(id(placement))

    def layout(self) -> None:
        if self.data is None:
            return
        live = set()
        for placement in self.data.placements:
            live.add(id(placement))
            view = self._frames.get(id(placement))
            if view is None:
                try:
                    cls = load_class(placement.view_type)
                except DynamicLoadError:
                    from .text.textview import _UnknownComponentView

                    cls = _UnknownComponentView
                view = cls(placement.data)
                if placement.region is not None and hasattr(view, "set_region"):
                    view.set_region(*placement.region)
                self._frames[id(placement)] = view
                self.add_child(view)
            view.set_bounds(
                placement.rect.intersection(self.local_bounds)
            )
        for key, view in list(self._frames.items()):
            if key not in live:
                self.remove_child(view)
                del self._frames[key]

    def draw(self, graphic: Graphic) -> None:
        if self.data is None:
            return
        # Frame rules around each placement, PageMaker style.
        for placement in self.data.placements:
            graphic.draw_rect(placement.rect.inset(-1, -1))
