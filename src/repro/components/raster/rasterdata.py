r"""The raster data object: an editable 1-bit image.

Wraps a :class:`~repro.graphics.image.Bitmap` with the mutation and
observer discipline of a data object, plus the image operations the
original raster component offered (invert, crop, scale).

External representation follows the paper's own §5 advice for rasters:
"the raster format could make sure the bits representing a new row
always begin on a new line."  Body format::

    @size <width> <height>
    r <row pixels as . and *>
    + <continuation of the same row, for rows wider than the 80-col limit>
"""

from __future__ import annotations

from typing import List

from ...core.dataobject import DataObject
from ...core.datastream import BodyLine, DataStreamError, EndObject
from ...graphics.geometry import Rect
from ...graphics.image import Bitmap

__all__ = ["RasterData", "encode_rows", "decode_rows"]

_CHUNK = 72
_INK = "*"
_BLANK = "."


def encode_rows(bitmap: Bitmap) -> List[str]:
    """Encode a bitmap as body lines (``r``/``+`` row chunking)."""
    lines: List[str] = []
    for row in bitmap.to_rows(ink=_INK, blank=_BLANK):
        marker = "r"
        while True:
            chunk, row = row[:_CHUNK], row[_CHUNK:]
            lines.append(f"{marker} {chunk}")
            marker = "+"
            if not row:
                break
    return lines


def decode_rows(lines: List[str], width: int, height: int) -> Bitmap:
    """Inverse of :func:`encode_rows`."""
    rows: List[str] = []
    for line in lines:
        if line.startswith("r "):
            rows.append(line[2:])
        elif line.startswith("+ "):
            if not rows:
                raise DataStreamError("raster continuation before any row")
            rows[-1] += line[2:]
        else:
            raise DataStreamError(f"bad raster row line {line!r}")
    bitmap = Bitmap.from_rows(rows, ink=_INK)
    if bitmap.width != width or bitmap.height != height:
        # Pad/crop to the declared size (trailing blank pixels are legal).
        fixed = Bitmap(width, height)
        fixed.blit(bitmap, 0, 0, mode="copy")
        return fixed
    return bitmap


class RasterData(DataObject):
    """A 1-bit image as a toolkit component."""

    atk_name = "raster"

    def __init__(self, width: int = 16, height: int = 8) -> None:
        super().__init__()
        self.bitmap = Bitmap(width, height)

    @classmethod
    def from_bitmap(cls, bitmap: Bitmap) -> "RasterData":
        data = cls(bitmap.width, bitmap.height)
        data.bitmap = bitmap.copy()
        return data

    @classmethod
    def from_rows(cls, rows: List[str], ink: str = "*") -> "RasterData":
        return cls.from_bitmap(Bitmap.from_rows(rows, ink=ink))

    @property
    def width(self) -> int:
        return self.bitmap.width

    @property
    def height(self) -> int:
        return self.bitmap.height

    # -- mutations -------------------------------------------------------

    def set_pixel(self, x: int, y: int, value: int = 1) -> None:
        self.bitmap.set(x, y, value)
        self.changed("pixels", where=(x, y), extent=1)

    def toggle_pixel(self, x: int, y: int) -> None:
        self.bitmap.set(x, y, 0 if self.bitmap.get(x, y) else 1)
        self.changed("pixels", where=(x, y), extent=1)

    def invert(self) -> None:
        self.bitmap.invert()
        self.changed("pixels")

    def fill_rect(self, rect: Rect, value: int = 1) -> None:
        self.bitmap.fill_rect(rect, value)
        self.changed("pixels", where=(rect.left, rect.top))

    def crop(self, rect: Rect) -> None:
        self.bitmap = self.bitmap.crop(rect)
        self.changed("size")

    def scale(self, width: int, height: int) -> None:
        self.bitmap = self.bitmap.scaled(width, height)
        self.changed("size")

    def replace_bitmap(self, bitmap: Bitmap) -> None:
        self.bitmap = bitmap
        self.changed("size")

    # -- external representation ----------------------------------------

    def write_body(self, writer) -> None:
        writer.write_body_line(f"@size {self.width} {self.height}")
        for line in encode_rows(self.bitmap):
            writer.write_body_line(line)

    def read_body(self, reader) -> None:
        width = height = 0
        row_lines: List[str] = []
        for event in reader.body_events():
            if isinstance(event, BodyLine):
                text = event.text
                if not text.strip():
                    continue
                if text.startswith("@size "):
                    parts = text.split()
                    width, height = int(parts[1]), int(parts[2])
                elif text.startswith(("r ", "+ ")) or text in ("r", "+"):
                    row_lines.append(text if " " in text else text + " ")
                else:
                    raise DataStreamError(
                        f"unknown raster directive {text!r}", event.line
                    )
            elif isinstance(event, EndObject):
                break
        self.bitmap = decode_rows(row_lines, width, height)
        self.changed("size")

    def __repr__(self) -> str:
        return f"<raster {self.width}x{self.height}>"
