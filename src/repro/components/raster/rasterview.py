"""The raster view: displays and pokes at a RasterData.

Clicking toggles the pixel under the mouse (the original raster editor
in miniature); the Raster menu card carries whole-image operations.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ...core.view import View
from ...graphics.graphic import Graphic
from ...wm.events import MouseAction, MouseEvent
from .rasterdata import RasterData

__all__ = ["RasterView"]


class RasterView(View):
    """Direct view of the bitmap, 1 pixel per device unit."""

    atk_name = "rasterview"

    def __init__(self, dataobject: Optional[RasterData] = None,
                 editable: bool = True) -> None:
        super().__init__(dataobject)
        self.editable = editable
        self._build_menus()

    @property
    def data(self) -> Optional[RasterData]:
        return self.dataobject

    def desired_size(self, width: int, height: int) -> Tuple[int, int]:
        if self.data is None:
            return (min(width, 8), min(height, 4))
        return (min(width, self.data.width), min(height, self.data.height))

    def draw(self, graphic: Graphic) -> None:
        if self.data is not None:
            graphic.draw_bitmap(self.data.bitmap, 0, 0)

    def handle_mouse(self, event: MouseEvent) -> bool:
        if self.data is None:
            return False
        if event.action == MouseAction.DOWN and self.editable:
            x, y = event.point.x, event.point.y
            if 0 <= x < self.data.width and 0 <= y < self.data.height:
                self.data.toggle_pixel(x, y)
            self.want_input_focus()
            return True
        return event.action in (MouseAction.DRAG, MouseAction.UP)

    def _build_menus(self) -> None:
        card = self.menu_card("Raster")
        card.add("Invert", lambda v, e: self.data and self.data.invert())
        card.add(
            "Double Size",
            lambda v, e: self.data and self.data.scale(
                self.data.width * 2, self.data.height * 2
            ),
        )
        card.add(
            "Halve Size",
            lambda v, e: self.data and self.data.scale(
                max(1, self.data.width // 2), max(1, self.data.height // 2)
            ),
        )
