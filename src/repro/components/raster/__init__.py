"""The raster component: 1-bit images as embeddable documents."""

from .rasterdata import RasterData, decode_rows, encode_rows
from .rasterview import RasterView

__all__ = ["RasterData", "RasterView", "encode_rows", "decode_rows"]
