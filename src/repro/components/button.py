"""Button: a pressable labelled view.

One of the paper's "usual set of simple components".  A button is a
view without a data object: its label and callback are transient UI
state.  Pressing flashes the button (transfer-mode inversion) and
invokes the callback on release *inside* the button — releasing
elsewhere cancels, the standard button interaction.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from ..core.view import View
from ..graphics.fontdesc import FontDesc
from ..graphics.graphic import Graphic
from ..wm.events import MouseAction, MouseEvent

__all__ = ["Button"]


class Button(View):
    """A click target with a text label."""

    atk_name = "button"

    def __init__(self, label: str = "button",
                 on_press: Optional[Callable[["Button"], None]] = None,
                 font: FontDesc = None) -> None:
        super().__init__()
        self.label = label
        self.on_press = on_press
        self.font = font if font is not None else FontDesc("andy", 12)
        self.pressed = False
        self.press_count = 0

    def set_label(self, label: str) -> None:
        if label != self.label:
            self.label = label
            self.want_update()

    def desired_size(self, width: int, height: int) -> Tuple[int, int]:
        im = self.interaction_manager()
        if im is not None:
            metrics = im.window_system.font_metrics(self.font)
            return (
                min(width, metrics.string_width(self.label) + 4 * metrics.char_width),
                min(height, metrics.height + 2),
            )
        return (min(width, len(self.label) + 4), min(height, 1))

    def draw(self, graphic: Graphic) -> None:
        graphic.set_font(self.font)
        bounds = self.local_bounds
        if bounds.height >= 3:
            graphic.draw_rect(bounds)
            graphic.draw_string_centered(bounds, self.label)
        else:
            graphic.draw_string_centered(bounds, f"[{self.label}]")
        if self.pressed:
            graphic.invert_rect(bounds)

    # -- interaction ---------------------------------------------------

    def handle_mouse(self, event: MouseEvent) -> bool:
        inside = self.local_bounds.contains_point(event.point)
        if event.action == MouseAction.DOWN and inside:
            self._set_pressed(True)
            return True
        if event.action in (MouseAction.DRAG, MouseAction.MOVE):
            if self.pressed != inside:
                self._set_pressed(inside)
            return True
        if event.action == MouseAction.UP:
            fired = self.pressed and inside
            self._set_pressed(False)
            if fired:
                self.press_count += 1
                if self.on_press is not None:
                    self.on_press(self)
            return True
        return False

    def _set_pressed(self, pressed: bool) -> None:
        if pressed != self.pressed:
            self.pressed = pressed
            self.want_update()
