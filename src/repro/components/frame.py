"""Frame and message line (paper section 3, Figure 1).

"The text view is surrounded by a scroll bar, which is surrounded by a
frame.  The frame provides a message line view."  And later: "The frame
physically divides its image into two areas separated by a thin line.
In order to allow the user to easily drag that line, the frame
allocates a slightly larger area to accept mouse events.  That area
overlaps the space allocated to the frame's children."

:class:`Frame` reproduces exactly that: a body view on top, a divider
row, and a :class:`MessageLine` at the bottom.  Its
:meth:`Frame.route_mouse` claims events within ``GRAB_SLOP`` rows of
the divider *even though they lie over the children* — the canonical
demonstration of parental authority over geometric routing (experiment
E13 measures it against a geometric baseline).  The frame, "in
conjunction with the message line, also provides a dialog box
facility": :meth:`Frame.ask` prompts in the message line and reads a
queued reply.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from ..core.view import View
from ..graphics.geometry import Point, Rect
from ..graphics.graphic import Graphic
from ..wm.base import Cursor, HORIZONTAL_BARS
from ..wm.events import KeyEvent, MouseAction, MouseEvent

__all__ = ["Frame", "MessageLine", "GRAB_SLOP"]

#: Extra rows on each side of the divider that the frame claims (§3).
GRAB_SLOP = 1


class MessageLine(View):
    """The frame's bottom strip: transient messages and dialog prompts."""

    atk_name = "messageline"

    def __init__(self) -> None:
        super().__init__()
        self.message = ""
        self.prompt = ""
        self.input_buffer = ""
        self._collecting = False
        self._on_answer: Optional[Callable[[str], None]] = None

    def post(self, message: str) -> None:
        """Show ``message`` (replacing any previous one)."""
        self.message = message
        self.want_update()

    def clear(self) -> None:
        self.post("")

    def begin_prompt(self, prompt: str,
                     on_answer: Callable[[str], None]) -> None:
        """Start collecting a line of input after ``prompt``."""
        self.prompt = prompt
        self.input_buffer = ""
        self._collecting = True
        self._on_answer = on_answer
        self.want_input_focus()
        self.want_update()

    @property
    def collecting(self) -> bool:
        return self._collecting

    def handle_key(self, event: KeyEvent) -> bool:
        if not self._collecting:
            return super().handle_key(event)
        if event.char == "Return":
            answer = self.input_buffer
            callback = self._on_answer
            self.prompt = ""
            self.input_buffer = ""
            self._collecting = False
            self._on_answer = None
            self.want_update()
            if callback is not None:
                callback(answer)
            return True
        if event.char == "Backspace":
            self.input_buffer = self.input_buffer[:-1]
            self.want_update()
            return True
        if event.is_printable:
            self.input_buffer += event.char
            self.want_update()
            return True
        return True  # swallow everything else while collecting

    def draw(self, graphic: Graphic) -> None:
        if self._collecting:
            graphic.draw_string(0, 0, f"{self.prompt}{self.input_buffer}_")
        else:
            graphic.draw_string(0, 0, self.message)


class Frame(View):
    """Body + divider + message line, with a draggable divider."""

    atk_name = "frame"

    def __init__(self, body: Optional[View] = None,
                 message_rows: int = 1) -> None:
        super().__init__()
        self.body: Optional[View] = None
        self.message_line = MessageLine()
        self.add_child(self.message_line)
        self.message_rows = max(1, message_rows)
        self._dragging_divider = False
        self.divider_grabs = 0           # E13 reads this
        self._queued_answers: Deque[str] = deque()
        if body is not None:
            self.set_body(body)

    def set_body(self, body: View) -> None:
        if self.body is not None:
            self.remove_child(self.body)
        self.body = body
        self.add_child(body)
        self._needs_layout = True

    def initial_focus(self):
        if self.message_line.collecting:
            return self.message_line
        return self.body.initial_focus() if self.body is not None else self

    # -- geometry -------------------------------------------------------------

    @property
    def divider_row(self) -> int:
        """The row the divider line occupies (frame coordinates)."""
        return max(0, self.height - self.message_rows - 1)

    def _clamp_message_rows(self) -> None:
        self.message_rows = max(1, min(self.message_rows, self.height - 2))

    def layout(self) -> None:
        if self.height < 3 or self.width <= 0:
            return
        self._clamp_message_rows()
        divider = self.divider_row
        if self.body is not None:
            self.body.set_bounds(Rect(0, 0, self.width, divider))
        self.message_line.set_bounds(
            Rect(0, divider + 1, self.width, self.message_rows)
        )

    def near_divider(self, point: Point) -> bool:
        """Inside the enlarged grab zone around the divider (§3)."""
        return abs(point.y - self.divider_row) <= GRAB_SLOP

    # -- drawing ----------------------------------------------------------------

    def draw(self, graphic: Graphic) -> None:
        if self.height >= 3:
            graphic.draw_hline(0, self.width - 1, self.divider_row)

    # -- routing: the paper's overlapping grab zone (§3) -----------------------

    def route_mouse(self, event: MouseEvent) -> Optional[View]:
        if self.near_divider(event.point) or self._dragging_divider:
            return None  # claim it, even though it overlaps the children
        return self.child_at(event.point)

    def handle_mouse(self, event: MouseEvent) -> bool:
        if event.action == MouseAction.DOWN and self.near_divider(event.point):
            self._dragging_divider = True
            self.divider_grabs += 1
            return True
        if event.action == MouseAction.DRAG and self._dragging_divider:
            self._move_divider_to(event.point.y)
            return True
        if event.action == MouseAction.UP and self._dragging_divider:
            self._move_divider_to(event.point.y)
            self._dragging_divider = False
            return True
        return False

    def _move_divider_to(self, row: int) -> None:
        """Reposition the divider, i.e. resize the message area."""
        rows = self.height - row - 1
        new_rows = max(1, min(rows, self.height - 2))
        if new_rows != self.message_rows:
            self.message_rows = new_rows
            self._needs_layout = True
            self.want_update()

    def cursor_for(self, point: Point) -> Optional[Cursor]:
        """Show the adjust cursor over the whole grab zone (§3 cursor
        arbitration: the parent overrides the children)."""
        if self.near_divider(point):
            return Cursor(HORIZONTAL_BARS)
        return None

    # -- messages & dialogs -------------------------------------------------------

    def post_message(self, message: str) -> None:
        self.message_line.post(message)

    def queue_answer(self, answer: str) -> None:
        """Pre-load a reply for the next :meth:`ask` (synthetic input)."""
        self._queued_answers.append(answer)

    def ask(self, prompt: str,
            on_answer: Optional[Callable[[str], None]] = None) -> Optional[str]:
        """The dialog facility (§3 footnote).

        If a reply was queued, it is consumed and returned immediately
        (and ``on_answer`` called).  Otherwise the message line starts
        collecting keyboard input and the eventual answer goes to
        ``on_answer``; returns None in that case.
        """
        if self._queued_answers:
            answer = self._queued_answers.popleft()
            if on_answer is not None:
                on_answer(answer)
            return answer
        self.message_line.begin_prompt(
            prompt, on_answer if on_answer is not None else lambda a: None
        )
        return None
