r"""Box-and-glue layout for equations.

The equation component lays out a small TeX-flavoured language:

* symbol runs: ``v``, ``ij``, ``+``, ``=``, numbers;
* grouping: ``{...}``;
* subscripts/superscripts: ``x_{i,j}``, ``x^2`` (either order, both);
* fractions: ``\frac{num}{den}``;
* radicals: ``\sqrt{...}``;
* big operators: ``\sum``, ``\prod`` (rendered as their ASCII art).

Parsing produces a box tree; every box computes ``(width, height,
baseline)`` and renders itself into a character grid, which the
equation view then draws through the ordinary drawable.  The Figure-5
Pascal's-triangle recurrences are the acceptance test:
``v_{i,j} = v_{i-1,j} + v_{i,j-1}``.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["EquationSyntaxError", "Box", "parse_equation", "render_equation"]


class EquationSyntaxError(ValueError):
    """Malformed equation source."""


# ---------------------------------------------------------------------------
# Boxes
# ---------------------------------------------------------------------------

class Box:
    """A laid-out equation element.

    ``baseline`` is the row (0-based from the top of the box) that
    aligns with sibling boxes' baselines.
    """

    width = 0
    height = 1
    baseline = 0

    def paint(self, grid: "Grid", x: int, y: int) -> None:
        """Render with the box's top-left at (x, y)."""
        raise NotImplementedError


class Grid:
    """A character grid the boxes render into."""

    def __init__(self, width: int, height: int) -> None:
        self.width = width
        self.height = height
        self.rows = [[" "] * width for _ in range(height)]

    def put(self, x: int, y: int, text: str) -> None:
        for i, char in enumerate(text):
            if 0 <= y < self.height and 0 <= x + i < self.width:
                self.rows[y][x + i] = char

    def lines(self) -> List[str]:
        return ["".join(row) for row in self.rows]


class SymbolBox(Box):
    def __init__(self, text: str) -> None:
        self.text = text
        self.width = len(text)
        self.height = 1
        self.baseline = 0

    def paint(self, grid: Grid, x: int, y: int) -> None:
        grid.put(x, y, self.text)


class RowBox(Box):
    """Horizontal concatenation with baseline alignment."""

    def __init__(self, children: List[Box]) -> None:
        self.children = children
        above = max((c.baseline for c in children), default=0)
        below = max((c.height - c.baseline for c in children), default=1)
        self.baseline = above
        self.height = above + below
        self.width = sum(c.width for c in children)

    def paint(self, grid: Grid, x: int, y: int) -> None:
        cursor = x
        for child in self.children:
            child.paint(grid, cursor, y + self.baseline - child.baseline)
            cursor += child.width


class ScriptBox(Box):
    """A nucleus with optional superscript and subscript."""

    def __init__(self, nucleus: Box, sup: Optional[Box], sub: Optional[Box]):
        self.nucleus = nucleus
        self.sup = sup
        self.sub = sub
        script_width = max(sup.width if sup else 0, sub.width if sub else 0)
        self.width = nucleus.width + script_width
        sup_rows = sup.height if sup else 0
        sub_rows = sub.height if sub else 0
        self.baseline = nucleus.baseline + sup_rows
        self.height = sup_rows + nucleus.height + sub_rows

    def paint(self, grid: Grid, x: int, y: int) -> None:
        sup_rows = self.sup.height if self.sup else 0
        if self.sup is not None:
            grid_y = y
            self.sup.paint(grid, x + self.nucleus.width, grid_y)
        self.nucleus.paint(grid, x, y + sup_rows)
        if self.sub is not None:
            self.sub.paint(
                grid, x + self.nucleus.width, y + sup_rows + self.nucleus.height
            )


class FracBox(Box):
    def __init__(self, numerator: Box, denominator: Box) -> None:
        self.numerator = numerator
        self.denominator = denominator
        self.width = max(numerator.width, denominator.width) + 2
        self.height = numerator.height + 1 + denominator.height
        self.baseline = numerator.height  # the rule row

    def paint(self, grid: Grid, x: int, y: int) -> None:
        num_x = x + (self.width - self.numerator.width) // 2
        self.numerator.paint(grid, num_x, y)
        grid.put(x, y + self.numerator.height, "-" * self.width)
        den_x = x + (self.width - self.denominator.width) // 2
        self.denominator.paint(
            grid, den_x, y + self.numerator.height + 1
        )


class SqrtBox(Box):
    def __init__(self, radicand: Box) -> None:
        self.radicand = radicand
        self.width = radicand.width + 2
        self.height = radicand.height + 1
        self.baseline = radicand.baseline + 1

    def paint(self, grid: Grid, x: int, y: int) -> None:
        grid.put(x, y + self.height - 1, "V")
        grid.put(x + 1, y, "_" * (self.width - 1))
        for row in range(1, self.height):
            grid.put(x + 1, y + row, "|")
        self.radicand.paint(grid, x + 2, y + 1)


class BigOpBox(Box):
    """A display-size operator (sum, product)."""

    ART = {
        "sum": ["___", "\\  ", "/__"],
        "prod": ["___", "| |", "| |"],
    }

    def __init__(self, name: str) -> None:
        art = self.ART.get(name)
        if art is None:
            raise EquationSyntaxError(f"unknown big operator {name!r}")
        self.art = art
        self.width = max(len(row) for row in art)
        self.height = len(art)
        self.baseline = self.height // 2

    def paint(self, grid: Grid, x: int, y: int) -> None:
        for row, text in enumerate(self.art):
            grid.put(x, y + row, text)


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

#: Greek commands rendered as transliterations on the cell device.
_GREEK = {
    "alpha": "alpha", "beta": "beta", "gamma": "gamma", "delta": "delta",
    "pi": "pi", "sigma": "sigma", "theta": "theta", "lambda": "lambda",
    "mu": "mu", "epsilon": "eps", "infty": "oo",
}

_SYMBOL_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
    ",.!?'"
)
_OPERATORS = set("+-=<>*/|")


class _Parser:
    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0

    def peek(self) -> Optional[str]:
        return self.source[self.pos] if self.pos < len(self.source) else None

    def parse_sequence(self, stop: Optional[str] = None) -> Box:
        children: List[Box] = []
        while True:
            char = self.peek()
            if char is None or char == stop:
                break
            children.append(self.parse_scripted())
        if len(children) == 1:
            return children[0]
        return RowBox(children)

    def parse_scripted(self) -> Box:
        nucleus = self.parse_atom()
        sup: Optional[Box] = None
        sub: Optional[Box] = None
        while self.peek() in ("_", "^"):
            marker = self.source[self.pos]
            self.pos += 1
            script = self.parse_atom()
            if marker == "_":
                if sub is not None:
                    raise EquationSyntaxError("double subscript")
                sub = script
            else:
                if sup is not None:
                    raise EquationSyntaxError("double superscript")
                sup = script
        if sup is None and sub is None:
            return nucleus
        return ScriptBox(nucleus, sup, sub)

    def parse_atom(self) -> Box:
        char = self.peek()
        if char is None:
            raise EquationSyntaxError("unexpected end of equation")
        if char == "{":
            self.pos += 1
            box = self.parse_sequence(stop="}")
            if self.peek() != "}":
                raise EquationSyntaxError("unbalanced '{'")
            self.pos += 1
            return box
        if char == "}":
            raise EquationSyntaxError("unbalanced '}'")
        if char == "\\":
            return self.parse_command()
        if char == " ":
            self.pos += 1
            return SymbolBox(" ")
        if char in _OPERATORS:
            self.pos += 1
            return SymbolBox(f" {char} " if char in "+-=<>" else char)
        if char in ("(", ")", "[", "]"):
            self.pos += 1
            return SymbolBox(char)
        if char in _SYMBOL_CHARS:
            start = self.pos
            while self.peek() is not None and self.source[self.pos] in _SYMBOL_CHARS:
                self.pos += 1
            return SymbolBox(self.source[start:self.pos])
        raise EquationSyntaxError(f"unexpected character {char!r}")

    def parse_command(self) -> Box:
        assert self.source[self.pos] == "\\"
        self.pos += 1
        start = self.pos
        while self.peek() is not None and self.source[self.pos].isalpha():
            self.pos += 1
        name = self.source[start:self.pos]
        if name == "frac":
            numerator = self.parse_atom()
            denominator = self.parse_atom()
            return FracBox(numerator, denominator)
        if name == "sqrt":
            return SqrtBox(self.parse_atom())
        if name in BigOpBox.ART:
            return BigOpBox(name)
        if name in _GREEK:
            return SymbolBox(_GREEK[name])
        raise EquationSyntaxError(f"unknown command \\{name}")


def parse_equation(source: str) -> Box:
    """Parse equation source into a laid-out box tree."""
    parser = _Parser(source)
    box = parser.parse_sequence()
    if parser.peek() is not None:
        raise EquationSyntaxError(
            f"trailing input at {parser.source[parser.pos:]!r}"
        )
    return box


def render_equation(source: str) -> List[str]:
    """Parse + render to text rows (trailing blanks stripped)."""
    box = parse_equation(source)
    grid = Grid(box.width, box.height)
    box.paint(grid, 0, 0)
    return [line.rstrip() for line in grid.lines()]
