r"""The equation data object.

Holds one or more equation source lines in the little TeX-flavoured
language of :mod:`repro.components.equation.layout`.  The Figure-5
document stores Pascal's-triangle recurrences in one of these, embedded
in a table cell, embedded in text.

External representation body: one ``@eq <source>`` line per equation.
(The source language uses backslash commands; the datastream writer's
leading-backslash escaping keeps marker scanning sound.)
"""

from __future__ import annotations

from typing import List

from ...core.dataobject import DataObject
from ...core.datastream import BodyLine, DataStreamError, EndObject
from .layout import EquationSyntaxError, render_equation

__all__ = ["EquationData"]


class EquationData(DataObject):
    """A list of equation source lines."""

    atk_name = "equation"

    def __init__(self, *equations: str) -> None:
        super().__init__()
        self.equations: List[str] = list(equations)

    def add_equation(self, source: str) -> None:
        """Append an equation; raises on syntax errors immediately so
        bad input never reaches a saved document."""
        render_equation(source)  # validate
        self.equations.append(source)
        self.changed("equation", where=len(self.equations) - 1)

    def set_equation(self, index: int, source: str) -> None:
        render_equation(source)
        self.equations[index] = source
        self.changed("equation", where=index)

    def remove_equation(self, index: int) -> None:
        del self.equations[index]
        self.changed("equation", where=index)

    def rendered(self) -> List[str]:
        """All equations rendered to rows, blank row between them."""
        rows: List[str] = []
        for index, source in enumerate(self.equations):
            if index:
                rows.append("")
            try:
                rows.extend(render_equation(source))
            except EquationSyntaxError as exc:
                rows.append(f"<bad equation: {exc}>")
        return rows

    # -- external representation ----------------------------------------

    def write_body(self, writer) -> None:
        for source in self.equations:
            writer.write_body_line(f"@eq {source}")

    def read_body(self, reader) -> None:
        self.equations = []
        for event in reader.body_events():
            if isinstance(event, BodyLine):
                if not event.text.strip():
                    continue
                if not event.text.startswith("@eq "):
                    raise DataStreamError(
                        f"unknown equation directive {event.text!r}",
                        event.line,
                    )
                self.equations.append(event.text[len("@eq "):])
            elif isinstance(event, EndObject):
                break
        self.changed("equation")
