"""The equation view: draws rendered equation rows.

Read-mostly; editing happens by replacing the source through the data
object (EZ binds a dialog for it).  Like every component view it can be
embedded anywhere, printed by drawable swap, and shown by several
windows at once.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ...core.view import View
from ...graphics.fontdesc import FontDesc
from ...graphics.graphic import Graphic
from .eqdata import EquationData

__all__ = ["EquationView"]


class EquationView(View):
    """Displays an :class:`EquationData`."""

    atk_name = "equationview"

    font = FontDesc("andy", 12, ("fixed",))

    def __init__(self, dataobject: Optional[EquationData] = None) -> None:
        super().__init__(dataobject)

    @property
    def data(self) -> Optional[EquationData]:
        return self.dataobject

    def desired_size(self, width: int, height: int) -> Tuple[int, int]:
        rows = self.data.rendered() if self.data is not None else []
        want_w = max((len(r) for r in rows), default=8)
        im = self.interaction_manager()
        if im is not None:
            metrics = im.window_system.font_metrics(self.font)
            want_w *= metrics.char_width
            want_h = max(1, len(rows)) * metrics.height
        else:
            want_h = max(1, len(rows))
        return (min(width, want_w), min(height, want_h))

    def draw(self, graphic: Graphic) -> None:
        if self.data is None:
            return
        graphic.set_font(self.font)
        line_height = graphic.line_height()
        y = 0
        for row in self.data.rendered():
            if y >= self.height:
                break
            graphic.draw_string(0, y, row)
            y += line_height
