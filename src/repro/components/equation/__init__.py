"""The equation component: TeX-flavoured source, box layout, view."""

from .eqdata import EquationData
from .eqview import EquationView
from .layout import (
    Box,
    EquationSyntaxError,
    parse_equation,
    render_equation,
)

__all__ = [
    "EquationData",
    "EquationView",
    "Box",
    "EquationSyntaxError",
    "parse_equation",
    "render_equation",
]
