"""The style editor extension (paper §1).

Lets a user define and adjust named styles — the attribute bundles the
text component applies to regions — without recompiling anything.
Edits go to the shared ``STANDARD_STYLES`` table, so documents opened
afterwards pick the new definitions up; an :class:`StyleEditorView`
presents the table as an interactive list.
"""

from __future__ import annotations

from typing import List, Optional

from ..components.listview import ListView
from ..components.text.styles import STANDARD_STYLES, Style

__all__ = ["StyleEditor", "StyleEditorView", "describe_style"]


def describe_style(style: Style) -> str:
    """One-line summary: ``heading: bold size+4``."""
    parts: List[str] = []
    if style.bold:
        parts.append("bold")
    if style.italic:
        parts.append("italic")
    if style.fixed:
        parts.append("fixed")
    if style.size_delta:
        parts.append(f"size{style.size_delta:+d}")
    if style.indent:
        parts.append(f"indent={style.indent}")
    if style.centered:
        parts.append("centered")
    attrs = " ".join(parts) if parts else "plain"
    return f"{style.name}: {attrs}"


class StyleEditor:
    """Programmatic interface to the style table."""

    def __init__(self, table: Optional[dict] = None) -> None:
        self.table = table if table is not None else STANDARD_STYLES

    def style_names(self) -> List[str]:
        return sorted(self.table)

    def get(self, name: str) -> Optional[Style]:
        return self.table.get(name)

    def define(self, name: str, **attrs) -> Style:
        """Create or replace a style definition."""
        style = Style(name, **attrs)
        self.table[name] = style
        return style

    def modify(self, name: str, **attrs) -> Style:
        """Adjust attributes of an existing style in place."""
        style = self.table.get(name)
        if style is None:
            raise KeyError(f"no style named {name!r}")
        for attr, value in attrs.items():
            if not hasattr(style, attr):
                raise AttributeError(f"styles have no attribute {attr!r}")
            setattr(style, attr, value)
        return style

    def delete(self, name: str) -> None:
        self.table.pop(name, None)

    def descriptions(self) -> List[str]:
        return [describe_style(self.table[name]) for name in self.style_names()]


class StyleEditorView(ListView):
    """The style table as a selectable list (toggle bold with 'b', etc.)."""

    atk_name = "styleeditorview"

    def __init__(self, editor: Optional[StyleEditor] = None) -> None:
        self.editor = editor if editor is not None else StyleEditor()
        super().__init__(self.editor.descriptions())
        self.keymap.bind("b", lambda v, k: self._toggle("bold"))
        self.keymap.bind("i", lambda v, k: self._toggle("italic"))
        self.keymap.bind("f", lambda v, k: self._toggle("fixed"))
        self.keymap.bind("c", lambda v, k: self._toggle("centered"))
        self.keymap.bind("+", lambda v, k: self._bump_size(2))
        self.keymap.bind("-", lambda v, k: self._bump_size(-2))

    def _selected_style(self) -> Optional[Style]:
        if self.selected is None:
            return None
        name = self.editor.style_names()[self.selected]
        return self.editor.get(name)

    def _refresh(self) -> None:
        selected = self.selected
        self.set_items(self.editor.descriptions())
        self.selected = selected
        self.want_update()

    def _toggle(self, attr: str) -> None:
        style = self._selected_style()
        if style is not None:
            setattr(style, attr, not getattr(style, attr))
            self._refresh()

    def _bump_size(self, delta: int) -> None:
        style = self._selected_style()
        if style is not None:
            style.size_delta += delta
            self._refresh()
