"""The C-language programming component (paper §1, §10).

"The object oriented nature of the system allows programmers to easily
develop new specialize[d] objects out of existing objects such as the C
language component."  CText is the canonical example: a *subclass* of
the text component that understands C — keywords render bold, comments
italic, string literals in the fixed font — plus the editor
conveniences ITC programmers moved from emacs for (§9): auto-indent on
Return and electric closing braces.

The styling is recomputed from the buffer on each change, expressed as
ordinary style spans, so every text view — including the plain one —
renders it with no special cases.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..components.text.styles import Style
from ..components.text.textdata import TextData
from ..components.text.textview import TextView

__all__ = ["CTextData", "CTextView", "C_KEYWORDS", "scan_c_regions"]

C_KEYWORDS = frozenset(
    """auto break case char const continue default do double else enum
    extern float for goto if int long register return short signed sizeof
    static struct switch typedef union unsigned void volatile while""".split()
)

_TOKEN_RE = re.compile(
    r"(?P<comment>/\*.*?\*/|/\*.*$)"
    r"|(?P<string>\"(?:[^\"\\]|\\.)*\")"
    r"|(?P<word>[A-Za-z_][A-Za-z_0-9]*)",
    re.DOTALL,
)

KEYWORD_STYLE = Style("c-keyword", bold=True)
COMMENT_STYLE = Style("c-comment", italic=True)
STRING_STYLE = Style("c-string", fixed=True)


def scan_c_regions(source: str) -> List[Tuple[int, int, Style]]:
    """Find the (start, end, style) spans for C source text."""
    spans: List[Tuple[int, int, Style]] = []
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.search(source, pos)
        if match is None:
            break
        start, end = match.span()
        if match.lastgroup == "comment":
            spans.append((start, end, COMMENT_STYLE))
        elif match.lastgroup == "string":
            spans.append((start, end, STRING_STYLE))
        elif match.group("word") in C_KEYWORDS:
            spans.append((start, end, KEYWORD_STYLE))
        pos = end
    return spans


class CTextData(TextData):
    """Text that keeps itself styled as C source."""

    atk_name = "ctext"

    def __init__(self, text: str = "") -> None:
        self._restyling = False
        super().__init__(text)
        self.restyle()

    def restyle(self) -> None:
        """Recompute syntax style spans from the buffer."""
        from ..components.text.styles import StyleSpan

        self.spans = [
            StyleSpan(start, end, style)
            for start, end, style in scan_c_regions(self.text())
        ]

    def notify_observers(self, change=None) -> int:
        # Restyle before observers repaint, so views always see current
        # spans; guard against recursion through our own restyle.
        if not self._restyling:
            self._restyling = True
            try:
                self.restyle()
            finally:
                self._restyling = False
        return super().notify_observers(change)


class CTextView(TextView):
    """A text view with C editing conveniences."""

    atk_name = "ctextview"

    def __init__(self, dataobject: Optional[CTextData] = None,
                 indent_width: int = 4, **kwargs) -> None:
        super().__init__(dataobject, **kwargs)
        self.indent_width = indent_width
        self.keymap.bind("Return", self._cmd_c_newline)
        self.keymap.bind("}", self._cmd_electric_brace)

    def _current_line_text(self) -> str:
        start, end = self._line_bounds()
        return self.data.text(start, end)

    def _cmd_c_newline(self, view, key) -> None:
        """Auto-indent: copy the current indentation, +1 level after '{'."""
        line = self._current_line_text()
        indent = len(line) - len(line.lstrip(" "))
        if line.rstrip().endswith("{"):
            indent += self.indent_width
        self.insert_text("\n" + " " * indent)

    def _cmd_electric_brace(self, view, key) -> None:
        """A '}' on an all-blank line dedents itself one level."""
        start, _end = self._line_bounds()
        line_so_far = self.data.text(start, self.dot)
        if line_so_far and not line_so_far.strip():
            remove = min(self.indent_width, len(line_so_far))
            self.data.delete(self.dot - remove, remove)
        self.insert_text("}")
