"""The tags package (paper §1): jump to definitions by name.

Builds a ``ctags``-style index from C-ish sources (function and
``#define`` definitions) and drives a text view to them.  Multiple
files are supported, matching the original's project-wide tags file.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from ..components.text.textview import TextView

__all__ = ["Tag", "TagIndex", "TagsPackage"]

_FUNC_RE = re.compile(
    r"^[A-Za-z_][A-Za-z_0-9 \t\*]*?\b(?P<name>[A-Za-z_][A-Za-z_0-9]*)\s*\([^;]*$"
)
_DEFINE_RE = re.compile(r"^#\s*define\s+(?P<name>[A-Za-z_][A-Za-z_0-9]*)")


class Tag:
    """One definition site."""

    __slots__ = ("name", "filename", "line", "kind")

    def __init__(self, name: str, filename: str, line: int, kind: str) -> None:
        self.name = name
        self.filename = filename
        self.line = line
        self.kind = kind

    def __repr__(self) -> str:
        return f"Tag({self.name!r}, {self.filename}:{self.line}, {self.kind})"


class TagIndex:
    """name -> definition sites, built from source text."""

    def __init__(self) -> None:
        self._tags: Dict[str, List[Tag]] = {}

    def index_source(self, filename: str, source: str) -> int:
        """Scan ``source``; returns how many tags were found."""
        found = 0
        for lineno, line in enumerate(source.splitlines(), start=1):
            stripped = line.rstrip()
            match = _DEFINE_RE.match(stripped)
            kind = "macro"
            if match is None:
                # Heuristic: a function definition line is not itself a
                # control-flow keyword and opens a parameter list.
                if stripped[:1] in (" ", "\t", "#", "}", "{", "/", "*", ""):
                    continue
                head = stripped.split("(")[0].split()
                if head and head[-1] in ("if", "while", "for", "switch",
                                         "return"):
                    continue
                match = _FUNC_RE.match(stripped)
                kind = "function"
            if match is not None:
                name = match.group("name")
                self._tags.setdefault(name, []).append(
                    Tag(name, filename, lineno, kind)
                )
                found += 1
        return found

    def lookup(self, name: str) -> List[Tag]:
        return list(self._tags.get(name, []))

    def names(self) -> List[str]:
        return sorted(self._tags)

    def __len__(self) -> int:
        return sum(len(v) for v in self._tags.values())


class TagsPackage:
    """Editor integration: ``Find Tag`` jumps the view to a definition."""

    def __init__(self, textview: TextView, index: Optional[TagIndex] = None):
        self.textview = textview
        self.index = index if index is not None else TagIndex()
        card = textview.menu_card("Tags")
        card.add("Find Tag...", lambda v, e: None)  # apps wire a dialog

    def word_at_caret(self) -> str:
        data = self.textview.data
        if data is None:
            return ""
        text = data.text()
        pos = self.textview.dot
        start = pos
        while start > 0 and (text[start - 1].isalnum() or text[start - 1] == "_"):
            start -= 1
        end = pos
        while end < len(text) and (text[end].isalnum() or text[end] == "_"):
            end += 1
        return text[start:end]

    def goto_tag(self, name: Optional[str] = None) -> Optional[Tag]:
        """Jump to the definition of ``name`` (default: word at caret).

        Only moves within the current buffer; returns the tag found (or
        None), so callers showing other files can act on ``filename``.
        """
        if name is None or not name:
            name = self.word_at_caret()
        tags = self.index.lookup(name)
        if not tags:
            return None
        tag = tags[0]
        self._goto_line(tag.line)
        return tag

    def _goto_line(self, line: int) -> None:
        data = self.textview.data
        if data is None:
            return
        text = data.text()
        pos = 0
        for _ in range(line - 1):
            nl = text.find("\n", pos)
            if nl < 0:
                break
            pos = nl + 1
        self.textview.set_dot(pos)
