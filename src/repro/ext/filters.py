"""The filter mechanism (paper §1, footnote 1).

"The filter mechanism gives the user the ability to use standard tools
on regions of text contained in a file being edited."

A *filter* is a function from text to text.  :func:`run_filter` applies
one to a text view's selection (or the whole document), replacing the
region through the data object's mutators so every other view updates.
The built-in set mirrors the classic Unix tools people piped regions
through: ``sort``, ``uniq``, ``fmt``, ``expand``, ``rev``, case folds,
``indent``, and ``rot13`` — and :func:`register_filter` accepts new
ones at run time, which is the extension point the footnote describes.
"""

from __future__ import annotations

import codecs
from typing import Callable, Dict, List

from ..components.text.textview import TextView

__all__ = ["register_filter", "filter_names", "apply_filter", "run_filter"]

Filter = Callable[[str], str]

_FILTERS: Dict[str, Filter] = {}


def register_filter(name: str, func: Filter) -> None:
    """Make ``func`` available as a region filter."""
    _FILTERS[name] = func


def filter_names() -> List[str]:
    return sorted(_FILTERS)


def apply_filter(name: str, text: str) -> str:
    """Apply a named filter to a string."""
    if name not in _FILTERS:
        raise KeyError(f"no filter named {name!r}; have {filter_names()}")
    return _FILTERS[name](text)


def run_filter(textview: TextView, name: str) -> str:
    """Apply a filter to the view's selection (or everything).

    Returns the replacement text.  The edit goes through the data
    object, so other views on the buffer repaint via the observer
    machinery, and the selection is left around the new text.
    """
    data = textview.data
    if data is None:
        return ""
    span = textview.selection()
    if span is None:
        start, end = 0, data.length
    else:
        start, end = span
    original = data.text(start, end)
    replacement = apply_filter(name, original)
    if replacement != original:
        data.replace(start, end - start, replacement)
        textview.set_dot(start + len(replacement))
    return replacement


# ---------------------------------------------------------------------------
# The standard tools
# ---------------------------------------------------------------------------

def _linewise(func: Callable[[List[str]], List[str]]) -> Filter:
    """Lift a lines->lines function to text->text, preserving the
    presence/absence of a trailing newline."""

    def apply(text: str) -> str:
        trailing = text.endswith("\n")
        lines = text.split("\n")
        if trailing:
            lines = lines[:-1]
        result = func(lines)
        return "\n".join(result) + ("\n" if trailing else "")

    return apply


def _fmt(lines: List[str], width: int = 64) -> List[str]:
    """Refill paragraphs to ``width`` columns, like fmt(1)."""
    out: List[str] = []
    paragraph: List[str] = []

    def flush() -> None:
        if not paragraph:
            return
        line = ""
        for word in paragraph:
            candidate = f"{line} {word}".strip()
            if len(candidate) > width and line:
                out.append(line)
                line = word
            else:
                line = candidate
        if line:
            out.append(line)
        paragraph.clear()

    for line in lines:
        if not line.strip():
            flush()
            out.append("")
        else:
            paragraph.extend(line.split())
    flush()
    return out


register_filter("sort", _linewise(sorted))
register_filter("reverse-lines", _linewise(lambda lines: lines[::-1]))
register_filter(
    "uniq",
    _linewise(
        lambda lines: [
            line for i, line in enumerate(lines)
            if i == 0 or line != lines[i - 1]
        ]
    ),
)
register_filter("fmt", _linewise(_fmt))
register_filter("upper", str.upper)
register_filter("lower", str.lower)
register_filter("rot13", lambda text: codecs.encode(text, "rot13"))
register_filter("expand", lambda text: text.expandtabs(8))
register_filter(
    "indent", _linewise(lambda lines: ["    " + l if l else l for l in lines])
)
register_filter(
    "dedent",
    _linewise(lambda lines: [l[4:] if l.startswith("    ") else l.lstrip(" ")
                             if l[:1] == " " else l for l in lines]),
)
register_filter("double-space", _linewise(
    lambda lines: [part for line in lines for part in (line, "")][:-1]
))
