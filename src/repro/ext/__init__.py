"""Extension packages (paper §1).

"We have also developed a number of extension packages.  These include
a C-language programming component, a compile package, a tags package,
a spelling checker, a style editor and a filter mechanism."
"""

from .compilepkg import CheckingCompiler, CompilePackage, Diagnostic
from .ctext import C_KEYWORDS, CTextData, CTextView, scan_c_regions
from .filters import apply_filter, filter_names, register_filter, run_filter
from .proctable import (
    bind_command_key,
    bind_command_menu,
    command_names,
    register_command,
    resolve_command,
)
from .spell import BASIC_WORDS, Misspelling, SpellChecker
from .style_editor import StyleEditor, StyleEditorView, describe_style
from .tagspkg import Tag, TagIndex, TagsPackage

__all__ = [
    "CTextData",
    "CTextView",
    "C_KEYWORDS",
    "scan_c_regions",
    "CheckingCompiler",
    "CompilePackage",
    "Diagnostic",
    "TagIndex",
    "TagsPackage",
    "Tag",
    "SpellChecker",
    "Misspelling",
    "BASIC_WORDS",
    "StyleEditor",
    "StyleEditorView",
    "describe_style",
    "register_filter",
    "filter_names",
    "apply_filter",
    "run_filter",
    "register_command",
    "command_names",
    "resolve_command",
    "bind_command_key",
    "bind_command_menu",
]
