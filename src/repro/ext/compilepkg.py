"""The compile package (paper §1).

The original let a programmer run the compiler from the editor and
walked the error list, jumping the text view to each offending line.
The substrate here is :class:`CheckingCompiler`, a small static checker
for C-ish source (unbalanced braces/parentheses, unterminated strings,
statements missing semicolons) producing classic ``file:line: message``
diagnostics; :class:`CompilePackage` wires its output to a text view.
"""

from __future__ import annotations

from typing import List, Optional

from ..components.text.textview import TextView

__all__ = ["Diagnostic", "CheckingCompiler", "CompilePackage"]


class Diagnostic:
    """One compiler message."""

    __slots__ = ("filename", "line", "message")

    def __init__(self, filename: str, line: int, message: str) -> None:
        self.filename = filename
        self.line = line
        self.message = message

    def render(self) -> str:
        return f"{self.filename}:{self.line}: {self.message}"

    def __repr__(self) -> str:
        return f"Diagnostic({self.render()!r})"


class CheckingCompiler:
    """A static checker standing in for ``cc``.

    Checks are line-oriented and deliberately simple; the point is the
    editor integration, not the front end.
    """

    STATEMENT_HEADS = ("return", "break", "continue", "goto")

    def compile(self, source: str, filename: str = "main.c") -> List[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        depth_stack: List[int] = []       # line numbers of open braces
        paren_stack: List[int] = []
        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = self._strip_comment(raw)
            in_string = False
            for char in line:
                if char == '"':
                    in_string = not in_string
                if in_string:
                    continue
                if char == "{":
                    depth_stack.append(lineno)
                elif char == "}":
                    if depth_stack:
                        depth_stack.pop()
                    else:
                        diagnostics.append(
                            Diagnostic(filename, lineno, "unmatched '}'")
                        )
                elif char == "(":
                    paren_stack.append(lineno)
                elif char == ")":
                    if paren_stack:
                        paren_stack.pop()
                    else:
                        diagnostics.append(
                            Diagnostic(filename, lineno, "unmatched ')'")
                        )
            if in_string:
                diagnostics.append(
                    Diagnostic(filename, lineno, "unterminated string literal")
                )
            if paren_stack and paren_stack[0] < lineno:
                diagnostics.append(
                    Diagnostic(filename, paren_stack[0], "unmatched '('")
                )
                paren_stack.clear()
            stripped = line.strip()
            if any(
                stripped == head or stripped.startswith(head + " ")
                for head in self.STATEMENT_HEADS
            ) and not stripped.endswith(";"):
                diagnostics.append(
                    Diagnostic(filename, lineno, "missing ';'")
                )
        for open_line in depth_stack:
            diagnostics.append(
                Diagnostic(filename, open_line, "unclosed '{'")
            )
        return diagnostics

    @staticmethod
    def _strip_comment(line: str) -> str:
        start = line.find("/*")
        end = line.find("*/", start + 2)
        if start >= 0 and end >= 0:
            return line[:start] + line[end + 2:]
        if start >= 0:
            return line[:start]
        return line


class CompilePackage:
    """Editor integration: compile the buffer, step through the errors."""

    def __init__(self, textview: TextView,
                 compiler: Optional[CheckingCompiler] = None,
                 filename: str = "main.c") -> None:
        self.textview = textview
        self.compiler = compiler if compiler is not None else CheckingCompiler()
        self.filename = filename
        self.diagnostics: List[Diagnostic] = []
        self._next = 0
        card = textview.menu_card("Compile")
        card.add("Compile", lambda v, e: self.run())
        card.add("Next Error", lambda v, e: self.next_error())

    def run(self) -> List[Diagnostic]:
        """Check the buffer; returns (and stores) the diagnostics."""
        source = self.textview.data.plain_text() if self.textview.data else ""
        self.diagnostics = self.compiler.compile(source, self.filename)
        self._next = 0
        return self.diagnostics

    def next_error(self) -> Optional[Diagnostic]:
        """Jump the caret to the next diagnostic's line."""
        if self._next >= len(self.diagnostics):
            return None
        diagnostic = self.diagnostics[self._next]
        self._next += 1
        self.goto_line(diagnostic.line)
        return diagnostic

    def goto_line(self, line: int) -> None:
        if self.textview.data is None:
            return
        text = self.textview.data.text()
        pos = 0
        for _ in range(line - 1):
            next_nl = text.find("\n", pos)
            if next_nl < 0:
                break
            pos = next_nl + 1
        self.textview.set_dot(pos)
