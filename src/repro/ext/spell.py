"""The spelling checker extension (paper §1).

Checks a text document against a word list, skipping embedded-object
placeholders, and offers single-edit suggestions.  The built-in word
list covers common English plus this repository's domain vocabulary;
real deployments load ``/usr/dict/words`` via :meth:`SpellChecker.load_words`.
"""

from __future__ import annotations

import re
from typing import Iterator, List, Optional, Set

from ..components.text.textdata import OBJECT_CHAR, TextData

__all__ = ["SpellChecker", "Misspelling", "BASIC_WORDS"]

#: A deliberately small core dictionary; tests and apps extend it.
BASIC_WORDS = frozenset(
    """a about after all also an and andrew any application are as at be
    because been before being between both but by can code component
    components could data date did do document does down each editor
    enclosed equation even expenses file first for from had has have he
    help her here him his how i if in information into is it its just
    like list line mail make many may me menu message messages more most
    mouse my new no not now object objects of on one only or other our
    out over paper people program quarter raster s screen set she should
    so some spreadsheet system table text than that the their them then
    there these they this those through time to toolkit two up us use
    used user users view views was we were what when where which who will
    window with would you your dear david hope nice vacation call
    sincerely regards thanks please ended fix fine word words good bad
    big small very really see look write read send sent get got""".split()
)

_WORD_RE = re.compile(r"[A-Za-z']+")
_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


class Misspelling:
    """One flagged word with its document position."""

    __slots__ = ("word", "pos", "suggestions")

    def __init__(self, word: str, pos: int, suggestions: List[str]) -> None:
        self.word = word
        self.pos = pos
        self.suggestions = suggestions

    def __repr__(self) -> str:
        return f"Misspelling({self.word!r} at {self.pos})"


class SpellChecker:
    """Word-list checker with edit-distance-1 suggestions."""

    def __init__(self, words: Optional[Set[str]] = None) -> None:
        self.words: Set[str] = set(words if words is not None else BASIC_WORDS)

    def load_words(self, text: str) -> int:
        """Add one word per line (dict-file format); returns count added."""
        before = len(self.words)
        for line in text.splitlines():
            word = line.strip().lower()
            if word:
                self.words.add(word)
        return len(self.words) - before

    def add_word(self, word: str) -> None:
        self.words.add(word.lower())

    def is_known(self, word: str) -> bool:
        lowered = word.lower()
        if lowered in self.words:
            return True
        # Accept regular plurals/possessives of known words.
        if lowered.endswith("'s") and lowered[:-2] in self.words:
            return True
        if lowered.endswith("s") and lowered[:-1] in self.words:
            return True
        return False

    # -- suggestions ----------------------------------------------------

    def _edits(self, word: str) -> Iterator[str]:
        for i in range(len(word) + 1):
            head, tail = word[:i], word[i:]
            if tail:
                yield head + tail[1:]                      # delete
            for char in _ALPHABET:
                yield head + char + tail                   # insert
                if tail:
                    yield head + char + tail[1:]           # replace
            if len(tail) > 1:
                yield head + tail[1] + tail[0] + tail[2:]  # transpose

    def suggest(self, word: str, limit: int = 5) -> List[str]:
        lowered = word.lower()
        seen = []
        for candidate in self._edits(lowered):
            if candidate in self.words and candidate not in seen:
                seen.append(candidate)
                if len(seen) >= limit:
                    break
        return seen

    # -- document checking -------------------------------------------------

    def check_text(self, text: str) -> List[Misspelling]:
        flagged: List[Misspelling] = []
        for match in _WORD_RE.finditer(text):
            word = match.group()
            if word.strip("'") and not self.is_known(word):
                flagged.append(
                    Misspelling(word, match.start(), self.suggest(word))
                )
        return flagged

    def check_document(self, document: TextData) -> List[Misspelling]:
        """Check a text data object (embedded objects are skipped but
        positions refer to the real buffer, placeholders included)."""
        buffer = document.text()
        cleaned = buffer.replace(OBJECT_CHAR, " ")
        return self.check_text(cleaned)

    def correct(self, document: TextData,
                misspelling: Misspelling, replacement: str) -> None:
        """Apply a correction through the data object's mutators."""
        current = document.text(
            misspelling.pos, misspelling.pos + len(misspelling.word)
        )
        if current != misspelling.word:
            raise ValueError(
                f"document changed under the checker: expected "
                f"{misspelling.word!r}, found {current!r}"
            )
        document.replace(misspelling.pos, len(misspelling.word), replacement)
