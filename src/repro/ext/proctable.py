"""The procedure table: user-written commands (paper section 7).

"The dynamic loading/linking feature also provides a low-level
extension language for applications built using the toolkit.
Sophisticated users can write code (using the class system) to
implement new commands.  These commands can be bound either to key
sequences or to menus.  When invoked, the code is loaded and executed."

A *command* is a callable ``command(view, event)``.  Commands register
in the procedure table under a name; unknown names resolve through the
dynamic loader against a class named ``<name>cmd`` whose class
procedure ``invoke`` is the command body — so a user drops
``wordcount.py`` into a plugin directory, binds ``wordcount`` to a key
or menu item, and the code loads on first invocation, never before.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..class_system.dynamic import ClassLoader, default_loader
from ..class_system.errors import ClassSystemError, DynamicLoadError
from ..core.view import View

__all__ = [
    "register_command",
    "command_names",
    "resolve_command",
    "bind_command_key",
    "bind_command_menu",
]

Command = Callable[[View, object], None]

_COMMANDS: Dict[str, Command] = {}


def register_command(name: str, command: Command) -> None:
    """Install ``command`` in the procedure table."""
    _COMMANDS[name] = command


def command_names() -> List[str]:
    return sorted(_COMMANDS)


def resolve_command(name: str,
                    loader: Optional[ClassLoader] = None) -> Command:
    """Find the command ``name``, dynamically loading it if needed.

    The loader looks for a class registered as ``<name>cmd`` (typically
    defined by a plugin file ``<name>cmd.py`` on the class path) and
    uses its ``invoke`` class procedure.  The resolved command is cached
    in the table, so the load happens once.
    """
    command = _COMMANDS.get(name)
    if command is not None:
        return command
    loader = loader if loader is not None else default_loader()
    try:
        cls = loader.load(f"{name}cmd")
    except ClassSystemError as exc:
        raise DynamicLoadError(
            f"no command {name!r} in the procedure table and no loadable "
            f"plugin {name}cmd: {exc}"
        ) from exc
    invoke = getattr(cls, "invoke", None)
    if invoke is None:
        raise DynamicLoadError(
            f"command class {name}cmd has no 'invoke' class procedure"
        )

    def command_shim(view: View, event) -> None:
        invoke(view, event)

    command_shim.__name__ = f"command_{name}"
    _COMMANDS[name] = command_shim
    return command_shim


def bind_command_key(view: View, keysym: str, name: str,
                     loader: Optional[ClassLoader] = None) -> None:
    """Bind a (possibly not-yet-loaded) command to a key in ``view``.

    Resolution is deferred to the first keystroke — "when invoked, the
    code is loaded and executed" — so binding is cheap and a missing
    plugin only fails when actually used.
    """

    def deferred(bound_view: View, event) -> None:
        resolve_command(name, loader)(bound_view, event)

    view.keymap.bind(keysym, deferred)


def bind_command_menu(view: View, card_name: str, label: str, name: str,
                      loader: Optional[ClassLoader] = None) -> None:
    """Bind a command to a menu item in ``view``'s menus."""

    def deferred(bound_view: View, event) -> None:
        resolve_command(name, loader)(bound_view, event)

    view.menu_card(card_name).add(label, deferred)
