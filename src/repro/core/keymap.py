"""Keyboard mapping (paper section 3).

"The same mechanism is used between children and parents to negotiate
... the mapping of keyboard symbols."  Each view owns a
:class:`Keymap`; the interaction manager resolves a keystroke against
the focus view's keymap first and *bubbles* unresolved keys up the
parent chain, so parents supply defaults and children override —
parental authority applied to the keyboard.

Bindings map a *keysym* (``"a"``, ``"Return"``, ``"C-x"``, ``"M-q"``)
to either a command — ``callable(view, key_event)`` — or a nested
:class:`Keymap`, which makes the keysym a prefix (``C-x C-s`` style
chords).  Pending-prefix state lives in the interaction manager, not
here, so one keymap can safely serve many windows.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Tuple, Union

from ..wm.events import KeyEvent

__all__ = ["Keymap", "Binding"]

Binding = Union[Callable, "Keymap"]


class Keymap:
    """An ordered mapping from keysyms to commands or nested keymaps."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._bindings: Dict[str, Binding] = {}
        self._default: Optional[Callable] = None

    def bind(self, keysym: str, target: Binding) -> None:
        """Bind ``keysym``; rebinding replaces the previous target."""
        self._bindings[keysym] = target

    def bind_chord(self, keysyms: Tuple[str, ...], command: Callable) -> None:
        """Bind a multi-key chord, creating prefix keymaps as needed.

        ``bind_chord(("C-x", "C-s"), save)`` makes ``C-x`` a prefix in
        this keymap whose nested keymap binds ``C-s``.
        """
        if not keysyms:
            raise ValueError("empty chord")
        keymap = self
        for keysym in keysyms[:-1]:
            existing = keymap._bindings.get(keysym)
            if not isinstance(existing, Keymap):
                existing = Keymap(f"{keymap.name}/{keysym}")
                keymap._bindings[keysym] = existing
            keymap = existing
        keymap._bindings[keysyms[-1]] = command

    def bind_printables(self, command: Callable) -> None:
        """Route every otherwise-unbound printable key to ``command``.

        This is how the text view implements self-insertion without ten
        dozen explicit bindings.
        """
        self._default = command

    def unbind(self, keysym: str) -> None:
        self._bindings.pop(keysym, None)

    def resolve(self, event: KeyEvent) -> Optional[Binding]:
        """The binding for ``event``, or the printable default, or None."""
        target = self._bindings.get(event.keysym())
        if target is not None:
            return target
        if self._default is not None and event.is_printable:
            return self._default
        return None

    def bound_keysyms(self) -> Iterator[str]:
        return iter(self._bindings)

    def __contains__(self, keysym: str) -> bool:
        return keysym in self._bindings

    def __len__(self) -> int:
        return len(self._bindings)

    def __repr__(self) -> str:
        return f"Keymap({self.name!r}, {len(self._bindings)} bindings)"
