"""runapp: one base program for every application (paper section 7).

"We have created a program, called runapp, that contains the basic
components of the toolkit.  The code for each individual application is
then dynamically loaded in at run time.  Since most UNIX systems do not
provide shared libraries, this allows multiple toolkit applications to
share a significant portion of code."

:class:`RunApp` reproduces that program: it holds the resident toolkit
(one window system, one class loader) and launches applications by
name through the dynamic loader.  Experiment E4 pairs it with
:mod:`repro.sim.loadmodel` to reproduce the paper's five performance
bullets; here the launching itself is real — the application classes
come back through the same loader the music component uses.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from .. import obs
from ..class_system.dynamic import ClassLoader, default_loader
from ..class_system.errors import DynamicLoadError
from ..wm.base import WindowSystem
from ..wm.switch import get_window_system
from .application import Application

__all__ = ["RunApp", "LaunchRecord"]


class LaunchRecord:
    """One application launch through runapp."""

    __slots__ = ("name", "duration", "load_kind")

    def __init__(self, name: str, duration: float, load_kind: str) -> None:
        self.name = name
        self.duration = duration
        self.load_kind = load_kind

    def __repr__(self) -> str:
        return (
            f"LaunchRecord({self.name!r}, {self.duration * 1e3:.2f}ms, "
            f"{self.load_kind})"
        )


class RunApp:
    """The single base program sharing the toolkit across applications."""

    def __init__(self, window_system: Optional[WindowSystem] = None,
                 loader: Optional[ClassLoader] = None) -> None:
        self.window_system = (
            window_system if window_system is not None else get_window_system()
        )
        self.loader = loader if loader is not None else default_loader()
        self.applications: List[Application] = []
        self.launches: List[LaunchRecord] = []

    def launch(self, name: str, **kwargs) -> Application:
        """Start the application registered as ``<name>app``.

        The class is resolved through the dynamic loader, so an
        application whose module was never imported — or one shipped as
        a plugin file — launches exactly like a built-in.  All launched
        applications share this runapp's window system (the shared
        resident toolkit).
        """
        start = time.perf_counter()
        before = len(self.loader.cold_loads())
        cls = self.loader.load(f"{name}app")
        if not (isinstance(cls, type) and issubclass(cls, Application)):
            raise DynamicLoadError(
                f"{name}app resolved to {cls!r}, which is not an Application"
            )
        app = cls(window_system=self.window_system, **kwargs)
        duration = time.perf_counter() - start
        kind = "cold" if len(self.loader.cold_loads()) > before else "resident"
        self.applications.append(app)
        self.launches.append(LaunchRecord(name, duration, kind))
        if obs.metrics_on:
            obs.registry.inc("runapp.launches")
            obs.registry.inc(f"runapp.{kind}")
            obs.registry.observe_ns("runapp.launch_ns", int(duration * 1e9))
        return app

    def running(self) -> List[str]:
        """Names of the applications currently running."""
        return [app.app_name for app in self.applications if not app.destroyed]

    def quit_app(self, app: Application) -> None:
        app.destroy()
        if app in self.applications:
            self.applications.remove(app)

    def quit_all(self) -> None:
        for app in list(self.applications):
            self.quit_app(app)

    def process_all(self) -> Dict[str, int]:
        """Pump events for every running application."""
        return {
            app.app_name: app.process()
            for app in self.applications
            if not app.destroyed
        }

    def __repr__(self) -> str:
        return f"<runapp {len(self.applications)} applications>"
