"""The delayed-update queue (paper section 2).

"Since only one view will be causing the data object to change, and
multiple views may have to reflect the change, a delayed update
mechanism must be used."

Views never repaint inside a mutation.  They call ``want_update`` —
which lands here as a damage record — and the interaction manager
flushes the queue between events, sending update events back down the
tree.  Damage rectangles are coalesced per view, and enqueueing a view
whose ancestor is already fully damaged is a no-op: the §3 containment
invariant guarantees every descendant rectangle lies inside its
ancestor, so a fully-damaged ancestor's repaint already covers it.

Metrics (when ``ANDREW_METRICS=1``): ``update.enqueued``,
``update.coalesced``, ``update.subsumed``, ``update.drained``,
``update.flushes``, ``update.discarded``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .. import obs
from ..graphics.geometry import Rect

__all__ = ["UpdateQueue"]


class UpdateQueue:
    """Pending damage, keyed by view, in request order."""

    def __init__(self) -> None:
        self._damage: Dict[int, Tuple[object, Rect]] = {}
        self._fully_damaged: Set[int] = set()
        self.enqueue_count = 0      # total requests (for the benches)
        self.subsumed_count = 0     # requests absorbed by a damaged ancestor
        self.flush_count = 0        # total flushes

    def __len__(self) -> int:
        return len(self._damage)

    def is_empty(self) -> bool:
        return not self._damage

    def enqueue(self, view, rect: Optional[Rect] = None) -> None:
        """Record that ``rect`` of ``view`` (local coords) needs repair.

        ``None`` means the whole view.  Damage for the same view is
        coalesced into a single bounding rectangle — the classic
        damage-union policy.  If an *ancestor* of ``view`` is already
        queued with full damage, the request is dropped (subsumed): the
        ancestor's repaint covers this view's rectangle.
        """
        self.enqueue_count += 1
        if obs.metrics_on:
            obs.registry.inc("update.enqueued")
        # Clean/dirty bookkeeping for the compositor: any damage record
        # stales the cached images up the ancestor chain, including
        # requests posted straight to the IM (bypassing want_update).
        stale = getattr(view, "invalidate_backing_chain", None)
        if stale is not None:
            stale(rect)
        local = Rect(0, 0, view.bounds.width, view.bounds.height)
        if rect is None:
            rect = local
        if self._fully_damaged:
            ancestor = getattr(view, "parent", None)
            while ancestor is not None:
                if id(ancestor) in self._fully_damaged:
                    self.subsumed_count += 1
                    if obs.metrics_on:
                        obs.registry.inc("update.subsumed")
                    return
                ancestor = getattr(ancestor, "parent", None)
        key = id(view)
        if key in self._damage:
            _, existing = self._damage[key]
            rect = existing.union(rect)
            if obs.metrics_on:
                obs.registry.inc("update.coalesced")
        self._damage[key] = (view, rect)
        if not local.is_empty() and rect.contains_rect(local):
            self._fully_damaged.add(key)

    def drain(self) -> List[Tuple[object, Rect]]:
        """Remove and return all pending (view, damage) pairs, oldest first."""
        self.flush_count += 1
        items = list(self._damage.values())
        self._damage.clear()
        self._fully_damaged.clear()
        if obs.metrics_on:
            obs.registry.inc("update.flushes")
            obs.registry.inc("update.drained", len(items))
        return items

    def pending_views(self) -> List[object]:
        return [view for view, _ in self._damage.values()]

    def pending_damage(self) -> List[Tuple[object, Rect]]:
        """The queued (view, local-rect) pairs, without draining them.

        The scroll shift-blit inspects this before committing to a
        shift: damage already queued against the scroll area means the
        on-screen pixels there are stale and must not be moved.
        """
        return list(self._damage.values())

    def pending_rect(self, view) -> Optional[Rect]:
        """The coalesced damage rect queued for ``view``, or None."""
        entry = self._damage.get(id(view))
        return entry[1] if entry is not None else None

    def discard(self, view) -> None:
        """Drop pending damage for ``view`` (it was destroyed/unlinked)."""
        if self._damage.pop(id(view), None) is not None:
            self._fully_damaged.discard(id(view))
            if obs.metrics_on:
                obs.registry.inc("update.discarded")
