"""The delayed-update queue (paper section 2).

"Since only one view will be causing the data object to change, and
multiple views may have to reflect the change, a delayed update
mechanism must be used."

Views never repaint inside a mutation.  They call ``want_update`` —
which lands here as a damage record — and the interaction manager
flushes the queue between events, sending update events back down the
tree.  Damage rectangles are coalesced per view, and enqueueing a view
whose ancestor is already fully damaged is a no-op.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..graphics.geometry import Rect

__all__ = ["UpdateQueue"]


class UpdateQueue:
    """Pending damage, keyed by view, in request order."""

    def __init__(self) -> None:
        self._damage: Dict[int, Tuple[object, Rect]] = {}
        self.enqueue_count = 0      # total requests (for the benches)
        self.flush_count = 0        # total flushes

    def __len__(self) -> int:
        return len(self._damage)

    def is_empty(self) -> bool:
        return not self._damage

    def enqueue(self, view, rect: Optional[Rect] = None) -> None:
        """Record that ``rect`` of ``view`` (local coords) needs repair.

        ``None`` means the whole view.  Damage for the same view is
        coalesced into a single bounding rectangle — the classic
        damage-union policy.
        """
        self.enqueue_count += 1
        if rect is None:
            rect = Rect(0, 0, view.bounds.width, view.bounds.height)
        key = id(view)
        if key in self._damage:
            _, existing = self._damage[key]
            rect = existing.union(rect)
        self._damage[key] = (view, rect)

    def drain(self) -> List[Tuple[object, Rect]]:
        """Remove and return all pending (view, damage) pairs, oldest first."""
        self.flush_count += 1
        items = list(self._damage.values())
        self._damage.clear()
        return items

    def pending_views(self) -> List[object]:
        return [view for view, _ in self._damage.values()]

    def discard(self, view) -> None:
        """Drop pending damage for ``view`` (it was destroyed/unlinked)."""
        self._damage.pop(id(view), None)
