"""Data objects (paper section 2).

"The data object contains the information that is to be displayed ...
The contents of a data object can be saved in a file, but the contents
of the view cannot."

:class:`DataObject` is the persistent half of every toolkit component:
it is observable (views and other data objects attach as observers), it
can write itself to and read itself from the external representation
(:mod:`repro.core.datastream`), and it may *embed* other data objects —
the architecture's central feature.

Subclasses implement:

``write_body(writer)``
    Emit the object's body between the ``\\begindata``/``\\enddata``
    markers the writer brackets it with.  Embedded children are written
    with ``writer.write_object(child)`` followed by
    ``writer.write_view_ref(...)`` at the placement point.

``read_body(reader)``
    Consume body events from the reader until it reports the matching
    end marker.

Both have working defaults (an opaque line-preserving body) so even a
bare DataObject round-trips.
"""

from __future__ import annotations

from typing import List

from ..class_system.observable import Observable
from ..class_system.registry import ATKObject

__all__ = ["DataObject"]


class DataObject(ATKObject, Observable):
    """Base class for all persistent component state."""

    atk_register = False

    def __init__(self) -> None:
        ATKObject.__init__(self)
        Observable.__init__(self)
        # Opaque body for the default read/write implementation.
        self._raw_lines: List[str] = []

    # -- identity ---------------------------------------------------------

    @property
    def type_tag(self) -> str:
        """The datastream type tag: the registry name of this class."""
        return type(self).__atk_info__.name

    # -- embedding ----------------------------------------------------------

    def embedded_objects(self) -> List["DataObject"]:
        """Data objects embedded inside this one (for traversal).

        Components that support embedding override this; it drives
        recursive operations such as collecting the component types a
        document needs (used by EZ to pre-load plugins).
        """
        return []

    def transitive_types(self) -> List[str]:
        """All type tags reachable from this object, depth-first, unique."""
        seen: List[str] = []

        def walk(obj: "DataObject") -> None:
            if obj.type_tag not in seen:
                seen.append(obj.type_tag)
            for child in obj.embedded_objects():
                walk(child)

        walk(self)
        return seen

    # -- external representation ----------------------------------------------

    def write_body(self, writer) -> None:
        """Write this object's body to a datastream writer.

        Default: replay the opaque lines captured by the default
        :meth:`read_body`, making unknown-but-preserved round-trips work.
        """
        for line in self._raw_lines:
            writer.write_body_line(line)

    def read_body(self, reader) -> None:
        """Read this object's body from a datastream reader.

        Default: store every body line verbatim and skip embedded
        objects (they are still constructed, so their types register).
        """
        from .datastream import BeginObject, BodyLine, EndObject, ViewRef

        self._raw_lines = []
        for event in reader.body_events():
            if isinstance(event, BodyLine):
                self._raw_lines.append(event.text)
            elif isinstance(event, BeginObject):
                reader.read_object(event)  # parse and discard placement
            elif isinstance(event, ViewRef):
                pass
            elif isinstance(event, EndObject):
                break

    # -- lifecycle ----------------------------------------------------------

    def destroy(self) -> None:
        if not self.destroyed:
            self.destroy_observable()
        super().destroy()

    def __repr__(self) -> str:
        return f"<dataobject {self.type_tag} at {id(self):#x}>"
