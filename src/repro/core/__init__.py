"""The toolkit core (paper sections 2-5): data objects, views, the view
tree with its interaction manager, the delayed-update queue, keyboard
and menu arbitration, the external representation, and runapp.
"""

from . import faults
from .application import Application
from .dataobject import DataObject
from .datastream import (
    BeginObject,
    BodyLine,
    DataStreamError,
    DataStreamReader,
    DataStreamWriter,
    EndObject,
    MAX_LINE,
    ObjectExtent,
    UnknownObject,
    ViewRef,
    read_document,
    scan_extents,
    write_document,
)
from .im import InteractionManager
from .keymap import Keymap
from .menus import MenuCard, MenuItem, MenuSet
from .runapp import LaunchRecord, RunApp
from .update import UpdateQueue
from .view import View

__all__ = [
    "DataObject",
    "View",
    "InteractionManager",
    "Application",
    "RunApp",
    "LaunchRecord",
    "UpdateQueue",
    "Keymap",
    "MenuItem",
    "MenuCard",
    "MenuSet",
    "DataStreamError",
    "DataStreamWriter",
    "DataStreamReader",
    "BeginObject",
    "EndObject",
    "ViewRef",
    "BodyLine",
    "ObjectExtent",
    "UnknownObject",
    "write_document",
    "read_document",
    "scan_extents",
    "MAX_LINE",
    "faults",
]
