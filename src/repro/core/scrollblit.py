"""The scroll shift-blit switch (ROADMAP's frame-rate push).

Scrolling used to be invalidate-everything: a one-row scroll posted
full-view damage and the repaint pass redrew every visible line.  With
this gate open, a scrollable view that moves its viewport origin
instead *shifts* the still-valid region of the window surface in place
(a same-surface ``copy_area`` on the backend) and posts damage only
for the newly exposed strip.  Backing stores participate in the shift,
so a compositor-backed clean pane stays a single blit after scrolling.

The shift is a pure optimisation: :meth:`repro.core.view.View.
want_scroll` returns ``False`` (and posts nothing) whenever the shift
cannot be proven pixel-identical to a full repaint — pending damage
overlapping the scroll area, a partially clipped view, a backend whose
glyphs overlap the scroll unit, or this switch being closed — and the
caller falls back to plain area damage.

Gated by ``ANDREW_SCROLLBLIT`` — **on by default** (set ``0``/``off``
to restore the repaint-everything behaviour, which the conformance
matrix uses to prove the shifted path renders byte-identically).
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["SCROLLBLIT_ENV", "enabled", "scrollblit_enabled", "configure"]

SCROLLBLIT_ENV = "ANDREW_SCROLLBLIT"

_FALSY = {"0", "false", "no", "off"}


def _env_on(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() not in _FALSY


#: Hot-path switch, read directly as ``scrollblit.enabled``.
enabled: bool = _env_on(SCROLLBLIT_ENV)


def scrollblit_enabled() -> bool:
    return enabled


def configure(on: Optional[bool] = None) -> None:
    """Flip the shift-blit at run time (tests, benches, embedding apps).

    ``None`` leaves the switch unchanged.  Turning it off only stops
    *new* scrolls from shifting; a shift already queued on the
    interaction manager still executes at the next flush.
    """
    global enabled
    if on is not None:
        enabled = bool(on)
