"""The interaction manager: root of the view tree (paper section 3).

"At the top of the tree is a view called the interaction manager which
is a window provided by the underlying window system.  The interaction
manager has the responsibility of translating input events such as key
strokes, mouse events, menu events and exposure events from the window
system to the rest of the view tree.  The interaction manager is also
responsible for synchronizing drawing requests between views.  By
design, it has one child view, of arbitrary type."

:class:`InteractionManager` wraps a backend window, owns the single
child view, translates the backend's event queue into view-tree
protocol, maintains the mouse grab, the keyboard focus and pending
chord state, arbitrates the cursor and the menu set, and runs the
delayed-update queue (requests up, update pass back down).
"""

from __future__ import annotations

import time
from typing import List, Optional

from .. import obs
from ..graphics.geometry import Point, Rect
from ..testing import faultinject
from ..wm.base import BackendWindow, Cursor, WindowSystem
from ..wm.events import (
    Event,
    KeyEvent,
    MenuEvent,
    MouseAction,
    MouseEvent,
    ResizeEvent,
    TimerEvent,
    UpdateEvent,
)
from . import faults
from .keymap import Keymap
from .menus import MenuSet
from .update import UpdateQueue
from .view import View

__all__ = ["InteractionManager"]


class InteractionManager:
    """One window's worth of toolkit: the view-tree root."""

    def __init__(self, window_system: WindowSystem, title: str = "andrew",
                 width: int = 80, height: int = 24) -> None:
        self.window_system = window_system
        self.window: BackendWindow = window_system.create_window(
            title, width, height
        )
        self.child: Optional[View] = None
        self.updates = UpdateQueue()
        self.focus: Optional[View] = None
        self._grab: Optional[View] = None
        self._pending_keymap: Optional[Keymap] = None
        self._pending_owner: Optional[View] = None
        self._timer_subscribers: List[View] = []
        self._tick = 0
        self.events_processed = 0
        #: Queued scroll shifts: id(view) -> [view, area, dy, strip].
        #: Executed (oldest first) at the head of the next repaint or
        #: flush, *before* any damage repaint touches the surface.
        self._pending_scrolls: dict = {}
        self._shift_capable: Optional[bool] = None
        #: True only inside a window-targeted repaint pass; the view
        #: tree consults it so backing stores are used for (and filled
        #: from) live window rendering, never for printer drawables.
        self.compositing = False

    # ------------------------------------------------------------------
    # Tree root management
    # ------------------------------------------------------------------

    def set_child(self, view: View) -> View:
        """Install the IM's single child view, filling the window.

        Replacing an existing child unlinks the *whole* outgoing
        subtree through :meth:`view_unlinked` first: queued damage is
        discarded, backing-store surfaces go back to the pool, and any
        grab, focus or timer subscription held by a detached view dies
        with the tree instead of leaking into the new one.
        """
        previous = self.child
        if previous is not None and previous is not view:
            self.child = None
            for node in self._iter_subtree(previous):
                self.view_unlinked(node)
            previous._im = None
        self.child = view
        view.parent = None
        view._im = self
        view.set_bounds(self.window.bounds)
        self.set_focus(view)
        self.post_update(view, None)
        return view

    @staticmethod
    def _iter_subtree(view: View) -> List[View]:
        """``view`` and every descendant, parents before children."""
        out: List[View] = []
        stack = [view]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(node.children)
        return out

    @property
    def bounds(self) -> Rect:
        return self.window.bounds

    # ------------------------------------------------------------------
    # Event translation (the §3 responsibility)
    # ------------------------------------------------------------------

    def process_events(self, limit: Optional[int] = None) -> int:
        """Drain the window's queue, then flush pending updates.

        Returns the number of events handled.  This is the reproduction
        of the main loop: applications inject synthetic input into the
        backend window and call this to let the toolkit react.

        One handler raising never starves the rest of the session: the
        remaining queue still drains and ``flush_updates`` always runs.
        With containment on (``ANDREW_QUARANTINE``, the default) the
        offending view is quarantined and nothing escapes this method;
        with it off, the first exception re-raises *after* the drain
        and flush complete — errors never pass silently, but they no
        longer cost the user their queued keystrokes either.

        A drain that collects *several* errors raises the first with
        the rest chained behind it (``__context__``, plus a note on
        Pythons that support it) and counts the surplus as
        ``im.errors_dropped`` — a multi-failure drain stays fully
        diagnosable from the one traceback.
        """
        handled = 0
        errors: List[BaseException] = []
        try:
            while limit is None or handled < limit:
                event = self.window.next_event()
                if event is None:
                    break
                try:
                    self.handle_event(event)
                except Exception as exc:
                    errors.append(exc)
                handled += 1
        finally:
            self.events_processed += handled
            try:
                self.flush_updates()
            except Exception as exc:
                errors.append(exc)
        if errors:
            raise self._chain_errors(errors)
        return handled

    @staticmethod
    def _chain_errors(errors: List[BaseException]) -> BaseException:
        """Fold a drain's error list into one chained exception.

        The first error stays primary; each subsequent one is attached
        to the tail of its ``__context__`` chain (never overwriting a
        context Python already recorded, never creating a cycle), so
        the traceback shows every failure from the drain in order.
        """
        primary = errors[0]
        extra = 0
        seen = {id(primary)}
        tail = primary
        while tail.__context__ is not None and id(tail.__context__) not in seen:
            tail = tail.__context__
            seen.add(id(tail))
        for exc in errors[1:]:
            if id(exc) in seen:
                continue
            extra += 1
            tail.__context__ = exc
            tail = exc
            seen.add(id(exc))
            while (
                tail.__context__ is not None
                and id(tail.__context__) not in seen
            ):
                tail = tail.__context__
                seen.add(id(tail))
        if extra:
            if obs.metrics_on:
                obs.registry.inc("im.errors_dropped", extra)
            if hasattr(primary, "add_note"):  # Python >= 3.11
                primary.add_note(
                    f"[im] {extra} further error(s) from the same event "
                    f"drain are chained via __context__"
                )
        return primary

    def handle_event(self, event: Event) -> None:
        """Translate one backend event into view-tree protocol.

        This is the IM boundary of the fault-containment layer: with
        ``ANDREW_QUARANTINE`` on, an exception the per-view guards
        below did not attribute to a view is still contained here
        (counter ``im.dispatch_contained``) rather than aborting the
        event loop.
        """
        if not (obs.metrics_on or obs.trace_on):
            return self._contained_dispatch(event)
        kind = type(event).__name__
        with obs.span("im.dispatch", event=kind):
            start = time.perf_counter_ns()
            try:
                return self._contained_dispatch(event)
            finally:
                if obs.metrics_on:
                    obs.registry.observe_ns(
                        "im.dispatch_ns", time.perf_counter_ns() - start
                    )
                    obs.registry.inc("im.events")
                    obs.registry.inc(f"im.events.{kind}")

    def _contained_dispatch(self, event: Event) -> None:
        if not faults.enabled:
            return self._dispatch_event(event)
        try:
            return self._dispatch_event(event)
        except Exception:
            if obs.metrics_on:
                obs.registry.inc("im.dispatch_contained")

    def _dispatch_event(self, event: Event) -> None:
        if isinstance(event, MouseEvent):
            self._handle_mouse(event)
        elif isinstance(event, KeyEvent):
            self._handle_key(event)
        elif isinstance(event, MenuEvent):
            self._handle_menu(event)
        elif isinstance(event, UpdateEvent):
            self._repaint(event.area)
        elif isinstance(event, ResizeEvent):
            if self.child is not None:
                self.child.set_bounds(Rect(0, 0, event.width, event.height))
        elif isinstance(event, TimerEvent):
            for view in list(self._timer_subscribers):
                try:
                    view.handle_timer(event)
                except Exception as exc:
                    if not faults.enabled:
                        raise
                    faults.contain_handler(view, exc)

    # -- mouse ------------------------------------------------------------

    def _handle_mouse(self, event: MouseEvent) -> None:
        if self.child is None:
            return
        if self._grab is not None and event.action in (
            MouseAction.DRAG, MouseAction.UP, MouseAction.MOVE
        ):
            # Once a view accepts a DOWN it owns the interaction until UP.
            origin = self._grab.origin_in_window()
            try:
                self._grab.handle_mouse(event.offset(-origin.x, -origin.y))
            except Exception as exc:
                if not faults.enabled:
                    raise
                faults.contain_handler(self._grab, exc)
                self._grab = None  # a broken grab must not eat the session
            if event.action == MouseAction.UP:
                self._grab = None
        else:
            target = self.child.dispatch_mouse(
                event.offset(-self.child.bounds.left, -self.child.bounds.top)
            )
            if event.action == MouseAction.DOWN:
                self._grab = target
        self._update_cursor(event.point)

    def _update_cursor(self, point: Point) -> None:
        """Cursor arbitration (§3): ask the tree, parents first."""
        if self.child is None:
            return
        cursor = self.child.effective_cursor(
            point.offset(-self.child.bounds.left, -self.child.bounds.top)
        )
        if cursor is not None and cursor != self.window.cursor:
            self.window.set_cursor(cursor)

    # -- keyboard -----------------------------------------------------------

    def _handle_key(self, event: KeyEvent) -> None:
        if self._pending_keymap is not None:
            keymap, owner = self._pending_keymap, self._pending_owner
            self._pending_keymap = self._pending_owner = None
            binding = keymap.resolve(event)
            if isinstance(binding, Keymap):
                self._pending_keymap, self._pending_owner = binding, owner
            elif binding is not None:
                try:
                    binding(owner, event)
                except Exception as exc:
                    if not faults.enabled:
                        raise
                    faults.contain_handler(owner, exc)
            return
        for view in self._focus_chain():
            # A broken handler quarantines its view; the keystroke then
            # keeps bubbling so an ancestor may still consume it.
            try:
                if view.handle_key(event):
                    return
                binding = view.keymap.resolve(event)
            except Exception as exc:
                if not faults.enabled:
                    raise
                faults.contain_handler(view, exc)
                continue
            if isinstance(binding, Keymap):
                self._pending_keymap = binding
                self._pending_owner = view
                return

    def _focus_chain(self) -> List[View]:
        """Focus view, then its ancestors, then the IM child."""
        chain: List[View] = []
        node = self.focus if self.focus is not None else self.child
        while node is not None:
            chain.append(node)
            node = node.parent
        if self.child is not None and self.child not in chain:
            chain.append(self.child)
        return chain

    def set_focus(self, view: Optional[View]) -> None:
        """Move the keyboard focus to ``view`` (exception-safely).

        The transition commits in order: the outgoing view's
        ``focus_lost`` runs *before* the reassignment, so a raising
        hook (with quarantine off) propagates with the focus still on
        the view that failed — never a half-applied transfer where the
        new view is installed but its ``focus_gained`` never ran.  If
        ``focus_gained`` itself raises, the assignment rolls back to
        no-focus: the previous view already relinquished cleanly, and
        no view is left believing it holds a keyboard it never
        accepted.  With quarantine on, either hook failing quarantines
        its own view and the transfer completes.
        """
        if view is not None:
            view = view.initial_focus()
        if view is self.focus:
            return
        previous = self.focus
        self._pending_keymap = self._pending_owner = None
        if previous is not None:
            try:
                previous.focus_lost()
            except Exception as exc:
                if not faults.enabled:
                    raise  # focus unchanged: still `previous`
                faults.contain_handler(previous, exc)
        self.focus = view
        if view is not None:
            try:
                view.focus_gained()
            except Exception as exc:
                if not faults.enabled:
                    self.focus = None
                    raise
                faults.contain_handler(view, exc)

    # -- menus ---------------------------------------------------------------

    def menu_set(self) -> MenuSet:
        """Compose the effective menus along the focus chain (§3)."""
        menus = MenuSet()
        for view in self._focus_chain():
            menus.merge_from(view)
        return menus

    def _handle_menu(self, event: MenuEvent) -> None:
        for view in self._focus_chain():
            try:
                if view.handle_menu(event):
                    return
            except Exception as exc:
                if not faults.enabled:
                    raise
                faults.contain_handler(view, exc)

    # -- timers ----------------------------------------------------------------

    def add_timer_subscriber(self, view: View) -> None:
        """Register ``view`` for :meth:`tick` deliveries.

        The view must provide ``handle_timer(event)``; the animation
        view and the console use this.
        """
        if view not in self._timer_subscribers:
            self._timer_subscribers.append(view)

    def remove_timer_subscriber(self, view: View) -> None:
        if view in self._timer_subscribers:
            self._timer_subscribers.remove(view)

    def tick(self, count: int = 1) -> None:
        """Advance simulated time: post ``count`` timer events."""
        for _ in range(count):
            self._tick += 1
            self.window.post_event(TimerEvent(self._tick))

    # ------------------------------------------------------------------
    # Update synchronization (§2's delayed update, §3's up-then-down)
    # ------------------------------------------------------------------

    def post_update(self, view: View, rect: Optional[Rect]) -> None:
        """A view posted an update request up the tree."""
        self.updates.enqueue(view, rect)

    # -- scroll shift-blit (see repro.core.scrollblit) -------------------

    def post_scroll(self, view: View, area: Rect, dy: int) -> bool:
        """Queue a same-surface shift of ``area`` (``view``-local) by
        ``dy`` device rows, posting damage only for the exposed strip.

        Returns False — posting nothing — when the shift cannot be
        proven pixel-identical to repainting ``area``: the move is
        larger than the area, the backend has no ``copy_area``, the
        area is clipped by the window edge, or damage already queued
        intersects the area (its stale pixels must not be moved).
        The caller then posts ordinary area damage instead.
        """
        if area.is_empty() or dy == 0 or abs(dy) >= area.height:
            return False
        if not self._can_shift():
            return False
        origin = view.origin_in_window()
        window_area = area.offset(origin.x, origin.y)
        if not self.window.bounds.contains_rect(window_area):
            return False
        key = id(view)
        record = self._pending_scrolls.get(key)
        if record is not None:
            return self._compose_scroll(record, view, area, dy)
        if self._scroll_blocked(window_area):
            return False
        strip = self._exposed_strip(area, dy)
        self._pending_scrolls[key] = [view, area, dy, strip]
        if obs.metrics_on:
            obs.registry.inc("view.rows_repainted", strip.height)
        self.post_update(view, strip)
        return True

    def _compose_scroll(self, record: list, view: View, area: Rect,
                        dy: int) -> bool:
        """Fold a second scroll of ``view`` into its queued record.

        Two same-direction scrolls compose into one shift of the summed
        distance with one summed exposed strip.  Anything else — a
        direction reversal, a changed area, a summed distance at least
        the area height, or damage that joined the view's queue entry
        since the first scroll (whose stale pixels the bigger shift
        would relocate) — drops the record and reports failure; the
        caller's fallback area damage covers the already-posted strip.
        """
        _, old_area, old_dy, old_strip = record
        total = old_dy + dy
        origin = view.origin_in_window()
        if (
            area != old_area
            or (old_dy > 0) != (dy > 0)
            or abs(total) >= area.height
            or self.updates.pending_rect(view) != old_strip
            or self._scroll_blocked(area.offset(origin.x, origin.y),
                                    exclude=view)
        ):
            del self._pending_scrolls[id(view)]
            return False
        strip = self._exposed_strip(area, total)
        record[2] = total
        record[3] = strip
        if obs.metrics_on:
            obs.registry.inc("view.rows_repainted",
                             strip.height - old_strip.height)
        self.post_update(view, strip)
        return True

    @staticmethod
    def _exposed_strip(area: Rect, dy: int) -> Rect:
        """The rows of ``area`` a shift by ``dy`` leaves unsourced."""
        if dy < 0:  # content moved up: the bottom rows are exposed
            return Rect(area.left, area.bottom + dy, area.width, -dy)
        return Rect(area.left, area.top, area.width, dy)

    def _can_shift(self) -> bool:
        """Does the window's drawable support same-surface copies?"""
        if self._shift_capable is None:
            self._shift_capable = bool(
                getattr(self.window.graphic(), "can_copy_area", False)
            )
        return self._shift_capable

    def _scroll_blocked(self, window_area: Rect,
                        exclude: Optional[View] = None) -> bool:
        """Does queued damage overlap ``window_area`` (window coords)?

        Pixels under queued damage are stale — their repaint is still
        pending — so a shift must not relocate them: the repaint would
        land at the old spot and the staleness would survive at the new
        one.  ``exclude`` skips one view's own entry (used when
        composing scrolls, where that entry is the already-verified
        exposed strip).
        """
        for view, rect in self.updates.pending_damage():
            if view is exclude:
                continue
            origin = view.origin_in_window()
            if rect.offset(origin.x, origin.y).intersects(window_area):
                return True
        return False

    def _run_scrolls(self) -> None:
        """Execute queued shifts against the window and backing stores.

        Runs at the head of every repaint pass, so shifts always move
        *pre-repaint* pixels; the exposed-strip damage queued alongside
        then repaints on the shifted surface.  Backing stores along the
        scrolled view's ancestor chain shift too — that is what keeps a
        scrolled clean pane satisfiable by a single blit.
        """
        if not self._pending_scrolls:
            return
        records = list(self._pending_scrolls.values())
        self._pending_scrolls.clear()
        root = self.window.graphic()
        metered = obs.metrics_on
        for view, area, dy, _strip in records:
            if view.interaction_manager() is not self:
                continue
            origin = view.origin_in_window()
            with faultinject.suspended():
                # Toolkit ink: shifts are the IM's own surface surgery.
                root.copy_area(area.offset(origin.x, origin.y), 0, dy)
                if metered:
                    obs.registry.inc("view.scroll_blits")
                    obs.registry.inc(
                        "im.scroll_area_saved",
                        (area.height - abs(dy)) * area.width,
                    )
                node, off_x, off_y = view, 0, 0
                while node is not None:
                    surface = node._backing
                    if surface is not None and node._backing_valid:
                        surface.graphic().copy_area(
                            area.offset(off_x, off_y), 0, dy
                        )
                        if metered:
                            obs.registry.inc("view.scroll_blits")
                    off_x += node.bounds.left
                    off_y += node.bounds.top
                    node = node.parent

    def flush_updates(self) -> int:
        """Send queued damage back down as clipped full-update passes.

        Damage rectangles from different views are first mapped into
        window space and overlapping ones merged, so a region dirtied by
        several views repaints once instead of once per view.  Returns
        the number of repaint passes run.
        """
        self._run_scrolls()
        if self.child is None or self.updates.is_empty():
            # Even with no queued damage, drain the window's command
            # buffer: a direct repaint (e.g. an UpdateEvent dispatched
            # straight from the queue) may have recorded batched ops
            # without going through the damage path.
            self.window.flush()
            return 0
        with obs.span("im.flush"):
            damages: List[Rect] = []
            for view, rect in self.updates.drain():
                origin = view.origin_in_window()
                damage = rect.offset(origin.x, origin.y).intersection(
                    self.window.bounds
                )
                if not damage.is_empty():
                    damages.append(damage)
            merged = self._merge_damage(damages)
            if obs.metrics_on:
                obs.registry.inc("im.flush_passes", len(merged))
                obs.registry.inc("im.flush_merged", len(damages) - len(merged))
            for damage in merged:
                try:
                    self._repaint(damage)
                except Exception:
                    # Backstop: per-view containment already caught
                    # anything attributable; what reaches here is IM or
                    # device trouble, and the other damage rects (and
                    # the flush below) must still happen.
                    if not faults.enabled:
                        raise
                    if obs.metrics_on:
                        obs.registry.inc("im.flush_contained")
            self.window.flush()
            return len(merged)

    @staticmethod
    def _merge_damage(damages: List[Rect]) -> List[Rect]:
        """Union overlapping window-space rects until none intersect.

        Each absorbed entry is swap-removed (O(1), no list shifting) and
        the scan restarts only after a union actually grew the rect —
        the grown bounding box may newly overlap entries that were
        already cleared against the smaller one.
        """
        merged: List[Rect] = []
        for rect in damages:
            index = 0
            while index < len(merged):
                if rect.intersects(merged[index]):
                    rect = rect.union(merged[index])
                    merged[index] = merged[-1]
                    merged.pop()
                    index = 0
                else:
                    index += 1
            merged.append(rect)
        return merged

    def _repaint(self, damage: Rect) -> None:
        """The downward update pass, clipped to ``damage``."""
        if self.child is None:
            return
        # Shifts queued before this repaint must move *pre-repaint*
        # pixels — a direct UpdateEvent repaint racing a queued scroll
        # would otherwise paint fresh content and then shift it.
        self._run_scrolls()
        root = self.window.graphic()
        base_clip = root.clip
        clipped = base_clip.intersection(damage)
        if clipped.is_empty():
            return
        root.clip = clipped
        if obs.metrics_on:
            obs.registry.inc("im.repaints")
            obs.registry.inc("im.repaint_area", damage.area)
        self.compositing = True
        try:
            with obs.span("im.repaint", area=damage.area):
                with faultinject.suspended():
                    # IM's own prefill is toolkit ink, not component ink:
                    # injected device faults here would be unattributable.
                    root.fill_rect(damage, 0)  # background under the damage
                self.child.full_update(root.child(self.child.bounds))
        finally:
            self.compositing = False
            # Restore the root drawable's clip: one merged-damage pass
            # must never leak its shrunken clip into the next (even on
            # a backend that hands out a shared root graphic).
            root.clip = base_clip

    def redraw(self) -> None:
        """Unconditional full repaint of the window."""
        if obs.metrics_on:
            obs.registry.inc("im.redraws")
        self.updates.drain()
        self._repaint(self.window.bounds)
        self.window.flush()

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------

    def view_unlinked(self, view: View) -> None:
        """A view left the tree: forget grabs/focus/damage it owned."""
        self.updates.discard(view)
        self._pending_scrolls.pop(id(view), None)
        self.window_system.surfaces.release(view)
        view._backing = None
        view._backing_valid = False
        view._backing_dirty = None
        if self._grab is view:
            self._grab = None
        if self.focus is view:
            self.set_focus(self.child)
        if view in self._timer_subscribers:
            self._timer_subscribers.remove(view)

    def snapshot_lines(self) -> List[str]:
        return self.window.snapshot_lines()

    def close(self) -> None:
        self.window.close()

    def __repr__(self) -> str:
        return f"<InteractionManager {self.window!r}>"
