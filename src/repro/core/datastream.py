r"""The external representation (paper section 5).

"When a data object writes out its external representation it is
enclosed in a begin/end marker pair.  The markers must be properly
nested and it must be possible to find all the data associated with an
object without actually parsing the data."

Wire format, exactly as the paper's example::

    \begindata{text, 1}
    ... text data ...
    \begindata{table, 2}
    ... the table data goes here ...
    \enddata{table, 2}
    ... more text data ...
    \view{spread, 2}
    ... rest of text data ...
    \enddata{text, 1}

* ``\begindata{type, id}`` / ``\enddata{type, id}`` bracket each data
  object; ids are unique within a document and let other objects
  reference the data (the ``\view`` construct above places a view of
  type ``spread`` on object 2).
* Body lines starting with a backslash are escaped by doubling the
  backslash, so marker detection never needs component knowledge —
  that is what makes :func:`scan_extents` possible.
* The writer enforces the paper's transport guidelines: printable
  7-bit ASCII only and physical lines of at most 80 characters.

Reading constructs data objects by type tag through the class registry
*and the dynamic loader*, so reading a document that embeds a component
the application never linked (the paper's music example) transparently
loads its code.
"""

from __future__ import annotations

import io
from typing import Dict, Iterator, List, Optional, TextIO, Union

from .. import obs
from ..class_system.dynamic import ClassLoader, default_loader
from ..class_system.errors import ClassSystemError
from ..testing import faultinject
from .dataobject import DataObject

__all__ = [
    "DataStreamError",
    "BeginObject",
    "EndObject",
    "ViewRef",
    "BodyLine",
    "ObjectExtent",
    "UnknownObject",
    "DataStreamWriter",
    "DataStreamReader",
    "write_document",
    "read_document",
    "scan_extents",
    "MAX_LINE",
]

MAX_LINE = 80

_BEGIN = "\\begindata{"
_END = "\\enddata{"
_VIEW = "\\view{"


class DataStreamError(Exception):
    """Malformed external representation."""

    def __init__(self, message: str, line: int = 0) -> None:
        self.line = line
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)


# ---------------------------------------------------------------------------
# Stream events
# ---------------------------------------------------------------------------

class BeginObject:
    """A ``\\begindata{type, id}`` marker."""

    __slots__ = ("type_tag", "object_id", "line")

    def __init__(self, type_tag: str, object_id: int, line: int) -> None:
        self.type_tag = type_tag
        self.object_id = object_id
        self.line = line

    def __repr__(self) -> str:
        return f"BeginObject({self.type_tag!r}, {self.object_id})"


class EndObject:
    """An ``\\enddata{type, id}`` marker."""

    __slots__ = ("type_tag", "object_id", "line")

    def __init__(self, type_tag: str, object_id: int, line: int) -> None:
        self.type_tag = type_tag
        self.object_id = object_id
        self.line = line

    def __repr__(self) -> str:
        return f"EndObject({self.type_tag!r}, {self.object_id})"


class ViewRef:
    """A ``\\view{viewtype, id}`` placement marker."""

    __slots__ = ("view_type", "object_id", "line")

    def __init__(self, view_type: str, object_id: int, line: int) -> None:
        self.view_type = view_type
        self.object_id = object_id
        self.line = line

    def __repr__(self) -> str:
        return f"ViewRef({self.view_type!r}, {self.object_id})"


class BodyLine:
    """One unescaped body line belonging to the current object."""

    __slots__ = ("text", "line")

    def __init__(self, text: str, line: int) -> None:
        self.text = text
        self.line = line

    def __repr__(self) -> str:
        return f"BodyLine({self.text!r})"


class ObjectExtent:
    """Where an object's data lives in a stream, found without parsing."""

    __slots__ = ("type_tag", "object_id", "start_line", "end_line", "depth")

    def __init__(self, type_tag: str, object_id: int, start_line: int,
                 end_line: int, depth: int) -> None:
        self.type_tag = type_tag
        self.object_id = object_id
        self.start_line = start_line
        self.end_line = end_line
        self.depth = depth

    @property
    def line_count(self) -> int:
        return self.end_line - self.start_line + 1

    def __repr__(self) -> str:
        return (
            f"ObjectExtent({self.type_tag!r}, id={self.object_id}, "
            f"lines {self.start_line}..{self.end_line}, depth={self.depth})"
        )


# ---------------------------------------------------------------------------
# Marker parsing
# ---------------------------------------------------------------------------

def _parse_marker(line: str, prefix: str, lineno: int):
    """Parse ``{name, id}`` after ``prefix``; return (name, id) or None."""
    if not line.startswith(prefix):
        return None
    rest = line[len(prefix):]
    close = rest.find("}")
    if close < 0:
        raise DataStreamError(f"unterminated marker {line!r}", lineno)
    inner = rest[:close]
    parts = [p.strip() for p in inner.split(",")]
    if len(parts) != 2 or not parts[0]:
        raise DataStreamError(f"malformed marker {line!r}", lineno)
    try:
        object_id = int(parts[1])
    except ValueError:
        raise DataStreamError(f"non-numeric id in marker {line!r}", lineno)
    return parts[0], object_id


def _classify_line(line: str, lineno: int):
    """Turn one physical line into a stream event."""
    if line.startswith("\\\\"):
        return BodyLine(line[1:], lineno)  # escaped: strip one backslash
    begin = _parse_marker(line, _BEGIN, lineno)
    if begin is not None:
        return BeginObject(begin[0], begin[1], lineno)
    end = _parse_marker(line, _END, lineno)
    if end is not None:
        return EndObject(end[0], end[1], lineno)
    view = _parse_marker(line, _VIEW, lineno)
    if view is not None:
        return ViewRef(view[0], view[1], lineno)
    if line.startswith("\\"):
        raise DataStreamError(
            f"unknown directive {line.split('{')[0]!r}", lineno
        )
    return BodyLine(line, lineno)


def _lenient_marker(line: str):
    """Classify one raw line for salvage capture.

    Returns ``("begin"|"end", type_tag, object_id)`` for a *cleanly*
    parseable marker, else ``None`` — a garbled marker or unknown
    directive is just body as far as salvage is concerned, because the
    whole point of salvage is surviving bytes the strict classifier
    rejects.  Escaped lines are body by construction.
    """
    if line.startswith("\\\\"):
        return None
    for prefix, kind in ((_BEGIN, "begin"), (_END, "end")):
        if line.startswith(prefix):
            try:
                parsed = _parse_marker(line, prefix, 0)
            except DataStreamError:
                return None
            if parsed is not None:
                return kind, parsed[0], parsed[1]
    return None


# ---------------------------------------------------------------------------
# Salvage placeholder
# ---------------------------------------------------------------------------

class UnknownObject(DataObject):
    """A component the reader could not reconstruct, preserved verbatim.

    The paper promises that a document survives travelling through an
    application that lacks (or mis-executes) one of its component
    classes: the unreadable object rides along untouched.  This is the
    data half of that promise (the view half is the quarantine
    placeholder): :attr:`raw_lines` holds the object's body exactly as
    it appeared on the wire — escapes intact, nested markers intact —
    and :meth:`write_body` re-emits it byte-for-byte under the original
    :attr:`type_tag`, so a salvaged document round-trips losslessly and
    a reader that *does* have the component gets the original data back.
    """

    atk_register = False

    def __init__(self, type_tag: str = "unknown",
                 raw_lines: Optional[List[str]] = None,
                 error: str = "") -> None:
        super().__init__()
        self._type_tag = type_tag
        self.raw_lines: List[str] = list(raw_lines or [])
        #: Human-readable reason the original read failed.
        self.error = error

    @property
    def type_tag(self) -> str:
        """The *original* component's tag, so round-trips are faithful."""
        return self._type_tag

    def write_body(self, writer: "DataStreamWriter") -> None:
        writer.write_raw_lines(self.raw_lines)

    def read_body(self, reader: "DataStreamReader") -> None:
        # Never reached through the normal path: the stream carries the
        # original component's tag, so re-reading either constructs the
        # real class or goes through salvage again.
        raise DataStreamError(
            f"UnknownObject({self._type_tag!r}) cannot parse a body"
        )

    def __repr__(self) -> str:
        return (
            f"<UnknownObject {self._type_tag!r} "
            f"lines={len(self.raw_lines)} error={self.error!r}>"
        )


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------

class DataStreamWriter:
    """Writes data objects in the external representation."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else io.StringIO()
        self._next_id = 1
        self._ids: Dict[int, int] = {}      # id(dataobject) -> stream id
        self._open: List[BeginObject] = []  # marker stack
        self.lines_written = 0

    # -- ids -----------------------------------------------------------------

    def id_for(self, obj: DataObject) -> int:
        """The stream id for ``obj``, assigning the next free one."""
        key = id(obj)
        if key not in self._ids:
            self._ids[key] = self._next_id
            self._next_id += 1
        return self._ids[key]

    def is_written(self, obj: DataObject) -> bool:
        return id(obj) in self._ids

    # -- raw emission -----------------------------------------------------------

    def _emit(self, line: str) -> None:
        self.stream.write(line + "\n")
        self.lines_written += 1
        if obs.metrics_on:
            obs.registry.inc("datastream.bytes_written", len(line) + 1)
            obs.registry.inc("datastream.lines_written")

    def write_body_line(self, text: str) -> None:
        """Write one body line, enforcing the section-5 guidelines.

        Raises :class:`DataStreamError` on non-7-bit characters, control
        characters other than tab, or lines longer than 80 columns
        (including any escape prefix).  Lines starting with a backslash
        are escaped automatically.
        """
        for char in text:
            code = ord(char)
            if code > 126 or (code < 32 and char != "\t"):
                raise DataStreamError(
                    f"non-transportable character {char!r} in body line "
                    f"{text!r}; the external representation is printable "
                    "7-bit ASCII"
                )
        if text.startswith("\\"):
            text = "\\" + text
        if len(text) > MAX_LINE:
            raise DataStreamError(
                f"body line of {len(text)} characters exceeds the "
                f"{MAX_LINE}-column transport limit: {text[:40]!r}..."
            )
        self._emit(text)

    def write_raw_lines(self, lines: List[str]) -> None:
        """Re-emit already-encoded physical lines verbatim (salvage path).

        The lines came off a stream, so escapes and any nested markers
        are already in wire form; running them through
        :meth:`write_body_line` would double-escape them.
        """
        for line in lines:
            self._emit(line)

    def write_wrapped(self, text: str, width: int = 78) -> None:
        """Write arbitrary-length text as multiple body lines.

        A purely layout-free chunking helper for components whose body
        format is line-oriented anyway; chunk boundaries are the
        component's business to make reversible.
        """
        if text == "":
            self.write_body_line("")
            return
        for start in range(0, len(text), width):
            self.write_body_line(text[start:start + width])

    # -- structure ----------------------------------------------------------------

    def write_object(self, obj: DataObject) -> int:
        """Write ``obj`` (markers + body); returns its stream id."""
        object_id = self.id_for(obj)
        if obs.metrics_on:
            obs.registry.inc("datastream.objects_written")
        begin = BeginObject(obj.type_tag, object_id, self.lines_written + 1)
        self._open.append(begin)
        self._emit(f"\\begindata{{{obj.type_tag}, {object_id}}}")
        obj.write_body(self)
        top = self._open.pop()
        if top is not begin:  # pragma: no cover - internal invariant
            raise DataStreamError("writer marker stack corrupted")
        self._emit(f"\\enddata{{{obj.type_tag}, {object_id}}}")
        return object_id

    def write_view_ref(self, view_type: str, object_id: int) -> None:
        """Write a ``\\view`` placement for a previously written object."""
        self._emit(f"\\view{{{view_type}, {object_id}}}")

    def getvalue(self) -> str:
        """The accumulated text (only for StringIO-backed writers)."""
        if isinstance(self.stream, io.StringIO):
            return self.stream.getvalue()
        raise TypeError("writer is not backed by StringIO")


# ---------------------------------------------------------------------------
# Reader
# ---------------------------------------------------------------------------

class DataStreamReader:
    """Reads data objects from the external representation.

    Constructs component instances by type tag through the class
    registry, falling back to the dynamic loader for never-imported
    component types.  Objects are registered by stream id so ``\\view``
    references resolve (``objects_by_id``).

    With ``salvage=True`` an embedded object that cannot be read — its
    class is unknown, or its ``read_body`` raises on its own data —
    becomes an :class:`UnknownObject` preserving the raw bytes instead
    of failing the whole document.  Structural corruption (truncated
    stream, mismatched markers) still raises :class:`DataStreamError`:
    salvage preserves what is bracketed, it does not invent brackets.
    Salvaged placeholders are appended to :attr:`salvaged`.
    """

    def __init__(self, source: Union[str, TextIO],
                 loader: Optional[ClassLoader] = None,
                 salvage: bool = False) -> None:
        text = source if isinstance(source, str) else source.read()
        self._lines = text.splitlines()
        self._pos = 0
        if obs.metrics_on:
            obs.registry.inc("datastream.bytes_read", len(text))
        self._loader = loader if loader is not None else default_loader()
        self.objects_by_id: Dict[int, DataObject] = {}
        self._depth = 0
        self.salvage = bool(salvage)
        self.salvaged: List["UnknownObject"] = []

    # -- event stream ---------------------------------------------------------

    def _next_event(self):
        if self._pos >= len(self._lines):
            return None
        line = self._lines[self._pos]
        self._pos += 1
        return _classify_line(line, self._pos)

    def body_events(self) -> Iterator[object]:
        """Yield events for the current object's body.

        The stream of events ends with (and includes) the
        :class:`EndObject` matching the most recent begin.  Nested
        :class:`BeginObject` events are yielded for the component to
        hand to :meth:`read_object` (to build the child) or
        :meth:`skip_object` (to ignore it).
        """
        while True:
            event = self._next_event()
            if event is None:
                raise DataStreamError("unexpected end of stream inside object")
            yield event
            if isinstance(event, EndObject):
                return

    def read_object(self, begin: Optional[BeginObject] = None) -> DataObject:
        """Read one complete object (markers + body) and construct it.

        If ``begin`` is None the next event must be a begin marker — the
        top-level entry point.  Otherwise ``begin`` is a marker already
        consumed from :meth:`body_events` by an embedding component.
        """
        if begin is None:
            event = self._next_event()
            while isinstance(event, BodyLine) and not event.text.strip():
                event = self._next_event()  # tolerate leading blank lines
            if not isinstance(event, BeginObject):
                raise DataStreamError(
                    f"expected \\begindata, found {event!r}",
                    getattr(event, "line", 0),
                )
            begin = event
        body_start = self._pos
        try:
            obj = self._construct(begin)
            if obs.metrics_on:
                obs.registry.inc("datastream.objects_read")
            self.objects_by_id[begin.object_id] = obj
            if faultinject.enabled:
                faultinject.maybe_raise("datastream.read")
            self._depth += 1
            try:
                obj.read_body(self)
            finally:
                self._depth -= 1
        except Exception as exc:
            if not self.salvage:
                raise
            obj = self._salvage_object(begin, body_start, exc)
            self.objects_by_id[begin.object_id] = obj
        return obj

    def skip_object(self, begin: BeginObject) -> ObjectExtent:
        """Skip past an object's data without parsing it (section 5).

        Uses only marker nesting — no component code runs — and returns
        the extent found.
        """
        depth = 1
        start = begin.line
        while depth:
            event = self._next_event()
            if event is None:
                raise DataStreamError(
                    f"no matching \\enddata for {begin!r}", start
                )
            if isinstance(event, BeginObject):
                depth += 1
            elif isinstance(event, EndObject):
                depth -= 1
                if depth == 0:
                    if (event.type_tag != begin.type_tag
                            or event.object_id != begin.object_id):
                        raise DataStreamError(
                            f"mismatched markers: {begin!r} closed by "
                            f"{event!r}", event.line,
                        )
                    return ObjectExtent(
                        begin.type_tag, begin.object_id, start, event.line, 0
                    )
        raise AssertionError("unreachable")

    def _salvage_object(self, begin: BeginObject, body_start: int,
                        exc: BaseException) -> "UnknownObject":
        """Re-read ``begin``'s body verbatim after a failed parse.

        The reader rewinds to the first body line (the failed
        ``read_body`` may have consumed any amount of the stream) and
        re-scans by marker nesting only — the section-5 guarantee that
        an object's data can be located without parsing it is exactly
        what makes salvage possible.
        """
        self._pos = body_start
        raw = self._capture_raw_body(begin)
        message = str(exc) or type(exc).__name__
        obj = UnknownObject(begin.type_tag, raw, error=message)
        self.salvaged.append(obj)
        if obs.metrics_on:
            obs.registry.inc("io.salvaged_objects")
        return obj

    def _capture_raw_body(self, begin: BeginObject) -> List[str]:
        """Collect ``begin``'s body as raw physical lines, escapes intact.

        Classification is deliberately lenient — only cleanly parseable
        begin/end markers count as structure; garbled lines are body.
        Truncation or a mismatched closing marker is structural
        corruption and raises :class:`DataStreamError`.
        """
        depth = 1
        raw: List[str] = []
        while True:
            if self._pos >= len(self._lines):
                raise DataStreamError(
                    f"no matching \\enddata for {begin!r}", begin.line
                )
            line = self._lines[self._pos]
            self._pos += 1
            marker = _lenient_marker(line)
            if marker is not None:
                kind, type_tag, object_id = marker
                if kind == "begin":
                    depth += 1
                else:
                    depth -= 1
                    if depth == 0:
                        if (type_tag != begin.type_tag
                                or object_id != begin.object_id):
                            raise DataStreamError(
                                f"mismatched markers: {begin!r} closed by "
                                f"\\enddata{{{type_tag}, {object_id}}}",
                                self._pos,
                            )
                        return raw
            raw.append(line)

    def _construct(self, begin: BeginObject) -> DataObject:
        try:
            cls = self._loader.load(begin.type_tag)
        except ClassSystemError as exc:
            raise DataStreamError(
                f"unknown component type {begin.type_tag!r} "
                f"(dynamic load failed: {exc})", begin.line,
            ) from exc
        if not issubclass(cls, DataObject):
            raise DataStreamError(
                f"type {begin.type_tag!r} is not a data object", begin.line
            )
        return cls()


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------

def write_document(obj: DataObject, stream: Optional[TextIO] = None) -> str:
    """Write ``obj`` as a complete document; returns the text."""
    writer = DataStreamWriter(stream if stream is not None else io.StringIO())
    writer.write_object(obj)
    if isinstance(writer.stream, io.StringIO):
        return writer.stream.getvalue()
    return ""


def read_document(source: Union[str, TextIO],
                  loader: Optional[ClassLoader] = None,
                  salvage: bool = False) -> DataObject:
    """Read one top-level data object from ``source``.

    With ``salvage=True`` unreadable embedded objects come back as
    :class:`UnknownObject` placeholders instead of failing the read.
    """
    return DataStreamReader(source, loader, salvage=salvage).read_object()


def scan_extents(source: Union[str, TextIO]) -> List[ObjectExtent]:
    """Locate every object in a stream *without parsing any body*.

    This is the paper's requirement that "it must be possible to find
    all the data associated with an object without actually parsing the
    data": the scanner looks only at marker lines and escapes.  Returns
    extents in begin-marker order with their nesting depth.
    """
    text = source if isinstance(source, str) else source.read()
    extents: List[ObjectExtent] = []
    stack: List[tuple] = []  # (BeginObject, index into extents)
    for lineno, line in enumerate(text.splitlines(), start=1):
        event = _classify_line(line, lineno)
        if isinstance(event, BeginObject):
            extents.append(
                ObjectExtent(event.type_tag, event.object_id,
                             lineno, -1, len(stack))
            )
            stack.append((event, len(extents) - 1))
        elif isinstance(event, EndObject):
            if not stack:
                raise DataStreamError(
                    f"\\enddata with no open object", lineno
                )
            begin, index = stack.pop()
            if (begin.type_tag != event.type_tag
                    or begin.object_id != event.object_id):
                raise DataStreamError(
                    f"mismatched markers: {begin!r} closed by {event!r}",
                    lineno,
                )
            extents[index].end_line = lineno
    if stack:
        begin, _ = stack[0]
        raise DataStreamError(f"unclosed object {begin!r}", begin.line)
    if obs.metrics_on:
        obs.registry.inc("datastream.objects_scanned", len(extents))
        obs.registry.inc("datastream.scans")
    return extents
