"""Menu arbitration (paper section 3).

"The same mechanism is used between children and parents to negotiate
the contents of menus."  Each view contributes :class:`MenuCard` s; the
interaction manager composes the *effective menu set* by walking from
the focus view up to the root, letting children shadow parent items of
the same card/label — the menu form of parental authority.

A :class:`MenuItem` carries a handler called as ``handler(view,
menu_event)`` where ``view`` is the view that contributed the item.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..wm.events import MenuEvent

__all__ = ["MenuItem", "MenuCard", "MenuSet"]


class MenuItem:
    """One selectable entry on a menu card."""

    __slots__ = ("label", "handler", "keys")

    def __init__(self, label: str, handler: Callable, keys: str = "") -> None:
        self.label = label
        self.handler = handler
        self.keys = keys  # advertised keyboard equivalent, e.g. "C-s"

    def __repr__(self) -> str:
        return f"MenuItem({self.label!r})"


class MenuCard:
    """A named card (pane) of menu items, in insertion order."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._items: Dict[str, MenuItem] = {}

    def add(self, label: str, handler: Callable, keys: str = "") -> MenuItem:
        item = MenuItem(label, handler, keys)
        self._items[label] = item
        return item

    def remove(self, label: str) -> None:
        self._items.pop(label, None)

    def get(self, label: str) -> Optional[MenuItem]:
        return self._items.get(label)

    def items(self) -> List[MenuItem]:
        return list(self._items.values())

    def labels(self) -> List[str]:
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return f"MenuCard({self.name!r}, {len(self._items)} items)"


class MenuSet:
    """The composed menu state a window actually shows.

    Built by :meth:`merge_from`, called bottom-up (focus view first):
    the first contributor of a (card, label) pair wins, so deeper views
    shadow their ancestors.
    """

    def __init__(self) -> None:
        self._cards: Dict[str, MenuCard] = {}
        self._owners: Dict[Tuple[str, str], object] = {}

    def merge_from(self, view) -> None:
        """Merge ``view``'s menu cards into the set (view items may be
        shadowed by entries already present)."""
        for card in view.menu_cards():
            target = self._cards.get(card.name)
            if target is None:
                target = MenuCard(card.name)
                self._cards[card.name] = target
            for item in card.items():
                if target.get(item.label) is None:
                    target.add(item.label, item.handler, item.keys)
                    self._owners[(card.name, item.label)] = view

    def card(self, name: str) -> Optional[MenuCard]:
        return self._cards.get(name)

    def cards(self) -> List[MenuCard]:
        return list(self._cards.values())

    def card_names(self) -> List[str]:
        return list(self._cards)

    def owner(self, card: str, label: str):
        """The view that contributed (card, label), or None."""
        return self._owners.get((card, label))

    def dispatch(self, event: MenuEvent) -> bool:
        """Invoke the handler for ``event``; False if no such item."""
        card = self._cards.get(event.card)
        if card is None:
            return False
        item = card.get(event.item)
        if item is None:
            return False
        item.handler(self._owners.get((event.card, event.item)), event)
        return True

    def describe(self) -> List[str]:
        """Lines like ``"File: Save, Save As, Quit"`` for snapshots."""
        return [
            f"{card.name}: {', '.join(card.labels())}"
            for card in self._cards.values()
        ]

    def __len__(self) -> int:
        return sum(len(card) for card in self._cards.values())
