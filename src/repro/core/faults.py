"""Fault containment for the view tree (the §2–3 coexistence promise).

The paper's architecture lets third-party components — data objects,
views, dynamically loaded classes — coexist inside one compound
document.  That promise is only as good as the toolkit's behaviour when
one of them is *wrong*: a view whose ``draw`` raises must degrade to a
placeholder (the visual analogue of the unknown-object box documents
show for classes the reader doesn't have), not abort the repaint pass
and take its siblings' pixels with it.

This module holds the containment switch and the per-view quarantine
record; the enforcement points live at the boundaries:

* :meth:`repro.core.view.View.full_update` — any exception escaping a
  subtree's render marks the subtree quarantined, discards its pending
  damage and paints a bordered placeholder naming the error.  Siblings
  keep painting.
* :meth:`repro.core.view.View.dispatch_mouse` and the interaction
  manager's key/menu/timer dispatch — a handler that raises quarantines
  its view and the event continues along the chain.
* :meth:`repro.core.im.InteractionManager.process_events` — the queue
  always drains and ``flush_updates`` always runs.

Quarantined views retry on later damage passes with capped exponential
backoff; after :data:`STICKY_LIMIT` consecutive failures the quarantine
is sticky until :meth:`~repro.core.view.View.reset_quarantine`.

Gated by ``ANDREW_QUARANTINE`` — **on by default** (set ``0``/``off``
to get the old propagate-everything behaviour, which the conformance
matrix uses to prove the contained path renders byte-identically).
"""

from __future__ import annotations

import os
from typing import Optional

from .. import obs

__all__ = [
    "QUARANTINE_ENV",
    "STICKY_LIMIT",
    "COOLDOWN_CAP",
    "Quarantine",
    "enabled",
    "quarantine_enabled",
    "configure",
    "contain_handler",
]

QUARANTINE_ENV = "ANDREW_QUARANTINE"

#: Consecutive failures after which a quarantine stops retrying.
STICKY_LIMIT = 5
#: Upper bound on the number of damage passes skipped between retries.
COOLDOWN_CAP = 8

_FALSY = {"0", "false", "no", "off"}


def _env_on(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() not in _FALSY


#: Hot-path switch, **on by default**.  Containment sites read this
#: module attribute directly: ``if faults.enabled: ...``.
enabled: bool = _env_on(QUARANTINE_ENV)


def quarantine_enabled() -> bool:
    return enabled


def configure(on: Optional[bool] = None) -> None:
    """Flip containment at run time (tests, benches, embedding apps).

    ``None`` leaves the switch unchanged.  Turning it off does not
    clear existing quarantine records; views resume rendering live (a
    quarantined view's next exception then propagates as before).
    """
    global enabled
    if on is not None:
        enabled = bool(on)


class Quarantine:
    """One view's containment state: why it failed, and when to retry."""

    __slots__ = ("error", "failures", "cooldown", "sticky")

    def __init__(self) -> None:
        self.error = ""
        self.failures = 0
        self.cooldown = 0
        self.sticky = False

    def record_failure(self, exc: BaseException) -> None:
        """Note one failed render/handler call; schedule the next retry.

        Backoff doubles per consecutive failure (1, 2, 4, ... capped at
        :data:`COOLDOWN_CAP` skipped passes); the placeholder therefore
        shows for at least one full damage pass before any retry.
        """
        self.failures += 1
        message = str(exc)
        label = type(exc).__name__
        if message:
            label = f"{label}: {message}"
        self.error = label[:60]
        self.cooldown = min(2 ** (self.failures - 1), COOLDOWN_CAP)
        self.sticky = self.failures >= STICKY_LIMIT

    def should_retry(self) -> bool:
        """True when the next damage pass should attempt a live render."""
        return not self.sticky and self.cooldown <= 0

    def note_skipped_pass(self) -> None:
        """One damage pass rendered the placeholder instead of retrying."""
        if self.cooldown > 0:
            self.cooldown -= 1

    def __repr__(self) -> str:
        return (
            f"<Quarantine failures={self.failures} sticky={self.sticky} "
            f"cooldown={self.cooldown} error={self.error!r}>"
        )


def contain_handler(view, exc: BaseException) -> None:
    """Contain an event-handler exception at the IM boundary.

    Quarantines ``view`` (so the fault is visible as a placeholder, not
    silent) and requests a repaint to show it.  Counted separately from
    render containment (``im.handler_contained``) so the chaos matrix
    can account for every injected fault by boundary.
    """
    if obs.metrics_on:
        obs.registry.inc("im.handler_contained")
    view.quarantine_failure(exc)
    try:
        view.want_update()
    except Exception:  # pragma: no cover - want_update must not raise
        pass
