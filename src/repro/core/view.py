"""Views and the view tree (paper sections 2 and 3).

A view "contains the information about how the data is to be displayed
and how the user is to manipulate the data object".  Views form a tree:
each view is a rectangle completely contained in its parent, with the
interaction manager at the root.  Two protocols define the toolkit:

**Events travel down.**  ``dispatch_mouse`` asks the view to *route*
each mouse event: the view may claim it, or name a child to pass it to
(re-expressed in the child's coordinates).  Crucially the decision is
the parent's — a view may claim an event that lies over a child (the
frame's divider grab zone) or pass one that lies over itself.  This is
the paper's *parental authority*, its departure from geometry-driven
toolkits.  The same parent/child negotiation arbitrates menus
(:meth:`menu_cards`), cursors (:meth:`cursor_for`), keyboard symbols
(:attr:`keymap` with bubbling) and input focus.

**Updates travel up, then come back down.**  A view never paints
synchronously; it calls :meth:`want_update`, the request lands in the
interaction manager's queue, and repaint arrives later as a top-down
:meth:`full_update` pass whose drawable is clipped to the damage — so
parents composite themselves and their children in the right order.

**Clean subtrees blit instead of redrawing.**  A view that opted in via
:meth:`set_backing_store` keeps its last rendered image in an offscreen
surface (the paper's OffScreenWindow porting class).  Every damage
request invalidates the backing stores along its ancestor chain, so at
repaint time a view whose store is still valid is *clean* — its portion
of the damage is satisfied by one ``copy_to`` blit; everything else
re-renders (into the store first, when compositing).  Gated globally by
``ANDREW_COMPOSITOR`` (see :mod:`repro.core.compositor`) and bounded by
the window system's byte-budget LRU surface pool.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .. import obs
from ..class_system.observable import ChangeRecord, Observer
from ..class_system.registry import ATKObject
from ..graphics.geometry import Point, Rect
from ..graphics.graphic import Graphic
from ..testing import faultinject
from ..wm.base import Cursor
from ..wm.events import KeyEvent, MenuEvent, MouseEvent
from . import compositor
from . import faults
from . import scrollblit
from .dataobject import DataObject
from .keymap import Keymap
from .menus import MenuCard

__all__ = ["View"]


class View(ATKObject, Observer):
    """Base class for everything visible.

    A view may sit on a :class:`DataObject` (it attaches as an observer)
    or stand alone — "the scroll bar is one such example.  It only
    adjusts the information contained in another view."
    """

    atk_register = False

    def __init__(self, dataobject: Optional[DataObject] = None) -> None:
        ATKObject.__init__(self)
        self.parent: Optional["View"] = None
        self.children: List["View"] = []
        self.bounds = Rect(0, 0, 0, 0)      # in parent coordinates
        self.dataobject: Optional[DataObject] = None
        self.keymap = Keymap(type(self).__name__)
        self.cursor: Optional[Cursor] = None
        self._menu_cards: List[MenuCard] = []
        self._im = None                     # set on the root child by the IM
        self._needs_layout = True
        self.draw_count = 0                 # repaints (benches read this)
        self.backing_store = False          # compositor opt-in (see below)
        self._backing = None                # cached OffscreenWindow, if any
        self._backing_valid = False
        self._backing_dirty: Optional[Rect] = None  # sub-rect to repair
        #: Containment record (None = healthy); see repro.core.faults.
        self._quarantine: Optional[faults.Quarantine] = None
        if dataobject is not None:
            self.set_dataobject(dataobject)

    # ------------------------------------------------------------------
    # Data object linkage
    # ------------------------------------------------------------------

    def set_dataobject(self, dataobject: Optional[DataObject]) -> None:
        """Point this view at ``dataobject``, managing observation."""
        if self.dataobject is not None:
            self.dataobject.remove_observer(self)
        self.dataobject = dataobject
        if dataobject is not None:
            dataobject.add_observer(self)
        self.invalidate_backing_chain()

    def observed_changed(self, change: ChangeRecord) -> None:
        """Observer callback: the data object announced a change.

        The default asks for a full repaint; views with incremental
        repair (text, table) override and consult the change record.
        With containment on, a view whose repair code raises is
        quarantined here — the *right* view gets the placeholder, and
        the notifying data object's other observers are unaffected.
        """
        if not faults.enabled:
            self.on_data_changed(change)
            return
        try:
            self.on_data_changed(change)
        except Exception as exc:
            faults.contain_handler(self, exc)

    def on_data_changed(self, change: ChangeRecord) -> None:
        self.want_update()

    def observed_destroyed(self, source) -> None:
        if source is self.dataobject:
            self.dataobject = None
            self.want_update()

    # ------------------------------------------------------------------
    # Tree structure
    # ------------------------------------------------------------------

    def add_child(self, child: "View", bounds: Optional[Rect] = None) -> "View":
        """Attach ``child``; ``bounds`` are in this view's coordinates."""
        if child.parent is not None:
            child.parent.remove_child(child)
        child.parent = self
        self.children.append(child)
        child.invalidate_backing_chain()
        if bounds is not None:
            child.set_bounds(bounds)
        return child

    def remove_child(self, child: "View") -> None:
        if child in self.children:
            self.children.remove(child)
            child.parent = None
            self.invalidate_backing_chain()
            im = self.interaction_manager()
            if im is not None:
                im.view_unlinked(child)

    def set_bounds(self, bounds: Rect) -> None:
        """Assign this view's rectangle (parent coordinates).

        Size changes schedule a re-layout of the children; position-only
        moves do not.
        """
        size_changed = (
            bounds.width != self.bounds.width
            or bounds.height != self.bounds.height
        )
        if bounds != self.bounds:
            # Even a position-only move stales every ancestor's cached
            # image (it shows this view at the old spot).
            self.invalidate_backing_chain()
        self.bounds = bounds
        if size_changed:
            self._needs_layout = True
            self.want_update()

    def layout(self) -> None:
        """Position children inside ``(0, 0, width, height)``.

        Called lazily before drawing or routing whenever the size
        changed.  Default: nothing (leaf views).
        """

    def ensure_layout(self) -> None:
        if self._needs_layout:
            self.layout()
            self._needs_layout = False

    @property
    def width(self) -> int:
        return self.bounds.width

    @property
    def height(self) -> int:
        return self.bounds.height

    @property
    def local_bounds(self) -> Rect:
        return Rect(0, 0, self.bounds.width, self.bounds.height)

    def ancestors(self) -> List["View"]:
        out = []
        node = self.parent
        while node is not None:
            out.append(node)
            node = node.parent
        return out

    def root(self) -> "View":
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def interaction_manager(self):
        """The interaction manager above this view, or None if unlinked."""
        return self.root()._im

    def origin_in_window(self) -> Point:
        """This view's top-left corner in window coordinates."""
        x, y = self.bounds.left, self.bounds.top
        node = self.parent
        while node is not None:
            x += node.bounds.left
            y += node.bounds.top
            node = node.parent
        return Point(x, y)

    def rect_in_window(self) -> Rect:
        origin = self.origin_in_window()
        return Rect(origin.x, origin.y, self.bounds.width, self.bounds.height)

    def check_containment(self) -> None:
        """Assert the §3 invariant: children fit inside the parent.

        "Child views are always visually contained within the screen
        space allocated to their parent."  Exercised by property tests.
        """
        for child in self.children:
            assert self.local_bounds.contains_rect(child.bounds), (
                f"{child!r} bounds {child.bounds} escape parent "
                f"{self!r} bounds {self.local_bounds}"
            )
            child.check_containment()

    # ------------------------------------------------------------------
    # Update protocol (up, then back down)
    # ------------------------------------------------------------------

    def want_update(self, rect: Optional[Rect] = None) -> None:
        """Request a repaint of ``rect`` (local coords; None = all).

        The request is posted *up* to the interaction manager; if the
        view is not yet in a window the request is simply dropped (there
        is nothing to repair and attachment triggers a full update).
        Either way the backing stores up the ancestor chain go stale —
        their cached images no longer match this view's content.
        """
        self.invalidate_backing_chain(rect)
        im = self.interaction_manager()
        if im is not None:
            im.post_update(self, rect)

    def want_scroll(self, area: Rect, dy: int) -> bool:
        """Announce that the content of ``area`` (local coords) moved by
        ``dy`` device rows, and try to satisfy the scroll with a surface
        shift plus one exposed-strip repaint.

        Returns True when the shift was queued (the exposed strip's
        damage is posted here; the caller must post *nothing else*).
        Returns False — having posted nothing at all — whenever the
        shift cannot be proven pixel-identical to a full repaint; the
        caller then falls back to ordinary area damage.
        """
        if not scrollblit.enabled:
            return False
        im = self.interaction_manager()
        if im is None:
            return False
        return im.post_scroll(self, area.intersection(self.local_bounds), dy)

    # -- backing store (the compositor's per-view cache) -----------------

    def set_backing_store(self, on: bool = True) -> None:
        """Opt this view in (or out) of per-view surface caching.

        Opting in asserts the subtree's image is *self-contained*: its
        pixels are fully determined by the subtree's own draw code over
        a background-cleared rectangle, never by ink an ancestor
        painted underneath.  Compositing additionally requires the
        global ``ANDREW_COMPOSITOR`` switch (`repro.core.compositor`).
        """
        self.backing_store = bool(on)
        self._backing_valid = False
        self._backing_dirty = None
        if not on:
            self._release_backing()

    def invalidate_backing_chain(self, rect: Optional[Rect] = None) -> None:
        """Stale this view's cached image and every ancestor's.

        Called on every damage post (`core.update` calls it again for
        requests that bypass :meth:`want_update`), on reparenting and on
        bounds changes.  Surfaces are kept for reuse; only their
        *validity* is dropped.

        When the damage is a known sub-rect, a still-valid store is not
        invalidated outright: the rect (translated into each ancestor's
        coordinates on the way up) accumulates in ``_backing_dirty`` and
        :meth:`_composite` repairs just that region — the sub-rect
        store-repair half of the scroll work.  ``rect=None`` keeps the
        old everything-stales contract.
        """
        node: Optional["View"] = self
        while node is not None:
            if rect is None:
                node._backing_valid = False
                node._backing_dirty = None
            elif node._backing_valid:
                dirty = node._backing_dirty
                dirty = rect if dirty is None else dirty.union(rect)
                if dirty.contains_rect(node.local_bounds):
                    node._backing_valid = False
                    node._backing_dirty = None
                else:
                    node._backing_dirty = dirty
            if rect is not None:
                rect = rect.offset(node.bounds.left, node.bounds.top)
            node = node.parent

    def _backing_evicted(self) -> None:
        """Pool callback: the LRU let this view's surface go."""
        self._backing = None
        self._backing_valid = False
        self._backing_dirty = None

    def _release_backing(self) -> None:
        """Hand the surface back to the pool (destroy/unlink/opt-out)."""
        self._backing = None
        self._backing_valid = False
        self._backing_dirty = None
        im = self.interaction_manager()
        if im is not None:
            im.window_system.surfaces.release(self)

    def _composite(self, graphic: Graphic) -> bool:
        """Satisfy this repaint from the backing store if possible.

        Returns True when ``graphic``'s clip was filled by a blit —
        either of the still-valid cached image (a *clean* subtree) or
        of a freshly re-rendered one.  Returns False when the view must
        be drawn live (no interaction manager, zero-sized, or the
        surface pool refused the allocation).
        """
        im = self.interaction_manager()
        if im is None or not im.compositing:
            return False
        width, height = self.bounds.width, self.bounds.height
        if width <= 0 or height <= 0:
            return False
        surface = self._backing
        clean = (
            self._backing_valid
            and not self._needs_layout
            and surface is not None
            and surface.width == width
            and surface.height == height
        )
        pool = im.window_system.surfaces
        if clean and self._backing_dirty is None:
            pool.touch(self)
            if obs.metrics_on:
                obs.registry.inc("view.cache_hits")
                obs.registry.inc("im.repaint_area_saved", graphic.clip.area)
        elif clean:
            # Sub-rect repair: the store is valid except for the
            # accumulated dirty region — re-render only that, under a
            # clip restricted to it, instead of repainting the whole
            # offscreen surface.  After the repair the store is fully
            # valid again whatever the incoming damage clip was.
            dirty = self._backing_dirty.intersection(self.local_bounds)
            # Drop validity across the repair: a render that raises
            # (containment) must not leave a half-repaired store
            # masquerading as clean.
            self._backing_dirty = None
            self._backing_valid = False
            pool.touch(self)
            off = surface.graphic()
            off.state = graphic.state.clone()
            off.clip = off.clip.intersection(dirty)
            off.clear()
            self._render_subtree(off)
            self._backing_valid = True
            if obs.metrics_on:
                obs.registry.inc("view.store_subrect_repairs")
                saved = self.local_bounds.area - dirty.area
                if saved > 0:
                    obs.registry.inc("im.repaint_area_saved", saved)
        else:
            surface = pool.acquire(self, width, height)
            if surface is None:
                return False
            off = surface.graphic()
            # Inherit the incoming graphics state (a parent may have
            # set a font/color before descending), then render over a
            # cleared background — exactly what the live path sees
            # under the interaction manager's damage prefill.
            off.state = graphic.state.clone()
            off.clear()
            self._render_subtree(off)
            self._backing_dirty = None
            if pool.get(self) is surface:
                self._backing = surface
                self._backing_valid = True
            else:
                # A descendant's acquire evicted us mid-render.  The
                # local surface still blits correctly below, but it is
                # no longer budget-tracked, so do not retain it.
                self._backing = None
                self._backing_valid = False
            if obs.metrics_on:
                obs.registry.inc("view.cache_misses")
        surface.copy_to(graphic, 0, 0)
        return True

    def full_update(self, graphic: Graphic) -> None:
        """Draw self and children into ``graphic`` (the top-down pass).

        With the compositor on, an opted-in view first tries to satisfy
        the pass from its backing store (blitting a clean subtree in
        one `copy_to`); otherwise the subtree renders live.

        With containment on (``ANDREW_QUARANTINE``, the default), any
        exception escaping the subtree's render is caught *here*: the
        subtree is quarantined, its pending damage is discarded, and a
        bordered placeholder naming the error paints in its place —
        siblings and ancestors keep painting.  Quarantined subtrees
        retry on later passes with capped backoff and recover the
        moment a render succeeds.
        """
        if not faults.enabled:
            self._update_subtree(graphic)
            return
        quarantined = self._quarantine
        if quarantined is not None and not quarantined.should_retry():
            quarantined.note_skipped_pass()
            self._draw_quarantined(graphic)
            return
        try:
            self._update_subtree(graphic)
        except Exception as exc:
            im = self.interaction_manager()
            if im is not None:
                # Damage this subtree asked for cannot be repaired by
                # its own draw code right now; the placeholder below
                # covers the same cells.
                im.updates.discard(self)
            self.quarantine_failure(exc)
            self._draw_quarantined(graphic)
        else:
            if quarantined is not None:
                self._quarantine = None
                if obs.metrics_on:
                    obs.registry.inc("view.recovered")

    def _update_subtree(self, graphic: Graphic) -> None:
        """Composite from the backing store, or render live."""
        if (
            self.backing_store
            and compositor.enabled
            and self._composite(graphic)
        ):
            return
        self._render_subtree(graphic)

    # -- quarantine (see repro.core.faults) ------------------------------

    def quarantine_failure(self, exc: BaseException) -> None:
        """Record one containment event against this view."""
        quarantined = self._quarantine
        if quarantined is None:
            self._quarantine = quarantined = faults.Quarantine()
            if obs.metrics_on:
                obs.registry.inc("view.quarantined")
        else:
            if obs.metrics_on:
                obs.registry.inc("view.quarantine_hits")
        quarantined.record_failure(exc)

    @property
    def quarantined(self) -> Optional["faults.Quarantine"]:
        """The active quarantine record, or None when healthy."""
        return self._quarantine

    def reset_quarantine(self) -> None:
        """Lift a (possibly sticky) quarantine: the next pass retries live.

        The record itself stays until a render actually succeeds — the
        view proves its own recovery, and ``view.recovered`` keeps
        balancing ``view.quarantined`` in telemetry.  The backoff ladder
        restarts from scratch if the retry fails again.
        """
        quarantined = self._quarantine
        if quarantined is not None:
            quarantined.sticky = False
            quarantined.cooldown = 0
            quarantined.failures = 0
            self.want_update()

    def _draw_quarantined(self, graphic: Graphic) -> None:
        """Paint the placeholder box: border plus the error's name.

        The visual analogue of ATK's unknown-object behaviour — the
        document keeps working around a component it cannot render.
        Drawn with injection suspended (it is toolkit ink, not
        component ink) and double-contained: placeholder drawing must
        never raise.
        """
        with faultinject.suspended():
            try:
                area = self.local_bounds
                graphic.fill_rect(area, 0)
                graphic.draw_rect(area)
                label = self._quarantine.error if self._quarantine else ""
                graphic.draw_string_centered(
                    area, f"[{type(self).__name__}! {label}]"
                )
            except Exception:  # pragma: no cover - last-resort guard
                pass

    def _render_subtree(self, graphic: Graphic) -> None:
        """The unconditional render pass (live window or backing store).

        Order per the paper: the parent paints, then each child in its
        sub-drawable, then :meth:`draw_over` so parents may overlay
        their children.
        """
        if faultinject.enabled:
            faultinject.maybe_raise("view.draw")
        self.ensure_layout()
        self.draw_count += 1
        self.draw(graphic)
        for child in self.children:
            if child.bounds.is_empty():
                continue
            sub = graphic.child(child.bounds)
            if sub.clip.is_empty():
                # Damage culling: the child lies entirely outside the
                # clipped damage region, so its whole subtree is skipped.
                if obs.metrics_on:
                    obs.registry.inc("view.children_culled")
                continue
            child.full_update(sub)
        self.draw_over(graphic)

    def draw(self, graphic: Graphic) -> None:
        """Paint this view's own image.  Override point."""

    def draw_over(self, graphic: Graphic) -> None:
        """Paint after the children (overlays).  Override point."""

    def print_to(self, graphic: Graphic) -> None:
        """Print by drawable swap (§4): redraw into a printer drawable.

        The view keeps no reference to its screen drawable, so printing
        really is just a redraw with a different medium.
        """
        self.full_update(graphic)

    # ------------------------------------------------------------------
    # Mouse events (down the tree, parental authority)
    # ------------------------------------------------------------------

    def child_at(self, point: Point) -> Optional["View"]:
        """Topmost child whose rectangle contains ``point``."""
        for child in reversed(self.children):
            if child.bounds.contains_point(point):
                return child
        return None

    def route_mouse(self, event: MouseEvent) -> Optional["View"]:
        """Decide the disposition of a mouse event (override point).

        Return a child to pass the event down to, or ``None`` to keep
        it here.  The default is geometric — deepest child under the
        point — but subclasses are free to claim events over their
        children (the frame) or interrogate semantics first (the
        drawing view); that freedom is the architecture.
        """
        return self.child_at(event.point)

    def dispatch_mouse(self, event: MouseEvent) -> Optional["View"]:
        """Walk the event down until some view accepts it.

        Returns the accepting view (so the interaction manager can set
        the mouse grab for the rest of the drag), or None.

        With containment on, an exception in *this* view's routing or
        handler quarantines this view and declines the event (a deeper
        view's failure was already contained by its own dispatch).
        """
        try:
            self.ensure_layout()
            child = self.route_mouse(event)
            if child is not None and child is not self:
                handled = child.dispatch_mouse(
                    event.offset(-child.bounds.left, -child.bounds.top)
                )
                if handled is not None:
                    return handled
                # The child declined: the parent gets a second chance.
            return self if self.handle_mouse(event) else None
        except Exception as exc:
            if not faults.enabled:
                raise
            faults.contain_handler(self, exc)
            return None

    def handle_mouse(self, event: MouseEvent) -> bool:
        """Consume a mouse event aimed at this view.  Override point."""
        return False

    # ------------------------------------------------------------------
    # Keyboard (focus + bubbling)
    # ------------------------------------------------------------------

    def handle_key(self, event: KeyEvent) -> bool:
        """Consume one keystroke.  Default: consult the keymap.

        Chord prefixes are resolved by the interaction manager; this
        method only sees whole lookups.
        """
        binding = self.keymap.resolve(event)
        if binding is None or isinstance(binding, Keymap):
            return False
        binding(self, event)
        return True

    def want_input_focus(self) -> bool:
        """Ask to become the keyboard focus (§3 focus negotiation).

        Every ancestor may veto via :meth:`allow_child_focus`.  Returns
        True if focus was granted.
        """
        for ancestor in self.ancestors():
            if not ancestor.allow_child_focus(self):
                return False
        im = self.interaction_manager()
        if im is None:
            return False
        im.set_focus(self)
        return True

    def allow_child_focus(self, child: "View") -> bool:
        """Parental veto point for focus requests from below."""
        return True

    def initial_focus(self) -> "View":
        """The view that should own the keyboard when this subtree does.

        Containers (frame, scroll bar) delegate to their body so that
        installing a wrapped editor gives the editor the keyboard, the
        way the original applications came up ready to type into.
        """
        return self

    def focus_gained(self) -> None:
        """Notification hook: this view is now the keyboard focus."""

    def focus_lost(self) -> None:
        """Notification hook: this view lost the keyboard focus."""

    # ------------------------------------------------------------------
    # Menus
    # ------------------------------------------------------------------

    def menu_card(self, name: str) -> MenuCard:
        """This view's card named ``name``, created on first use."""
        for card in self._menu_cards:
            if card.name == name:
                return card
        card = MenuCard(name)
        self._menu_cards.append(card)
        return card

    def menu_cards(self) -> List[MenuCard]:
        """Cards this view contributes to the effective menu set."""
        return list(self._menu_cards)

    def handle_menu(self, event: MenuEvent) -> bool:
        """Consume a menu choice addressed to this view's own cards."""
        for card in self._menu_cards:
            if card.name == event.card:
                item = card.get(event.item)
                if item is not None:
                    item.handler(self, event)
                    return True
        return False

    # ------------------------------------------------------------------
    # Cursor arbitration
    # ------------------------------------------------------------------

    def cursor_for(self, point: Point) -> Optional[Cursor]:
        """The cursor this view wants at ``point``, before asking a child.

        Returning non-None overrides the subtree — how the frame shows
        its divider cursor over the children's space.
        """
        return None

    def effective_cursor(self, point: Point) -> Optional[Cursor]:
        """Resolve the cursor at ``point`` with parental authority."""
        self.ensure_layout()
        own = self.cursor_for(point)
        if own is not None:
            return own
        child = self.child_at(point)
        if child is not None:
            found = child.effective_cursor(
                point.offset(-child.bounds.left, -child.bounds.top)
            )
            if found is not None:
                return found
        return self.cursor

    # ------------------------------------------------------------------
    # Size negotiation (embedding)
    # ------------------------------------------------------------------

    def desired_size(self, width: int, height: int) -> Tuple[int, int]:
        """How much of an offered ``width`` x ``height`` this view wants.

        Host views (text, table) call this to size embedded children —
        the paper's "how to determine the size and placement of embedded
        components".  The default accepts the whole offer.
        """
        return (width, height)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def destroy(self) -> None:
        if not self.destroyed:
            self.set_dataobject(None)
            im = self.interaction_manager()
            if im is not None:
                im.view_unlinked(self)
            for child in list(self.children):
                child.destroy()
            if self.parent is not None:
                self.parent.remove_child(self)
        super().destroy()

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.bounds.width}x{self.bounds.height}"
            f"+{self.bounds.left}+{self.bounds.top}>"
        )
