"""The per-view backing-store compositor switch (paper section 4).

The paper's porting layer names an **OffScreenWindow** class that
components use to "pre-compose images".  The compositor generalizes
that: any view may opt in to a *backing store* — a lazily allocated
offscreen surface caching the subtree's last rendered image — so a
repaint pass over a *clean* subtree (no pending change records, no
descendant damage) is satisfied by a single blit instead of
re-executing the subtree's draw code.

Two gates must both be open for a view to composite:

* the view opted in with :meth:`~repro.core.view.View.set_backing_store`
  (the caller asserts the subtree's image is self-contained — it never
  reads pixels an ancestor painted underneath it); and
* the process-wide switch below, controlled by the ``ANDREW_COMPOSITOR``
  environment variable (off by default) or flipped at run time with
  :func:`configure` — the same shape as ``repro.obs``'s switches.

The surface byte-budget lives with the pool that enforces it
(:class:`repro.wm.base.SurfacePool`, ``ANDREW_COMPOSITOR_BUDGET``).
Snapshot-equivalence tests (``tests/test_compositor.py``) prove that
rendering with the switch on is pixel-identical to rendering with it
off on both backends.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["COMPOSITOR_ENV", "enabled", "compositor_enabled", "configure"]

COMPOSITOR_ENV = "ANDREW_COMPOSITOR"

_TRUTHY = {"1", "true", "yes", "on"}


def _env_on(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in _TRUTHY


#: Hot-path switch.  The view tree reads this module attribute directly:
#: ``if compositor.enabled and self.backing_store: ...``.
enabled: bool = _env_on(COMPOSITOR_ENV)


def compositor_enabled() -> bool:
    return enabled


def configure(on: Optional[bool] = None) -> None:
    """Flip the compositor at run time (tests, benches, embedding apps).

    ``None`` leaves the switch unchanged.  Turning the switch off does
    not free existing backing stores; they simply stop being consulted
    (and keep aging out of the LRU pool as other surfaces are acquired).
    """
    global enabled
    if on is not None:
        enabled = bool(on)
