"""Application base class.

Every Andrew application (EZ, messages, help, typescript, console,
preview) is a thin shell: create an interaction manager, build a view
tree, translate events.  :class:`Application` captures that shape.

Applications are themselves toolkit classes registered by name (as
``<name>app``), which is what lets :mod:`repro.core.runapp` launch them
dynamically from a single base program.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, List, Optional, Tuple

from .. import obs
from ..class_system.registry import ATKObject
from ..wm.base import WindowSystem
from ..wm.switch import get_window_system
from .dataobject import DataObject
from .datastream import DataStreamError, read_document, write_document
from .im import InteractionManager
from .view import View

__all__ = ["Application", "atomic_write_bytes"]


def atomic_write_bytes(path, payload: bytes,
                       _crash: Optional[Callable[[str], None]] = None) -> None:
    """Write ``payload`` to ``path`` without ever corrupting it.

    The shared crash-safe write: a temporary file in the target
    directory, fsynced, then moved into place with ``os.replace``; the
    previous version (if any) survives as ``<path>.bak``.  A crash at
    any step leaves either the old file, the ``.bak``, or the complete
    new file — never a truncated one.  ``Application.save_document``
    and the server supervisor's session checkpoints both write through
    here.

    ``_crash`` is a test hook: called with a step name (``"tmp"``,
    ``"bak"``, ``"replace"``) just before that step's rename, so
    kill-between-steps tests can die at every seam.
    """
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o666)
    try:
        os.write(fd, payload)
        os.fsync(fd)
    finally:
        os.close(fd)
    if _crash is not None:
        _crash("tmp")
    if target.exists():
        os.replace(target, target.with_name(target.name + ".bak"))
        if _crash is not None:
            _crash("bak")
    os.replace(tmp, target)
    if _crash is not None:
        _crash("replace")
    if obs.metrics_on:
        obs.registry.inc("io.atomic_saves")


class Application(ATKObject):
    """One running application: a window system, an IM, a view tree."""

    atk_register = False

    #: Short name; the class registers as ``<app_name>app``.
    app_name = "application"
    #: Default window size in device units (cells for the ascii backend).
    default_size: Tuple[int, int] = (80, 24)

    def __init__(self, window_system: Optional[WindowSystem] = None,
                 width: Optional[int] = None,
                 height: Optional[int] = None) -> None:
        super().__init__()
        self.window_system = (
            window_system if window_system is not None else get_window_system()
        )
        w = width if width is not None else self.default_size[0]
        h = height if height is not None else self.default_size[1]
        self.im = InteractionManager(
            self.window_system, title=self.app_name, width=w, height=h
        )
        self.build()
        self.im.flush_updates()

    # -- construction -------------------------------------------------------

    def build(self) -> None:
        """Create the view tree and install it with ``im.set_child``."""
        raise NotImplementedError

    @property
    def root_view(self) -> Optional[View]:
        return self.im.child

    # -- event pump ----------------------------------------------------------

    def process(self) -> int:
        """Handle all pending input; returns the event count."""
        return self.im.process_events()

    def render(self) -> List[str]:
        """Force a full repaint and return the window snapshot."""
        self.im.redraw()
        return self.im.snapshot_lines()

    def snapshot(self) -> str:
        return "\n".join(self.render())

    # -- documents -----------------------------------------------------------

    def save_document(self, obj: DataObject, path,
                      _crash: Optional[Callable[[str], None]] = None) -> None:
        """Write ``obj`` to ``path``; never corrupts an existing save.

        The document is serialised and validated *before* the filesystem
        is touched, then written to a temporary file in the target
        directory, fsynced, and moved into place with ``os.replace`` —
        the previous version (if any) survives as ``<path>.bak``.  A
        crash at any step leaves either the old document, the ``.bak``,
        or the complete new file; never a truncated one.

        Raises :class:`DataStreamError` (with the offending character
        offset) instead of an opaque ``UnicodeEncodeError`` when the
        serialised form is not 7-bit ASCII.

        ``_crash`` is a test hook: called with a step name (``"tmp"``,
        ``"bak"``, ``"replace"``) just before that step's rename, so the
        kill-between-steps test can die at every seam.
        """
        text = write_document(obj)
        try:
            payload = text.encode("ascii")
        except UnicodeEncodeError as exc:
            raise DataStreamError(
                f"document is not 7-bit ASCII: {exc.object[exc.start]!r} "
                f"at offset {exc.start}"
            ) from exc
        atomic_write_bytes(path, payload, _crash)

    def open_document(self, path, salvage: bool = False) -> DataObject:
        """Read a document; embedded component code loads on demand.

        With ``salvage=True`` unreadable embedded objects come back as
        :class:`~repro.core.datastream.UnknownObject` placeholders.
        """
        try:
            text = Path(path).read_text(encoding="ascii")
        except UnicodeDecodeError as exc:
            raise DataStreamError(
                f"document is not 7-bit ASCII: byte {exc.object[exc.start]!r} "
                f"at offset {exc.start}"
            ) from exc
        return read_document(text, salvage=salvage)

    # -- lifecycle ------------------------------------------------------------

    def destroy(self) -> None:
        if not self.destroyed:
            self.im.close()
        super().destroy()

    def __repr__(self) -> str:
        return f"<application {self.app_name}>"
