"""Application base class.

Every Andrew application (EZ, messages, help, typescript, console,
preview) is a thin shell: create an interaction manager, build a view
tree, translate events.  :class:`Application` captures that shape.

Applications are themselves toolkit classes registered by name (as
``<name>app``), which is what lets :mod:`repro.core.runapp` launch them
dynamically from a single base program.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple

from ..class_system.registry import ATKObject
from ..wm.base import WindowSystem
from ..wm.switch import get_window_system
from .dataobject import DataObject
from .datastream import read_document, write_document
from .im import InteractionManager
from .view import View

__all__ = ["Application"]


class Application(ATKObject):
    """One running application: a window system, an IM, a view tree."""

    atk_register = False

    #: Short name; the class registers as ``<app_name>app``.
    app_name = "application"
    #: Default window size in device units (cells for the ascii backend).
    default_size: Tuple[int, int] = (80, 24)

    def __init__(self, window_system: Optional[WindowSystem] = None,
                 width: Optional[int] = None,
                 height: Optional[int] = None) -> None:
        super().__init__()
        self.window_system = (
            window_system if window_system is not None else get_window_system()
        )
        w = width if width is not None else self.default_size[0]
        h = height if height is not None else self.default_size[1]
        self.im = InteractionManager(
            self.window_system, title=self.app_name, width=w, height=h
        )
        self.build()
        self.im.flush_updates()

    # -- construction -------------------------------------------------------

    def build(self) -> None:
        """Create the view tree and install it with ``im.set_child``."""
        raise NotImplementedError

    @property
    def root_view(self) -> Optional[View]:
        return self.im.child

    # -- event pump ----------------------------------------------------------

    def process(self) -> int:
        """Handle all pending input; returns the event count."""
        return self.im.process_events()

    def render(self) -> List[str]:
        """Force a full repaint and return the window snapshot."""
        self.im.redraw()
        return self.im.snapshot_lines()

    def snapshot(self) -> str:
        return "\n".join(self.render())

    # -- documents -----------------------------------------------------------

    def save_document(self, obj: DataObject, path) -> None:
        """Write ``obj`` to ``path`` in the external representation."""
        Path(path).write_text(write_document(obj), encoding="ascii")

    def open_document(self, path) -> DataObject:
        """Read a document; embedded component code loads on demand."""
        return read_document(Path(path).read_text(encoding="ascii"))

    # -- lifecycle ------------------------------------------------------------

    def destroy(self) -> None:
        if not self.destroyed:
            self.im.close()
        super().destroy()

    def __repr__(self) -> str:
        return f"<application {self.app_name}>"
