"""``repro.testing`` — deterministic chaos tooling for the toolkit.

The fault-injection harness lives here rather than under ``tests/``
because it is part of the product's robustness story: the same seams
that the conformance chaos matrix drives in CI can be switched on in a
staging deployment (``ANDREW_FAULTS=<seed>:<rate>``) to rehearse
component failures against real documents.
"""

from .faultinject import (
    FAULTS_ENV,
    FaultInjector,
    InjectedFault,
    configure,
    maybe_raise,
    suspended,
)

__all__ = [
    "FAULTS_ENV",
    "FaultInjector",
    "InjectedFault",
    "configure",
    "maybe_raise",
    "suspended",
]
