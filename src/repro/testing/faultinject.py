"""Deterministic, seeded fault injection (the chaos half of robustness).

The fault-containment layer (:mod:`repro.core.faults`) promises that a
misbehaving component degrades to a placeholder instead of taking the
window down.  This module *proves* it: a seeded injector raises
:class:`InjectedFault` at instrumented seams on a deterministic
schedule, and the conformance chaos matrix asserts that every injected
fault is contained and accounted for in telemetry.

Seams (each names the third-party code it stands in for):

``view.draw``
    A view's ``draw``/``layout`` raising mid-repaint
    (:meth:`repro.core.view.View._render_subtree`).
``wm.device``
    A backend device op failing under a view's ink
    (:meth:`repro.graphics.graphic.Graphic` emit dispatchers).
``observer.notify``
    An observer blowing up on delivery
    (:meth:`repro.class_system.observable.Observable.notify_observers`).
``datastream.read``
    An embedded object's ``read_body`` dying on its own data
    (:meth:`repro.core.datastream.DataStreamReader.read_object`).
``remote.send``
    A lossy remote-display transport: the sender turns a crossing into
    a dropped or short-written frame instead of an exception
    (:func:`repro.remote.transport.faulty_send`), and the chaos suite
    proves the renderer resynchronizes at the next keyframe.
``remote.connect``
    A remote transport (re)connect attempt dying — the peer is down,
    the route is gone (:meth:`repro.remote.reconnect.ReconnectingSink.
    _try_connect`); the reconnect layer backs off and retries.
``server.pump``
    A session's application code dying at slice time, before any event
    moves (:meth:`repro.server.session.Session.pump`); the server loop
    contains it at the session boundary and the supervisor's crash
    ladder (contain → restart-from-checkpoint → sticky-dead) engages.

Switched on by ``ANDREW_FAULTS=<seed>:<rate>`` (e.g. ``1234:0.05``) or
at run time with :func:`configure`.  The schedule is a function of the
seed and the *sequence of seam calls only*, so a failing run replays
exactly under the same seed.  Off by default; the off path is one
module-attribute check per seam.
"""

from __future__ import annotations

import contextlib
import os
import random
from typing import Iterator, Optional, Tuple

from .. import obs

__all__ = [
    "FAULTS_ENV",
    "SEAMS",
    "FaultInjector",
    "InjectedFault",
    "configure",
    "injector",
    "maybe_raise",
    "suspended",
]

FAULTS_ENV = "ANDREW_FAULTS"

#: The instrumented seams, for validation and reporting.
SEAMS = ("view.draw", "wm.device", "observer.notify", "datastream.read",
         "remote.send", "remote.connect", "server.pump")


class InjectedFault(RuntimeError):
    """The exception every injected fault raises.

    A ``RuntimeError`` subclass on purpose: containment code must never
    special-case it — whatever catches an injected fault would have
    caught the real component bug it stands in for.
    """

    def __init__(self, seam: str, ordinal: int) -> None:
        self.seam = seam
        self.ordinal = ordinal
        super().__init__(f"injected fault #{ordinal} at seam {seam!r}")


def parse_spec(spec: str) -> Optional[Tuple[int, float]]:
    """Parse ``<seed>:<rate>``; returns None when malformed or rate<=0."""
    parts = spec.strip().split(":")
    if len(parts) != 2:
        return None
    try:
        seed, rate = int(parts[0]), float(parts[1])
    except ValueError:
        return None
    if not 0.0 < rate <= 1.0:
        return None
    return seed, rate


class FaultInjector:
    """Raises at seams on a seeded pseudo-random schedule."""

    def __init__(self, seed: int, rate: float,
                 seams: Optional[Tuple[str, ...]] = None) -> None:
        self.seed = seed
        self.rate = rate
        self.seams = SEAMS if seams is None else tuple(seams)
        self._rng = random.Random(seed)
        self._suspend = 0
        self.calls = 0
        self.fired = 0

    def maybe_raise(self, seam: str) -> None:
        """One seam crossing: raise :class:`InjectedFault` or return.

        Suspended crossings (toolkit-internal drawing such as the
        quarantine placeholder, or the IM's own damage prefill) do not
        consume schedule entries, so suspension never shifts the
        schedule of the component seams around it.
        """
        if self._suspend or seam not in self.seams:
            return
        self.calls += 1
        if self._rng.random() >= self.rate:
            return
        self.fired += 1
        if obs.metrics_on:
            obs.registry.inc("faults.injected")
            obs.registry.inc(f"faults.injected.{seam}")
        raise InjectedFault(seam, self.fired)

    @contextlib.contextmanager
    def suspended_region(self) -> Iterator[None]:
        self._suspend += 1
        try:
            yield
        finally:
            self._suspend -= 1

    def __repr__(self) -> str:
        return (
            f"<FaultInjector seed={self.seed} rate={self.rate} "
            f"fired={self.fired}/{self.calls}>"
        )


def _from_env() -> Optional[FaultInjector]:
    spec = os.environ.get(FAULTS_ENV, "").strip()
    if not spec:
        return None
    parsed = parse_spec(spec)
    if parsed is None:
        return None
    return FaultInjector(*parsed)


#: The process-wide injector (None = off).  Seams read the ``enabled``
#: flag first — one attribute test is the whole off-path cost.
injector: Optional[FaultInjector] = _from_env()
enabled: bool = injector is not None


def configure(seed: Optional[int] = None, rate: float = 0.05,
              seams: Optional[Tuple[str, ...]] = None) -> Optional[FaultInjector]:
    """Install a fresh injector (or disable with ``seed=None``).

    Returns the active injector so tests can read ``fired``/``calls``.
    """
    global injector, enabled
    if seed is None:
        injector = None
        enabled = False
        return None
    injector = FaultInjector(seed, rate, seams)
    enabled = True
    return injector


def maybe_raise(seam: str) -> None:
    """Module-level seam entry point (no-op when injection is off)."""
    active = injector
    if active is not None:
        active.maybe_raise(seam)


class _NullRegion:
    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return None


_NULL_REGION = _NullRegion()


def suspended():
    """Context manager: seams inside do not fire (toolkit-internal ink)."""
    active = injector
    if active is None:
        return _NULL_REGION
    return active.suspended_region()
