"""Baselines the paper compares its design against."""

from .geometric_router import GeometricRouter

__all__ = ["GeometricRouter"]
