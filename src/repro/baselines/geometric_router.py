"""The geometric event router: the baseline section 3 argues against.

"Other systems closely tie the handling of events to the physical
relationship of components on the screen.  If a component is physically
on top of another component it will block the transmission of certain
events to the lower component ... Further, many toolkits use a global
analysis of all views in order to process and distribute events."

:class:`GeometricRouter` is that model, reimplemented over the same
view tree: it flattens the tree to screen rectangles and delivers every
mouse event to the *smallest/deepest rectangle containing the point* —
no parent is consulted.  It reproduces the two §3 failure cases:

* clicking a line drawn over embedded text goes to the text (the
  drawing's shape list is semantics the router cannot see);
* grabbing just beside the frame's divider goes to a child (the
  enlarged grab zone overlaps child rectangles, which geometry cannot
  honour).

Experiment E13 routes the same event set through this router and the
toolkit's parental dispatch and scores the outcomes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.view import View
from ..graphics.geometry import Point, Rect
from ..wm.events import MouseEvent

__all__ = ["GeometricRouter"]


class GeometricRouter:
    """Global, physical-model event distribution over a view tree."""

    def __init__(self, root: View) -> None:
        self.root = root
        self.dispatch_count = 0

    def _flatten(self) -> List[Tuple[View, Rect, int]]:
        """Every view with its window-space rectangle and depth."""
        out: List[Tuple[View, Rect, int]] = []

        def walk(view: View, origin: Point, depth: int) -> None:
            view.ensure_layout()
            rect = Rect(
                origin.x + view.bounds.left,
                origin.y + view.bounds.top,
                view.bounds.width,
                view.bounds.height,
            )
            out.append((view, rect, depth))
            child_origin = Point(rect.left, rect.top)
            for child in view.children:
                walk(child, child_origin, depth + 1)

        walk(self.root, Point(0, 0), 0)
        return out

    def target_at(self, point: Point) -> Optional[View]:
        """The deepest (then topmost) view whose rectangle holds the point.

        This is the "global analysis": one table of rectangles, one
        containment query, no view gets a say.
        """
        best: Optional[Tuple[View, Rect, int]] = None
        for view, rect, depth in self._flatten():
            if rect.is_empty() or not rect.contains_point(point):
                continue
            if best is None or depth >= best[2]:
                best = (view, rect, depth)
        return None if best is None else best[0]

    def dispatch(self, event: MouseEvent) -> Optional[View]:
        """Deliver ``event`` (window coordinates) geometrically.

        The chosen view's ``handle_mouse`` is called with coordinates
        translated into its space; no parent can intercept, no child
        can decline upward.
        """
        self.dispatch_count += 1
        target = self.target_at(event.point)
        if target is None:
            return None
        origin = target.origin_in_window()
        target.handle_mouse(event.offset(-origin.x, -origin.y))
        return target
