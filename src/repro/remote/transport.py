"""Frame sinks: where an encoded frame goes after ``flush``.

A sink is anything with ``send(data: bytes) -> None`` (and an optional
``close()``).  Three ship with the toolkit:

* :class:`CaptureSink` — collects raw frame bytes in memory; the
  deterministic in-process pipe benches and golden tests use.
* :class:`RendererSink` — feeds a :class:`~repro.remote.renderer.
  RemoteRenderer` directly, optionally through a chunker that splits
  writes to exercise partial-frame buffering.
* :class:`SocketSink` — a loopback (or any TCP) socket to a remote
  renderer process.

Sends cross the ``remote.send`` fault seam
(:mod:`repro.testing.faultinject`): under an armed ``ANDREW_FAULTS``
schedule a crossing drops the whole frame (even ordinals) or truncates
the write (odd ordinals) instead of raising — simulating a lossy
transport so the chaos suite can prove the renderer resynchronizes at
the next keyframe.  ``frames_dropped`` counts both.
"""

from __future__ import annotations

import socket
from typing import List, Optional

from .. import obs
from ..testing import faultinject

__all__ = ["CaptureSink", "RendererSink", "SocketSink", "FanoutSink",
           "faulty_send"]


def faulty_send(sink, data: bytes) -> None:
    """Send ``data`` through ``sink.send`` via the fault seam.

    An injected fault at ``remote.send`` becomes transport loss, not an
    exception: odd ordinals short-write the first half of the frame,
    even ordinals drop it entirely.  The sender deliberately does NOT
    force a keyframe — recovery must come from the renderer's resync
    scan plus the periodic keyframe, which is the property the chaos
    tests pin down.
    """
    try:
        faultinject.maybe_raise("remote.send")
    except faultinject.InjectedFault as fault:
        if obs.metrics_on:
            obs.registry.inc("remote.frames_dropped")
        if fault.ordinal % 2 == 1:
            sink.send(data[:max(1, len(data) // 2)])
        return
    sink.send(data)


class CaptureSink:
    """Collects frames in memory (deterministic tests and benches)."""

    def __init__(self) -> None:
        self.frames: List[bytes] = []
        self.closed = False

    def send(self, data: bytes) -> None:
        self.frames.append(data)

    @property
    def total_bytes(self) -> int:
        return sum(len(frame) for frame in self.frames)

    def stream(self) -> bytes:
        return b"".join(self.frames)

    def close(self) -> None:
        self.closed = True


class RendererSink:
    """The in-process pipe: bytes go straight into a renderer's feed.

    ``chunk_size`` splits each send into smaller writes so tests
    exercise the renderer's partial-frame buffering on a deterministic
    transport.
    """

    def __init__(self, renderer, chunk_size: Optional[int] = None) -> None:
        self.renderer = renderer
        self.chunk_size = chunk_size

    def send(self, data: bytes) -> None:
        if self.chunk_size is None:
            self.renderer.feed(data)
            return
        for start in range(0, len(data), self.chunk_size):
            self.renderer.feed(data[start:start + self.chunk_size])

    def close(self) -> None:
        pass


class SocketSink:
    """Frames over a TCP (normally loopback) socket.

    A dead peer is transport loss, not an application error — but not
    *silent* loss: the first failed send counts ``remote.send_errors``,
    records the exception on :attr:`last_error`, closes the socket
    (writing to a dead file descriptor helps nobody) and flips
    :attr:`alive`; ``on_broken`` (if set) fires exactly once so a
    reconnect layer can take over.  Later sends drop without another
    syscall.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7788,
                 *, sock: Optional[socket.socket] = None,
                 on_broken=None) -> None:
        if sock is None:
            sock = socket.create_connection((host, port))
        self._sock = sock
        self.alive = True
        self.send_errors = 0
        self.last_error: Optional[OSError] = None
        #: Called once, with this sink, when the first send fails.
        self.on_broken = on_broken

    def send(self, data: bytes) -> None:
        if not self.alive:
            return
        try:
            self._sock.sendall(data)
        except OSError as exc:
            self.send_errors += 1
            self.last_error = exc
            if obs.metrics_on:
                obs.registry.inc("remote.send_errors")
            self.close()
            if self.on_broken is not None:
                self.on_broken(self)

    def close(self) -> None:
        self.alive = False
        try:
            self._sock.close()
        except OSError:
            pass


class FanoutSink:
    """One sender, N sinks (a session mirrored to many viewers)."""

    def __init__(self, sinks: Optional[list] = None) -> None:
        self.sinks: list = list(sinks) if sinks else []

    def add(self, sink) -> None:
        self.sinks.append(sink)

    def remove(self, sink) -> None:
        self.sinks.remove(sink)

    def send(self, data: bytes) -> None:
        for sink in self.sinks:
            sink.send(data)

    def close(self) -> None:
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()
