"""The dumb remote renderer: decode frames, apply them to a surface.

The renderer owns no toolkit state — no views, no data objects, no
layout.  It holds one replica surface per target (a
:class:`~repro.wm.ascii_ws.CellSurface` or a
:class:`~repro.graphics.image.Bitmap`) and applies decoded ops through
the *same device primitives* the local backends use, which is what
makes byte-identity against a local run checkable (and is how the
encoder predicts renderer state for its repair diff — both sides share
:class:`AsciiApplier`/:class:`RasterApplier`).

Stream robustness (:meth:`RemoteRenderer.feed`):

* partial frames buffer until complete;
* corrupt bytes (bad magic, checksum mismatch, truncation mid-stream)
  never raise out of ``feed`` — the renderer scans forward for the next
  frame magic and waits for a keyframe (``resyncs`` counts these);
* a delta frame that is out of sequence, wrongly sized, or arrives
  before any keyframe is skipped (``frames_skipped``) and the renderer
  stays desynchronized until the next keyframe, which always applies.

Run as a module for the two-terminal loopback demo::

    PYTHONPATH=src python -m repro.remote.renderer --listen 7788
"""

from __future__ import annotations

import socket
from typing import List, Optional

from .. import obs
from ..graphics.fontdesc import FontDesc
from ..graphics.geometry import Rect
from ..graphics.image import Bitmap
from ..wm.ascii_ws import AsciiGraphic, CellSurface
from ..wm.raster_ws import RasterGraphic, RequestCounter
from . import wire
from .wire import WireError

__all__ = ["AsciiApplier", "RasterApplier", "RemoteRenderer",
           "make_applier"]


class AsciiApplier:
    """Applies decoded ops to a :class:`CellSurface` replica."""

    target = "ascii"

    def __init__(self, surface: CellSurface) -> None:
        self.surface = surface
        self._graphic = AsciiGraphic(surface)

    def apply(self, op: tuple) -> None:
        kind = op[0]
        graphic = self._graphic
        if kind == "fill":
            graphic.device_fill_rect(Rect(op[1], op[2], op[3], op[4]), op[5])
        elif kind == "text":
            base_clip = graphic.clip
            graphic.clip = Rect(op[5], op[6], op[7], op[8])
            try:
                graphic.device_draw_text(op[1], op[2], op[3],
                                         FontDesc.from_spec(op[4]))
            finally:
                graphic.clip = base_clip
        elif kind == "hline":
            graphic.device_hline(op[1], op[2], op[3], op[4])
        elif kind == "vline":
            graphic.device_vline(op[1], op[2], op[3], op[4])
        elif kind == "pixel":
            graphic.device_set_pixel(op[1], op[2], op[3])
        elif kind == "copy":
            graphic.device_copy_area(Rect(op[1], op[2], op[3], op[4]),
                                     op[5], op[6])
        elif kind == "blit":
            width, height, bits = op[1]
            bitmap = Bitmap(width, height)
            bitmap._bits[:] = bits
            graphic.device_blit(bitmap, op[2], op[3])
        elif kind == "cells":
            _, y, x0, chars, inverse, bold = op
            inv_bits = wire.unpack_bits(inverse, len(chars))
            bold_bits = wire.unpack_bits(bold, len(chars))
            surface = self.surface
            for i, char in enumerate(chars):
                surface.put(x0 + i, y, char,
                            inverse=inv_bits[i], bold=bold_bits[i])
        elif kind == "grid":
            _, chars, inverse, bold = op
            surface = self.surface
            size = surface.width * surface.height
            if len(chars) != size:
                raise WireError(
                    f"grid of {len(chars)} chars for a {size}-cell surface"
                )
            surface._chars[:] = list(chars)
            surface._inverse[:] = wire.unpack_bits(inverse, size)
            surface._bold[:] = wire.unpack_bits(bold, size)
        else:
            raise WireError(f"op {kind!r} is not valid on an ascii target")


class RasterApplier:
    """Applies decoded ops to a :class:`Bitmap` replica."""

    target = "raster"

    def __init__(self, framebuffer: Bitmap,
                 requests: Optional[RequestCounter] = None) -> None:
        self.framebuffer = framebuffer
        self.requests = requests if requests is not None else RequestCounter()
        self._graphic = RasterGraphic(framebuffer, self.requests)

    def apply(self, op: tuple) -> None:
        kind = op[0]
        graphic = self._graphic
        if kind == "fill":
            graphic.device_fill_rect(Rect(op[1], op[2], op[3], op[4]), op[5])
        elif kind == "text":
            base_clip = graphic.clip
            graphic.clip = Rect(op[5], op[6], op[7], op[8])
            try:
                graphic.device_draw_text(op[1], op[2], op[3],
                                         FontDesc.from_spec(op[4]))
            finally:
                graphic.clip = base_clip
        elif kind == "hline":
            graphic.device_hline(op[1], op[2], op[3], op[4])
        elif kind == "vline":
            graphic.device_vline(op[1], op[2], op[3], op[4])
        elif kind == "pixel":
            graphic.device_set_pixel(op[1], op[2], op[3])
        elif kind == "copy":
            graphic.device_copy_area(Rect(op[1], op[2], op[3], op[4]),
                                     op[5], op[6])
        elif kind == "blit":
            width, height, bits = op[1]
            bitmap = Bitmap(width, height)
            bitmap._bits[:] = bits
            graphic.device_blit(bitmap, op[2], op[3])
        elif kind == "rowbits":
            _, y, x0, count, packed = op
            fb = self.framebuffer
            if not 0 <= y < fb.height:
                return
            bits = wire.unpack_bits(packed, count)
            start = max(0, -x0)
            stop = min(count, fb.width - x0)
            if stop <= start:
                return
            base = y * fb.width + x0
            fb._bits[base + start:base + stop] = bits[start:stop]
        elif kind == "snapshot":
            width, height, bits = op[1]
            fb = self.framebuffer
            if (width, height) != (fb.width, fb.height):
                raise WireError(
                    f"snapshot {width}x{height} for a "
                    f"{fb.width}x{fb.height} framebuffer"
                )
            fb._bits[:] = bits
        else:
            raise WireError(f"op {kind!r} is not valid on a raster target")


def make_applier(target: str, surface):
    """The applier for ``target`` over an existing replica surface."""
    if target == "ascii":
        return AsciiApplier(surface)
    if target == "raster":
        return RasterApplier(surface)
    raise ValueError(f"unknown target {target!r}")


def _new_surface(target: str, width: int, height: int):
    return (CellSurface(width, height) if target == "ascii"
            else Bitmap(width, height))


class RemoteRenderer:
    """A stream consumer maintaining a replica of one remote window.

    ``surface`` (ascii) / ``framebuffer`` (raster) expose the replica
    in the same attribute shape as the local backends, so a conformance
    fingerprint reads a renderer exactly like a window.  ``flush`` is a
    no-op for the same reason — the replica is always settled.
    """

    def __init__(self, on_frame=None) -> None:
        self.surface: Optional[CellSurface] = None
        self.framebuffer: Optional[Bitmap] = None
        self.target: Optional[str] = None
        self.width = 0
        self.height = 0
        self.frames_applied = 0
        self.frames_skipped = 0
        self.resyncs = 0
        self.bytes_received = 0
        self.pings_received = 0
        #: Sender's last shipped seq as of the latest ping (liveness).
        self.last_ping_seq: Optional[int] = None
        self.last_seq: Optional[int] = None
        self._on_frame = on_frame
        self._buffer = bytearray()
        self._applier = None
        self._prev_ops: List[tuple] = []
        self._awaiting_keyframe = True

    # -- stream input ---------------------------------------------------

    def feed(self, data: bytes) -> int:
        """Consume raw stream bytes; returns frames applied this call.

        Never raises on wire corruption: damaged spans are skipped (the
        scanner hunts for the next frame magic) and the replica waits
        for a keyframe.
        """
        self.bytes_received += len(data)
        if obs.metrics_on:
            obs.registry.inc("remote.bytes_received", len(data))
        buf = self._buffer
        buf += data
        applied = 0
        offset = 0
        while offset < len(buf):
            try:
                decoded = wire.decode_frame(buf, offset, partial=True)
            except WireError:
                offset = self._resync(buf, offset)
                continue
            if decoded is None:
                break  # incomplete: wait for more bytes
            frame, offset = decoded
            if self._handle(frame):
                applied += 1
        del buf[:offset]
        return applied

    def _resync(self, buf: bytearray, offset: int) -> int:
        """Skip corrupt bytes; next plausible frame start (or EOF)."""
        self.resyncs += 1
        self._awaiting_keyframe = True
        if obs.metrics_on:
            obs.registry.inc("remote.resyncs")
        next_magic = buf.find(wire.MAGIC, offset + 1)
        return next_magic if next_magic != -1 else len(buf)

    # -- frame application ----------------------------------------------

    def _handle(self, frame) -> bool:
        if isinstance(frame, wire.Ping):
            # Liveness only: note the sender's position, touch nothing
            # else — a ping between deltas must not break the seq chain.
            self.pings_received += 1
            self.last_ping_seq = frame.seq
            if obs.metrics_on:
                obs.registry.inc("remote.pings_received")
            return False
        if isinstance(frame, wire.Hello):
            # Hellos flow renderer -> server; one arriving here is a
            # misdirected stream, not corruption.  Ignore it.
            return False
        if frame.keyframe:
            return self._apply_keyframe(frame)
        if (self._awaiting_keyframe
                or frame.target != self.target
                or (frame.width, frame.height) != (self.width, self.height)
                or (self.last_seq is not None
                    and frame.seq != self.last_seq + 1)):
            self._skip()
            return False
        try:
            ops = wire.expand_refs(frame.ops, self._prev_ops)
            for op in ops:
                self._applier.apply(op)
        except WireError:
            self._skip()
            return False
        self._prev_ops = ops
        self.last_seq = frame.seq
        self._applied()
        return True

    def _apply_keyframe(self, frame: wire.Frame) -> bool:
        surface = _new_surface(frame.target, frame.width, frame.height)
        applier = make_applier(frame.target, surface)
        try:
            for op in frame.ops:
                applier.apply(op)
        except WireError:
            self._skip()
            return False
        self.target = frame.target
        self.width, self.height = frame.width, frame.height
        self._applier = applier
        if frame.target == "ascii":
            self.surface, self.framebuffer = surface, None
        else:
            self.surface, self.framebuffer = None, surface
        self._prev_ops = list(frame.ops)
        self.last_seq = frame.seq
        self._awaiting_keyframe = False
        self._applied()
        return True

    def _skip(self) -> None:
        self.frames_skipped += 1
        self._awaiting_keyframe = True
        if obs.metrics_on:
            obs.registry.inc("remote.frames_skipped")

    def _applied(self) -> None:
        self.frames_applied += 1
        if obs.metrics_on:
            obs.registry.inc("remote.frames_applied")
        if self._on_frame is not None:
            self._on_frame(self)

    # -- observation ----------------------------------------------------

    @property
    def synchronized(self) -> bool:
        """True when the replica tracks the sender's frame sequence."""
        return not self._awaiting_keyframe

    def hello(self) -> bytes:
        """The resume handshake this renderer would send on (re)attach.

        Encodes the last seq actually *applied* while synchronized
        (``-1`` for a fresh or desynchronized replica, which asks for a
        keyframe) — the server replays everything after it.
        """
        last = self.last_seq if self.synchronized and \
            self.last_seq is not None else -1
        return wire.encode_hello(last)

    def flush(self) -> None:
        """No-op: a replica is always settled (fingerprint parity)."""

    def snapshot_lines(self, cell_width: int = 6,
                       cell_height: int = 8) -> List[str]:
        """The replica as printable text (density blocks for raster)."""
        if self.surface is not None:
            return self.surface.lines()
        if self.framebuffer is None:
            return []
        fb = self.framebuffer
        lines = []
        for cy in range(0, fb.height, cell_height):
            row = []
            for cx in range(0, fb.width, cell_width):
                ink = total = 0
                for y in range(cy, min(cy + cell_height, fb.height)):
                    base = y * fb.width
                    for x in range(cx, min(cx + cell_width, fb.width)):
                        ink += fb._bits[base + x]
                        total += 1
                density = ink / total if total else 0
                row.append(" " if density == 0 else
                           "." if density < 0.2 else
                           "+" if density < 0.5 else "#")
            lines.append("".join(row))
        return lines

    def __repr__(self) -> str:
        state = "synced" if self.synchronized else "awaiting-keyframe"
        return (
            f"<RemoteRenderer {self.target or 'idle'} "
            f"{self.width}x{self.height} {state} "
            f"applied={self.frames_applied}>"
        )


def main(argv=None) -> int:
    """Listen on a loopback port and render incoming frames as text."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Dumb renderer for the repro remote display protocol."
    )
    parser.add_argument("--listen", type=int, default=7788,
                        help="loopback port to listen on (default 7788)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    args = parser.parse_args(argv)

    def show(renderer: RemoteRenderer) -> None:
        print(f"\n--- frame {renderer.frames_applied} "
              f"({renderer.target} {renderer.width}x{renderer.height}) ---")
        for line in renderer.snapshot_lines():
            print(line)

    renderer = RemoteRenderer(on_frame=show)
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as server:
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((args.host, args.listen))
        server.listen(1)
        print(f"renderer: waiting on {args.host}:{args.listen} ...")
        conn, addr = server.accept()
        print(f"renderer: application connected from {addr}")
        with conn:
            while True:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                renderer.feed(chunk)
    print(f"renderer: stream closed after {renderer.frames_applied} frames "
          f"({renderer.bytes_received} bytes, {renderer.resyncs} resyncs)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
