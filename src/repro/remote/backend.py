"""``RemoteWindowSystem`` — the seventh-class port (paper §8).

The paper counts six porting classes and ~70 routines for a new
display server; the remote backend is that port against a *wire*
instead of a device.  Each window keeps a full local replica (a
:class:`~repro.wm.ascii_ws.CellSurface` or raster framebuffer — the
encoder's diff source and the conformance baseline), and at ``flush``
the frame's recorded ops go through a :class:`~repro.remote.encoder.
FrameEncoder` and out every attached sink to dumb renderers.

Two deviations from a plain local backend:

* drawables *always* carry a recording buffer (a wire needs ops as
  data even when ``ANDREW_BATCH`` is off) — conformance already proves
  batched replay byte-identical to immediate execution, so the local
  replica is unaffected;
* the buffer is a :class:`_RecordingBuffer`: any flush — including the
  compositor's mid-frame ``settle()`` before an offscreen blit —
  stashes op copies for the encoder before replaying, so the wire sees
  every op the frame executed, in order.

Select it like any backend: ``ANDREW_WM=remote`` builds one from the
environment (``ANDREW_REMOTE_TARGET``, ``ANDREW_REMOTE_DELTA``,
``ANDREW_REMOTE_ADDR=host:port`` for a loopback socket sink;
``ANDREW_RECONNECT=1`` wraps that socket in a
:class:`~repro.remote.reconnect.ReconnectingSink` and turns on
heartbeat pings, making the connection self-healing).
"""

from __future__ import annotations

import os
from typing import List, Optional

from .. import obs
from ..graphics import batch
from ..graphics.fontdesc import FontDesc, FontMetrics
from ..wm.ascii_ws import AsciiOffscreen, AsciiWindow, _cell_metrics
from ..wm.base import WindowSystem
from ..wm.raster_ws import (
    RasterOffscreen,
    RasterWindow,
    RequestCounter,
    _metrics_for,
)
from . import wire
from .encoder import FrameEncoder, ops_from_batch
from .reconnect import ReconnectingSink, reconnect_from_env, resume_viewer
from .transport import FanoutSink, RendererSink, SocketSink, faulty_send

__all__ = ["RemoteWindowSystem", "RemoteAsciiWindow", "RemoteRasterWindow",
           "REMOTE_TARGET_ENV", "REMOTE_DELTA_ENV", "REMOTE_ADDR_ENV"]

REMOTE_TARGET_ENV = "ANDREW_REMOTE_TARGET"
REMOTE_DELTA_ENV = "ANDREW_REMOTE_DELTA"
REMOTE_ADDR_ENV = "ANDREW_REMOTE_ADDR"


class _RecordingBuffer(batch.CommandBuffer):
    """A command buffer that hands the encoder op copies at each drain.

    ``flush`` runs not just at frame boundaries but whenever something
    must observe settled pixels mid-frame (the compositor settles the
    window before blitting a backing store into it).  Every drain
    appends wire-shaped op copies to the window's stash; the window's
    own ``flush`` encodes the accumulated stash as one frame.
    ``discard`` (resize) drops ops without stashing — the surface they
    targeted is gone and the resize keyframe carries the new state.
    """

    def flush(self) -> int:
        if self._ops:
            self._window._wire_stash.extend(
                ops_from_batch(self.snapshot_ops())
            )
        return super().flush()


class _RemoteWindowMixin:
    """The wire-shipping half of a remote window (both targets)."""

    def _init_remote(self) -> None:
        self.commands = _RecordingBuffer(self)
        self._wire_stash: List[tuple] = []
        self._encoder: Optional[FrameEncoder] = None
        self._sink = FanoutSink()
        #: Heartbeat cadence: after this many consecutive flushes that
        #: shipped nothing, send one tiny ping (None = heartbeats off).
        self.ping_every: Optional[int] = None
        self.pings_sent = 0
        self._quiet_flushes = 0

    def _wrap(self, graphic):
        # Always record — the wire needs the frame as data even with
        # ANDREW_BATCH off (replay is proven byte-identical either way).
        graphic._buffer = self.commands
        return graphic

    def _wire_surface(self):
        raise NotImplementedError

    def flush(self) -> None:
        super().flush()
        self._ship()

    def _ship(self) -> None:
        encoder = self._encoder
        ops = self._wire_stash
        if encoder is None or not self._sink.sinks:
            # No viewer: drop the stash; the attach keyframe will carry
            # whatever state accumulates meanwhile.
            if ops:
                self._wire_stash = []
            return
        self._wire_stash = []
        data = encoder.encode(ops, self._wire_surface())
        if data is not None:
            self._quiet_flushes = 0
            faulty_send(self._sink, data)
        elif self.ping_every is not None and encoder.last_seq >= 0:
            # Idle heartbeat: a dozen bytes proving liveness (and the
            # sender's position) — deliberately not an encoder frame,
            # so it never perturbs seq or the byte-budget benches.
            self._quiet_flushes += 1
            if self._quiet_flushes >= self.ping_every:
                self._quiet_flushes = 0
                self.pings_sent += 1
                if obs.metrics_on:
                    obs.registry.inc("remote.pings_sent")
                faulty_send(self._sink, wire.encode_ping(encoder.last_seq))

    def resize(self, width: int, height: int) -> None:
        self._wire_stash = []  # stashed ops targeted the old surface
        super().resize(width, height)
        if self._encoder is not None:
            self._encoder.resize(width, height)

    def attach_sink(self, sink, keyframe: bool = True) -> None:
        """Add a viewer; the next frame is a keyframe so it can join.

        ``keyframe=False`` skips the join keyframe — only correct when
        the viewer is already synchronized (the seq-resume path, which
        has just replayed the missed frames into it).
        """
        self._sink.add(sink)
        if keyframe and self._encoder is not None:
            self._encoder.request_keyframe()

    def attach_renderer(self, renderer,
                        chunk_size: Optional[int] = None) -> None:
        """Attach an in-process renderer (the deterministic pipe)."""
        self.attach_sink(RendererSink(renderer, chunk_size))

    def resume_renderer(self, renderer,
                        chunk_size: Optional[int] = None):
        """Re-attach a rejoining renderer at its last applied seq.

        The hello/replay handshake (:func:`~repro.remote.reconnect.
        resume_viewer`): history replays the missed frames verbatim
        when it can, otherwise the next frame is a keyframe.  Returns
        the attached sink.
        """
        return resume_viewer(self, renderer, chunk_size=chunk_size)

    def detach_sink(self, sink) -> None:
        self._sink.remove(sink)

    def close(self) -> None:
        super().close()
        self._sink.close()


class RemoteAsciiWindow(_RemoteWindowMixin, AsciiWindow):
    """A remote window whose local replica is a cell grid."""

    def __init__(self, title: str, width: int, height: int) -> None:
        super().__init__(title, width, height)
        self._init_remote()

    def _wire_surface(self):
        return self.surface


class RemoteRasterWindow(_RemoteWindowMixin, RasterWindow):
    """A remote window whose local replica is a pixel framebuffer."""

    def __init__(self, title: str, width: int, height: int,
                 requests: RequestCounter) -> None:
        super().__init__(title, width, height, requests)
        self._init_remote()

    def _wire_surface(self):
        return self.framebuffer


class RemoteWindowSystem(WindowSystem):
    """The wire-shipping window system (``ANDREW_WM=remote``).

    ``target`` names the renderer-side surface type (``ascii`` or
    ``raster``); the local replica uses the matching local backend's
    surface, graphic and offscreen classes, so everything above the
    porting interface behaves exactly as it does locally.  ``sink`` /
    ``renderer`` seed every window's fan-out list; more viewers attach
    per window with ``attach_renderer``/``attach_sink``.
    """

    atk_name = "remotews"
    name = "remote"

    #: Heartbeat cadence used when reconnect is enabled and the caller
    #: did not choose one: one ping per this many quiet flushes.
    DEFAULT_PING_EVERY = 16

    def __init__(self, target: str = "ascii", *, delta: bool = True,
                 keyframe_interval: int = 64, sink=None,
                 renderer=None,
                 ping_every: Optional[int] = None,
                 resume_window: int = FrameEncoder.DEFAULT_RESUME_WINDOW,
                 ) -> None:
        super().__init__()
        if target not in wire.TARGETS:
            raise ValueError(f"unknown remote target {target!r}")
        self.target = target
        self.delta = delta
        self.keyframe_interval = keyframe_interval
        self.ping_every = ping_every
        self.resume_window = resume_window
        self.requests = RequestCounter()
        self._seed_sinks: list = []
        if sink is not None:
            self._seed_sinks.append(sink)
        if renderer is not None:
            self._seed_sinks.append(RendererSink(renderer))

    @classmethod
    def from_env(cls) -> "RemoteWindowSystem":
        """Build from ``ANDREW_REMOTE_*`` (the ``ANDREW_WM=remote`` path).

        With ``ANDREW_RECONNECT=1`` the socket sink becomes a
        :class:`~repro.remote.reconnect.ReconnectingSink` (lazy
        connect, capped backoff, automatic keyframe on reconnect) and
        heartbeat pings default on.
        """
        target = os.environ.get(REMOTE_TARGET_ENV, "ascii").strip() or "ascii"
        delta_raw = os.environ.get(REMOTE_DELTA_ENV, "1").strip().lower()
        delta = delta_raw not in {"0", "false", "no", "off"}
        sink = None
        ping_every = None
        addr = os.environ.get(REMOTE_ADDR_ENV, "").strip()
        if addr:
            host, _, port = addr.rpartition(":")
            host = host or "127.0.0.1"
            if reconnect_from_env():
                sink = ReconnectingSink(
                    lambda h=host, p=int(port): SocketSink(h, p),
                    name=f"{host}:{port}")
                ping_every = cls.DEFAULT_PING_EVERY
            else:
                sink = SocketSink(host, int(port))
        return cls(target, delta=delta, sink=sink, ping_every=ping_every)

    def _make_window(self, title: str, width: int, height: int):
        if self.target == "ascii":
            window = RemoteAsciiWindow(title, width, height)
        else:
            window = RemoteRasterWindow(title, width, height, self.requests)
        window._encoder = FrameEncoder(
            self.target, width, height,
            delta=self.delta, keyframe_interval=self.keyframe_interval,
            resume_window=self.resume_window,
        )
        window.ping_every = self.ping_every
        for sink in self._seed_sinks:
            window.attach_sink(sink)
            # A reconnecting seed sink should ask this window for a
            # fresh keyframe every time its transport comes back.
            if isinstance(sink, ReconnectingSink) and sink.on_connect is None:
                encoder = window._encoder
                sink.on_connect = (
                    lambda _s, _e=encoder: _e.request_keyframe())
        return window

    def create_offscreen(self, width: int, height: int):
        if self.target == "ascii":
            return AsciiOffscreen(width, height)
        return RasterOffscreen(width, height, self.requests)

    def _font_metrics(self, desc: FontDesc) -> FontMetrics:
        if self.target == "ascii":
            return _cell_metrics(desc)
        return _metrics_for(desc)

    def stats(self) -> dict:
        stats = {"windows": len(self.windows), "target": self.target}
        frames = bytes_sent = keyframes = 0
        for window in self.windows:
            encoder = window._encoder
            if encoder is not None:
                frames += encoder.frames_sent
                bytes_sent += encoder.bytes_sent
                keyframes += encoder.keyframes_sent
        stats.update(frames_sent=frames, bytes_sent=bytes_sent,
                     keyframes_sent=keyframes)
        if self.target == "raster":
            stats.update(self.requests.counts)
        return stats
