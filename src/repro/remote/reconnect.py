"""Resumable remote connections: reconnect with backoff, resume by seq.

The v1 remote story treats a dead transport as permanent loss: the
:class:`~repro.remote.transport.SocketSink` goes ``alive=False`` and
the viewer is gone until a human reattaches one.  This module closes
that loop with two cooperating pieces:

* :class:`ReconnectingSink` — a sink wrapper owning a *connect
  factory* instead of a socket.  Send failures (and failures of the
  connect attempts themselves, which cross the ``remote.connect``
  fault seam) mark it disconnected; subsequent sends first wait out a
  capped-exponential backoff (counted in send attempts — the transport
  layer is clockless, like the rest of the toolkit) with deterministic
  CRC jitter, then retry the factory.  While disconnected, frames are
  dropped and counted (``frames_lost``) — display frames are
  idempotent-by-keyframe, so the resume path below repairs the gap.
* :func:`resume_viewer` — the server half of the seq-resume handshake.
  A rejoining renderer reports the last seq it applied
  (:meth:`RemoteRenderer.hello`); the window's encoder replays the
  missed frames *verbatim* from its bounded history
  (:meth:`FrameEncoder.resume_frames`) so the replica converges
  byte-identically to a viewer that never disconnected, or falls back
  to a fresh keyframe when the gap is out of window.  Either way the
  counter story balances: every successful rejoin is one
  ``remote.resumes``, split into ``remote.resume_replays`` (history
  served the gap) and ``remote.resume_keyframes`` (fallback).

Heartbeats ride the same machinery: the backend's ``ping_every`` ships
a tiny :class:`~repro.remote.wire.Ping` (the sender's last seq) when a
flush had nothing else to send, so liveness and the renderer's notion
of "how far behind am I" cost a dozen bytes, not a keyframe.

``ANDREW_RECONNECT=1`` makes :meth:`RemoteWindowSystem.from_env` wrap
its socket sinks in a :class:`ReconnectingSink` automatically.
"""

from __future__ import annotations

import os
import zlib
from typing import Callable, Optional

from .. import obs
from ..testing import faultinject

__all__ = [
    "RECONNECT_ENV",
    "ReconnectingSink",
    "reconnect_from_env",
    "resume_viewer",
]

RECONNECT_ENV = "ANDREW_RECONNECT"


def reconnect_from_env() -> bool:
    """True when ``ANDREW_RECONNECT`` asks socket sinks to self-heal."""
    raw = os.environ.get(RECONNECT_ENV, "").strip().lower()
    return raw not in ("", "0", "false", "no", "off")


class ReconnectingSink:
    """A sink that survives its transport: retry, back off, resume.

    ``connect`` is a zero-argument factory returning a fresh connected
    sink (e.g. ``lambda: SocketSink(host, port)``); it may raise
    ``OSError`` while the peer is down.  ``on_connect`` fires after
    every *successful* (re)connect with this sink as argument — the
    natural place to request a keyframe or replay history into the new
    transport (:func:`resume_viewer` does exactly that).

    Backoff is counted in **send attempts**, not seconds: after the
    Nth consecutive connect failure, the next ``min(cap, base <<
    (N - 1)) + jitter`` sends are dropped without trying the factory.  The
    transport stays clockless and a seeded chaos run replays exactly
    (the jitter is a CRC of the attempt ordinal, not a live RNG).
    """

    def __init__(self, connect: Callable[[], object], *,
                 name: str = "remote",
                 backoff_base: int = 1,
                 backoff_cap: int = 16,
                 jitter_span: int = 2,
                 on_connect: Optional[Callable[["ReconnectingSink"],
                                               None]] = None) -> None:
        if backoff_base < 1 or backoff_cap < backoff_base:
            raise ValueError("need 1 <= backoff_base <= backoff_cap")
        self._connect = connect
        self.name = name
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.jitter_span = max(0, jitter_span)
        self.on_connect = on_connect
        self.sink = None
        self.connects = 0
        self.connect_errors = 0
        self.frames_lost = 0
        self.last_error: Optional[BaseException] = None
        self.closed = False
        self._failures = 0     # consecutive connect failures
        self._cooldown = 0     # sends to drop before the next attempt

    # -- connection management -------------------------------------------

    @property
    def connected(self) -> bool:
        return self.sink is not None and getattr(self.sink, "alive", True)

    def _backoff(self) -> int:
        delay = min(self.backoff_cap,
                    self.backoff_base << min(self._failures - 1, 16))
        if self.jitter_span:
            key = f"{self.name}:{self._failures}".encode("ascii", "replace")
            delay += zlib.crc32(key) % (self.jitter_span + 1)
        return delay

    def _try_connect(self) -> bool:
        try:
            if faultinject.enabled:
                # The ``remote.connect`` seam: the peer is down, the
                # route is gone — the attempt itself dies.
                faultinject.maybe_raise("remote.connect")
            sink = self._connect()
        except Exception as exc:
            self.connect_errors += 1
            self.last_error = exc
            self._failures += 1
            self._cooldown = self._backoff()
            if obs.metrics_on:
                obs.registry.inc("remote.connect_errors")
            return False
        # A socket sink built by the factory reports its first send
        # failure through on_broken; route it back into this wrapper.
        if hasattr(sink, "on_broken") and sink.on_broken is None:
            sink.on_broken = lambda _s: self._mark_broken()
        self.sink = sink
        self._failures = 0
        self._cooldown = 0
        self.connects += 1
        if obs.metrics_on:
            obs.registry.inc("remote.connects")
            if self.connects > 1:
                obs.registry.inc("remote.reconnects")
        if self.on_connect is not None:
            self.on_connect(self)
        return True

    def _mark_broken(self) -> None:
        self.sink = None

    # -- sink protocol ----------------------------------------------------

    def send(self, data: bytes) -> None:
        if self.closed:
            return
        if not self.connected:
            self.sink = None
            if self._cooldown > 0:
                # Still backing off: this frame is transport loss.
                self._cooldown -= 1
                self.frames_lost += 1
                if obs.metrics_on:
                    obs.registry.inc("remote.frames_lost")
                return
            if not self._try_connect():
                self.frames_lost += 1
                if obs.metrics_on:
                    obs.registry.inc("remote.frames_lost")
                return
        self.sink.send(data)
        if not self.connected:
            # The send itself broke the transport; the frame is gone.
            self.frames_lost += 1
            if obs.metrics_on:
                obs.registry.inc("remote.frames_lost")

    def close(self) -> None:
        self.closed = True
        sink, self.sink = self.sink, None
        if sink is not None:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    def __repr__(self) -> str:
        state = ("closed" if self.closed else
                 "connected" if self.connected else
                 f"backoff({self._cooldown})")
        return (f"<ReconnectingSink {self.name!r} {state} "
                f"connects={self.connects} lost={self.frames_lost}>")


def resume_viewer(window, renderer, *, chunk_size: Optional[int] = None):
    """Re-attach ``renderer`` to ``window`` resuming at its last seq.

    The server half of the hello handshake, driven directly (the
    in-process form the conformance tests prove; the socket form just
    moves the same bytes).  The renderer's last applied seq selects the
    path:

    * **replay** — the encoder's history still holds every frame after
      it: those bytes are fed first, verbatim, so the replica ends
      byte-identical to one that never disconnected;
    * **keyframe** — gap out of window (or fresh renderer): the normal
      late-joiner keyframe resync.

    Returns the attached :class:`~repro.remote.transport.RendererSink`.
    """
    from .transport import RendererSink
    from .wire import Hello, WireError, decode_frame

    encoder = window._encoder
    decoded = decode_frame(renderer.hello())
    if decoded is None or not isinstance(decoded[0], Hello):
        raise WireError("renderer hello did not decode as a hello")
    last_seq = decoded[0].last_seq
    sink = RendererSink(renderer, chunk_size)
    missed = encoder.resume_frames(last_seq)
    if missed is None:
        # Unservable gap: classic keyframe resync.
        window.attach_sink(sink)
        if obs.metrics_on:
            obs.registry.inc("remote.resumes")
            obs.registry.inc("remote.resume_keyframes")
        return sink
    for data in missed:
        sink.send(data)
    window.attach_sink(sink, keyframe=False)
    if obs.metrics_on:
        obs.registry.inc("remote.resumes")
        obs.registry.inc("remote.resume_replays")
        if missed:
            obs.registry.inc("remote.resume_frames_replayed", len(missed))
    return sink
