"""The remote display wire format (version 2).

One *frame* is everything a window's :meth:`flush` produced: the
coalesced :class:`~repro.graphics.batch.CommandBuffer` op list plus any
repair/diff ops the encoder appended.  Frames are self-delimiting and
integrity-checked so a dumb renderer can consume them from a byte
stream and recover from corruption at the next keyframe:

=================  ====================================================
field              encoding
=================  ====================================================
magic              ``b"AW"``
version            varint (this module speaks exactly ``2``)
payload length     varint (bytes; bounded by ``MAX_FRAME_BYTES``)
payload            see below
checksum           CRC-32 of the payload, 4 bytes little-endian
=================  ====================================================

Payload::

    frame type (1 keyframe / 2 delta) | seq | target ('A'/'R')
    | width | height
    | string table | font table | bitmap table
    | op count | ops...

Version 2 adds two tiny *control* frames sharing the same envelope
(magic/version/length/CRC), distinguished by the frame-type byte:

``ping`` (type 3)
    ``seq`` varint — the sender's last shipped display seq.  A
    liveness heartbeat: it proves the connection and tells an idle
    renderer what seq it should be caught up to.  Carries no display
    ops and never disturbs renderer synchronization.
``hello`` (type 4)
    ``last_seq`` zigzag varint — sent *renderer → server* on
    (re)attach: the last display seq the renderer applied, ``-1`` for
    a fresh renderer that has applied nothing.  The server answers by
    replaying the missed frames verbatim from its history (seq-based
    resume) or, when the gap is out of window, with a fresh keyframe.

Integers are unsigned LEB128 varints; values that can be negative
(coordinates, fill values — ``-1`` means invert) are zigzag-encoded
first.  Strings (text runs, font specs, cell runs) are interned into a
per-frame table in first-use order, fonts are references to their spec
string (``andy12b``), and bitmaps are interned *by content* — a frame
blitting one cel N times ships the pixels once.  First-use-order
interning makes encoding canonical: ``encode(decode(b)) == b``.

Op vocabulary (opcode, operands, meaning):

====  =========  ====================================================
 0    fill       ``l, t, w, h, value`` — fill_rect
 1    hline      ``x0, x1, y, value``
 2    vline      ``x, y0, y1, value``
 3    text       ``x, y, str, fontspec, clip l/t/w/h`` — draw_text
                 replayed under the recorded clip
 4    pixel      ``x, y, value``
 5    blit       ``bitmap, x, y``
 6    copy       ``l, t, w, h, dx, dy`` — same-surface copy_area
                 (PR 8's scroll shifts)
 7    ref        ``start, count`` — replay ops [start, start+count)
                 of the *previous* frame's expanded op list (the
                 delta-elision op; invalid in keyframes)
 8    cells      ``y, x0, chars, inverse bits, bold bits`` — ascii
                 cell-diff run
 9    grid       ``chars, inverse bits, bold bits`` — full ascii
                 surface (keyframe)
10    rowbits    ``y, x0, count, bits`` — raster row-span repair
11    snapshot   ``bitmap`` — full raster surface (keyframe)
====  =========  ====================================================

Decoding is strictly bounds-checked: truncated, bit-flipped or garbage
input raises :class:`WireError` — never a hang, never a foreign
exception (every op consumes at least one byte, varints are capped at
ten bytes, table references are range-checked).  ``tests/test_wire.py``
fuzzes exactly that contract.

Versioning rule: any change to the layout above (a new opcode, a field
reordering, a different intern scheme) bumps :data:`VERSION`; decoders
reject other versions with a typed error so a stale renderer fails
loudly rather than misrendering.  The ping/hello control frames are
exactly such a change: version 1 decoders reject a version-2 stream at
the first envelope rather than choking on an unknown frame type.
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Tuple

__all__ = [
    "MAGIC",
    "VERSION",
    "MAX_FRAME_BYTES",
    "TARGETS",
    "Frame",
    "Hello",
    "Ping",
    "WireError",
    "encode_frame",
    "encode_hello",
    "encode_ping",
    "decode_frame",
    "expand_refs",
    "pack_bits",
    "unpack_bits",
]

MAGIC = b"AW"
VERSION = 2

#: Upper bound on one frame's payload; anything claiming more is
#: corrupt by definition (a full 4096x4096 raster keyframe packs to
#: 2 MiB, far under this).
MAX_FRAME_BYTES = 1 << 24

#: Render targets a frame can address, mapped to their wire tag.
TARGETS = {"ascii": 0x41, "raster": 0x52}  # 'A' / 'R'
_TARGET_BY_TAG = {tag: name for name, tag in TARGETS.items()}

_KEYFRAME, _DELTA, _PING, _HELLO = 1, 2, 3, 4

#: Sanity caps: table/op counts and surface dimensions beyond these are
#: treated as corruption rather than honoured with huge allocations.
_MAX_ITEMS = 1 << 20
_MAX_DIM = 1 << 16
_MAX_VARINT_BYTES = 10

(_OP_FILL, _OP_HLINE, _OP_VLINE, _OP_TEXT, _OP_PIXEL, _OP_BLIT,
 _OP_COPY, _OP_REF, _OP_CELLS, _OP_GRID, _OP_ROWBITS,
 _OP_SNAPSHOT) = range(12)


class WireError(Exception):
    """Typed decode/encode failure: corrupt, truncated or invalid data."""


class Frame:
    """One decoded (or to-be-encoded) display frame.

    ``ops`` is a list of tuples, each ``(kind, *operands)`` with the
    kinds and operand orders documented in the module docstring.
    Bitmap operands are ``(width, height, pixel_bytes)`` with one byte
    (0/1) per pixel, matching ``Bitmap._bits``.
    """

    __slots__ = ("keyframe", "seq", "target", "width", "height", "ops")

    def __init__(self, *, keyframe: bool, seq: int, target: str,
                 width: int, height: int, ops: List[tuple]) -> None:
        self.keyframe = bool(keyframe)
        self.seq = seq
        self.target = target
        self.width = width
        self.height = height
        self.ops = list(ops)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Frame)
            and self.keyframe == other.keyframe
            and self.seq == other.seq
            and self.target == other.target
            and self.width == other.width
            and self.height == other.height
            and self.ops == other.ops
        )

    def __repr__(self) -> str:
        kind = "keyframe" if self.keyframe else "delta"
        return (
            f"<Frame {kind} seq={self.seq} {self.target} "
            f"{self.width}x{self.height} ops={len(self.ops)}>"
        )


class Ping:
    """Liveness heartbeat (server → renderer): no ops, just a seq."""

    __slots__ = ("seq",)

    def __init__(self, seq: int) -> None:
        self.seq = seq

    def __eq__(self, other) -> bool:
        return isinstance(other, Ping) and self.seq == other.seq

    def __repr__(self) -> str:
        return f"<Ping seq={self.seq}>"


class Hello:
    """Resume handshake (renderer → server): last applied seq, -1=fresh."""

    __slots__ = ("last_seq",)

    def __init__(self, last_seq: int) -> None:
        self.last_seq = last_seq

    def __eq__(self, other) -> bool:
        return isinstance(other, Hello) and self.last_seq == other.last_seq

    def __repr__(self) -> str:
        return f"<Hello last_seq={self.last_seq}>"


# ---------------------------------------------------------------------------
# Primitives
# ---------------------------------------------------------------------------

def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise WireError(f"varint value must be >= 0, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _zigzag(value: int) -> int:
    return (value << 1) if value >= 0 else (-value << 1) - 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def _write_svarint(out: bytearray, value: int) -> None:
    _write_varint(out, _zigzag(value))


def pack_bits(bits) -> bytes:
    """Pack a 0/1 sequence into bytes, MSB-first within each byte."""
    out = bytearray((len(bits) + 7) // 8)
    for i, bit in enumerate(bits):
        if bit:
            out[i >> 3] |= 0x80 >> (i & 7)
    return bytes(out)


def unpack_bits(data: bytes, count: int) -> bytearray:
    """Inverse of :func:`pack_bits`: ``count`` 0/1 bytes."""
    out = bytearray(count)
    for i in range(count):
        if data[i >> 3] & (0x80 >> (i & 7)):
            out[i] = 1
    return out


class _Cursor:
    """Bounds-checked reader over one frame payload."""

    __slots__ = ("data", "pos", "end")

    def __init__(self, data: bytes, pos: int, end: int) -> None:
        self.data = data
        self.pos = pos
        self.end = end

    def remaining(self) -> int:
        return self.end - self.pos

    def read_bytes(self, count: int) -> bytes:
        if count < 0 or self.pos + count > self.end:
            raise WireError(
                f"truncated frame: wanted {count} bytes, "
                f"{self.end - self.pos} left"
            )
        out = self.data[self.pos:self.pos + count]
        self.pos += count
        return bytes(out)

    def read_u8(self) -> int:
        if self.pos >= self.end:
            raise WireError("truncated frame: wanted 1 byte, 0 left")
        value = self.data[self.pos]
        self.pos += 1
        return value

    def read_varint(self) -> int:
        value = 0
        shift = 0
        for length in range(_MAX_VARINT_BYTES):
            byte = self.read_u8()
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
        raise WireError("varint longer than 10 bytes")

    def read_svarint(self) -> int:
        return _unzigzag(self.read_varint())

    def read_count(self, what: str, limit: int = _MAX_ITEMS) -> int:
        count = self.read_varint()
        if count > limit:
            raise WireError(f"{what} count {count} exceeds cap {limit}")
        return count


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------

class _Interner:
    """First-use-order intern table (canonical: re-encode is identical)."""

    __slots__ = ("items", "_index")

    def __init__(self) -> None:
        self.items: List = []
        self._index: dict = {}

    def intern(self, value) -> int:
        ref = self._index.get(value)
        if ref is None:
            ref = len(self.items)
            self.items.append(value)
            self._index[value] = ref
        return ref


def _check_bitmap(value) -> tuple:
    if (not isinstance(value, tuple) or len(value) != 3
            or not isinstance(value[0], int) or not isinstance(value[1], int)
            or not isinstance(value[2], (bytes, bytearray))):
        raise WireError(f"bitmap operand must be (w, h, bytes), got {value!r}")
    width, height, bits = value
    if width < 0 or height < 0 or width * height != len(bits):
        raise WireError(
            f"bitmap operand {width}x{height} does not match "
            f"{len(bits)} pixel bytes"
        )
    return (width, height, bytes(bits))


def _encode_ops(ops, strings: _Interner, fonts: _Interner,
                bitmaps: _Interner) -> bytearray:
    out = bytearray()
    for op in ops:
        try:
            kind = op[0]
            if kind == "fill":
                _, left, top, width, height, value = op
                out.append(_OP_FILL)
                _write_svarint(out, left)
                _write_svarint(out, top)
                _write_varint(out, width)
                _write_varint(out, height)
                _write_svarint(out, value)
            elif kind == "hline":
                _, x0, x1, y, value = op
                out.append(_OP_HLINE)
                _write_svarint(out, x0)
                _write_svarint(out, x1)
                _write_svarint(out, y)
                _write_svarint(out, value)
            elif kind == "vline":
                _, x, y0, y1, value = op
                out.append(_OP_VLINE)
                _write_svarint(out, x)
                _write_svarint(out, y0)
                _write_svarint(out, y1)
                _write_svarint(out, value)
            elif kind == "text":
                _, x, y, text, spec, cl, ct, cw, ch = op
                out.append(_OP_TEXT)
                _write_svarint(out, x)
                _write_svarint(out, y)
                _write_varint(out, strings.intern(text))
                _write_varint(out, fonts.intern(spec))
                _write_svarint(out, cl)
                _write_svarint(out, ct)
                _write_varint(out, cw)
                _write_varint(out, ch)
            elif kind == "pixel":
                _, x, y, value = op
                out.append(_OP_PIXEL)
                _write_svarint(out, x)
                _write_svarint(out, y)
                _write_svarint(out, value)
            elif kind == "blit":
                _, bitmap, x, y = op
                out.append(_OP_BLIT)
                _write_varint(out, bitmaps.intern(_check_bitmap(bitmap)))
                _write_svarint(out, x)
                _write_svarint(out, y)
            elif kind == "copy":
                _, left, top, width, height, dx, dy = op
                out.append(_OP_COPY)
                _write_svarint(out, left)
                _write_svarint(out, top)
                _write_varint(out, width)
                _write_varint(out, height)
                _write_svarint(out, dx)
                _write_svarint(out, dy)
            elif kind == "ref":
                _, start, count = op
                out.append(_OP_REF)
                _write_varint(out, start)
                _write_varint(out, count)
            elif kind == "cells":
                _, y, x0, chars, inverse, bold = op
                nbytes = (len(chars) + 7) // 8
                if len(inverse) != nbytes or len(bold) != nbytes:
                    raise WireError(
                        f"cells run of {len(chars)} needs {nbytes} "
                        f"attribute bytes, got {len(inverse)}/{len(bold)}"
                    )
                out.append(_OP_CELLS)
                _write_svarint(out, y)
                _write_svarint(out, x0)
                _write_varint(out, strings.intern(chars))
                out += inverse
                out += bold
            elif kind == "grid":
                _, chars, inverse, bold = op
                nbytes = (len(chars) + 7) // 8
                if len(inverse) != nbytes or len(bold) != nbytes:
                    raise WireError(
                        f"grid of {len(chars)} needs {nbytes} attribute "
                        f"bytes, got {len(inverse)}/{len(bold)}"
                    )
                out.append(_OP_GRID)
                _write_varint(out, strings.intern(chars))
                out += inverse
                out += bold
            elif kind == "rowbits":
                _, y, x0, count, bits = op
                if len(bits) != (count + 7) // 8:
                    raise WireError(
                        f"rowbits run of {count} needs {(count + 7) // 8} "
                        f"bytes, got {len(bits)}"
                    )
                out.append(_OP_ROWBITS)
                _write_svarint(out, y)
                _write_svarint(out, x0)
                _write_varint(out, count)
                out += bits
            elif kind == "snapshot":
                _, bitmap = op
                out.append(_OP_SNAPSHOT)
                _write_varint(out, bitmaps.intern(_check_bitmap(bitmap)))
            else:
                raise WireError(f"unknown op kind {kind!r}")
        except WireError:
            raise
        except (TypeError, ValueError, IndexError) as exc:
            raise WireError(f"malformed op {op!r}: {exc}") from exc
    return out


def encode_frame(frame: Frame) -> bytes:
    """Serialize one frame; raises :class:`WireError` on malformed ops."""
    tag = TARGETS.get(frame.target)
    if tag is None:
        raise WireError(f"unknown target {frame.target!r}")
    if not 0 <= frame.width <= _MAX_DIM or not 0 <= frame.height <= _MAX_DIM:
        raise WireError(f"bad dimensions {frame.width}x{frame.height}")
    if frame.seq < 0:
        raise WireError(f"negative seq {frame.seq}")
    if len(frame.ops) > _MAX_ITEMS:
        raise WireError(f"too many ops ({len(frame.ops)})")
    if frame.keyframe and any(op and op[0] == "ref" for op in frame.ops):
        raise WireError("ref ops are invalid in a keyframe")

    strings = _Interner()
    fonts = _Interner()
    bitmaps = _Interner()
    op_bytes = _encode_ops(frame.ops, strings, fonts, bitmaps)
    # Font specs ride the string table (repeated fonts cost one varint
    # per use); intern them all before the table serializes.
    font_refs = [strings.intern(spec) for spec in fonts.items]
    if len(strings.items) > _MAX_ITEMS:
        raise WireError("string table overflow")

    final = bytearray()
    final.append(_KEYFRAME if frame.keyframe else _DELTA)
    _write_varint(final, frame.seq)
    final.append(tag)
    _write_varint(final, frame.width)
    _write_varint(final, frame.height)
    _write_varint(final, len(strings.items))
    for text in strings.items:
        raw = text.encode("utf-8")
        _write_varint(final, len(raw))
        final += raw
    _write_varint(final, len(fonts.items))
    for ref in font_refs:
        _write_varint(final, ref)
    _write_varint(final, len(bitmaps.items))
    for width, height, bits in bitmaps.items:
        _write_varint(final, width)
        _write_varint(final, height)
        final += pack_bits(bits)
    _write_varint(final, len(frame.ops))
    final += op_bytes

    if len(final) > MAX_FRAME_BYTES:
        raise WireError(f"frame payload {len(final)} exceeds cap")
    return _seal(final)


def _seal(payload: bytearray) -> bytes:
    """Wrap one payload in the envelope: magic, version, length, CRC."""
    out = bytearray(MAGIC)
    _write_varint(out, VERSION)
    _write_varint(out, len(payload))
    out += payload
    out += (zlib.crc32(payload) & 0xFFFFFFFF).to_bytes(4, "little")
    return bytes(out)


def encode_ping(seq: int) -> bytes:
    """Serialize a liveness :class:`Ping` (a dozen bytes on the wire)."""
    if seq < 0:
        raise WireError(f"negative ping seq {seq}")
    payload = bytearray([_PING])
    _write_varint(payload, seq)
    return _seal(payload)


def encode_hello(last_seq: int) -> bytes:
    """Serialize a resume :class:`Hello` (``last_seq`` -1 = fresh)."""
    if last_seq < -1:
        raise WireError(f"hello last_seq {last_seq} below -1")
    payload = bytearray([_HELLO])
    _write_svarint(payload, last_seq)
    return _seal(payload)


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------

def _read_tables(cur: _Cursor) -> Tuple[List[str], List[str], List[tuple]]:
    strings: List[str] = []
    for _ in range(cur.read_count("string table")):
        raw = cur.read_bytes(cur.read_varint())
        try:
            strings.append(raw.decode("utf-8"))
        except UnicodeDecodeError as exc:
            raise WireError(f"string table entry is not UTF-8: {exc}") from exc
    fonts: List[str] = []
    for _ in range(cur.read_count("font table")):
        ref = cur.read_varint()
        if ref >= len(strings):
            raise WireError(f"font spec ref {ref} outside string table")
        fonts.append(strings[ref])
    bitmaps: List[tuple] = []
    for _ in range(cur.read_count("bitmap table")):
        width = cur.read_varint()
        height = cur.read_varint()
        if width > _MAX_DIM or height > _MAX_DIM:
            raise WireError(f"bitmap {width}x{height} exceeds dimension cap")
        packed = cur.read_bytes((width * height + 7) // 8)
        bitmaps.append((width, height, bytes(unpack_bits(packed, width * height))))
    return strings, fonts, bitmaps


def _read_op(cur: _Cursor, strings, fonts, bitmaps, width, height) -> tuple:
    def string_ref():
        ref = cur.read_varint()
        if ref >= len(strings):
            raise WireError(f"string ref {ref} outside table")
        return strings[ref]

    def bitmap_ref():
        ref = cur.read_varint()
        if ref >= len(bitmaps):
            raise WireError(f"bitmap ref {ref} outside table")
        return bitmaps[ref]

    opcode = cur.read_u8()
    if opcode == _OP_FILL:
        return ("fill", cur.read_svarint(), cur.read_svarint(),
                cur.read_varint(), cur.read_varint(), cur.read_svarint())
    if opcode == _OP_HLINE:
        return ("hline", cur.read_svarint(), cur.read_svarint(),
                cur.read_svarint(), cur.read_svarint())
    if opcode == _OP_VLINE:
        return ("vline", cur.read_svarint(), cur.read_svarint(),
                cur.read_svarint(), cur.read_svarint())
    if opcode == _OP_TEXT:
        x, y = cur.read_svarint(), cur.read_svarint()
        text = string_ref()
        ref = cur.read_varint()
        if ref >= len(fonts):
            raise WireError(f"font ref {ref} outside table")
        spec = fonts[ref]
        return ("text", x, y, text, spec, cur.read_svarint(),
                cur.read_svarint(), cur.read_varint(), cur.read_varint())
    if opcode == _OP_PIXEL:
        return ("pixel", cur.read_svarint(), cur.read_svarint(),
                cur.read_svarint())
    if opcode == _OP_BLIT:
        bitmap = bitmap_ref()
        return ("blit", bitmap, cur.read_svarint(), cur.read_svarint())
    if opcode == _OP_COPY:
        return ("copy", cur.read_svarint(), cur.read_svarint(),
                cur.read_varint(), cur.read_varint(),
                cur.read_svarint(), cur.read_svarint())
    if opcode == _OP_REF:
        return ("ref", cur.read_varint(), cur.read_varint())
    if opcode == _OP_CELLS:
        y, x0 = cur.read_svarint(), cur.read_svarint()
        chars = string_ref()
        nbytes = (len(chars) + 7) // 8
        return ("cells", y, x0, chars,
                cur.read_bytes(nbytes), cur.read_bytes(nbytes))
    if opcode == _OP_GRID:
        chars = string_ref()
        if len(chars) != width * height:
            raise WireError(
                f"grid of {len(chars)} chars does not cover "
                f"{width}x{height}"
            )
        nbytes = (len(chars) + 7) // 8
        return ("grid", chars, cur.read_bytes(nbytes), cur.read_bytes(nbytes))
    if opcode == _OP_ROWBITS:
        y, x0 = cur.read_svarint(), cur.read_svarint()
        count = cur.read_count("rowbits run", _MAX_DIM)
        return ("rowbits", y, x0, count, cur.read_bytes((count + 7) // 8))
    if opcode == _OP_SNAPSHOT:
        return ("snapshot", bitmap_ref())
    raise WireError(f"unknown opcode {opcode}")


def decode_frame(data: bytes, offset: int = 0, *,
                 partial: bool = False) -> Optional[Tuple[Frame, int]]:
    """Decode one frame starting at ``offset``.

    Returns ``(frame, next_offset)`` where ``frame`` is a
    :class:`Frame`, or a :class:`Ping`/:class:`Hello` control frame
    (match on type).  With ``partial=True`` (stream
    consumption), returns ``None`` when the buffer holds a valid
    *prefix* of a frame that more bytes could complete; definite
    corruption still raises :class:`WireError`.  With ``partial=False``
    any incompleteness is an error.
    """
    view = memoryview(data)
    total = len(view)

    def incomplete(why: str):
        if partial:
            return None
        raise WireError(f"truncated frame: {why}")

    if total - offset < len(MAGIC):
        return incomplete("missing magic")
    if bytes(view[offset:offset + len(MAGIC)]) != MAGIC:
        raise WireError("bad magic")
    pos = offset + len(MAGIC)

    def header_varint(what: str):
        nonlocal pos
        value = 0
        shift = 0
        for i in range(_MAX_VARINT_BYTES):
            if pos >= total:
                return None  # incomplete
            byte = view[pos]
            pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
        raise WireError(f"{what} varint longer than 10 bytes")

    version = header_varint("version")
    if version is None:
        return incomplete("in version")
    if version != VERSION:
        raise WireError(f"unsupported wire version {version}")
    length = header_varint("length")
    if length is None:
        return incomplete("in payload length")
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame payload {length} exceeds cap")
    end = pos + length
    if end + 4 > total:
        return incomplete("payload/checksum not yet received")

    payload = bytes(view[pos:end])
    want_crc = int.from_bytes(bytes(view[end:end + 4]), "little")
    if (zlib.crc32(payload) & 0xFFFFFFFF) != want_crc:
        raise WireError("checksum mismatch")

    cur = _Cursor(payload, 0, len(payload))
    frame_type = cur.read_u8()
    if frame_type == _PING:
        ping = Ping(cur.read_varint())
        if cur.remaining():
            raise WireError(f"{cur.remaining()} trailing bytes in ping")
        return ping, end + 4
    if frame_type == _HELLO:
        hello = Hello(cur.read_svarint())
        if hello.last_seq < -1:
            raise WireError(f"hello last_seq {hello.last_seq} below -1")
        if cur.remaining():
            raise WireError(f"{cur.remaining()} trailing bytes in hello")
        return hello, end + 4
    if frame_type not in (_KEYFRAME, _DELTA):
        raise WireError(f"unknown frame type {frame_type}")
    seq = cur.read_varint()
    tag = cur.read_u8()
    target = _TARGET_BY_TAG.get(tag)
    if target is None:
        raise WireError(f"unknown target tag {tag:#x}")
    width = cur.read_varint()
    height = cur.read_varint()
    if width > _MAX_DIM or height > _MAX_DIM:
        raise WireError(f"dimensions {width}x{height} exceed cap")
    strings, fonts, bitmaps = _read_tables(cur)
    ops = []
    for _ in range(cur.read_count("op list")):
        op = _read_op(cur, strings, fonts, bitmaps, width, height)
        if frame_type == _KEYFRAME and op[0] == "ref":
            raise WireError("ref op inside a keyframe")
        ops.append(op)
    if cur.remaining():
        raise WireError(f"{cur.remaining()} trailing bytes in payload")
    frame = Frame(keyframe=(frame_type == _KEYFRAME), seq=seq,
                  target=target, width=width, height=height, ops=ops)
    return frame, end + 4


def expand_refs(ops: List[tuple], prev_ops: List[tuple]) -> List[tuple]:
    """Resolve ``ref`` ops against the previous frame's expanded list."""
    out: List[tuple] = []
    for op in ops:
        if op[0] == "ref":
            _, start, count = op
            if start + count > len(prev_ops):
                raise WireError(
                    f"ref [{start}, {start + count}) outside previous "
                    f"frame of {len(prev_ops)} ops"
                )
            out.extend(prev_ops[start:start + count])
        else:
            out.append(op)
    return out
