"""Frame encoding: batch ops -> wire frames, with delta compression.

The encoder consumes the already-settled :class:`CommandBuffer` op list
at flush (GUI Easy's render-path discipline: no encoder state inside
stateful draw code) and emits at most one wire frame per window flush.

The correctness anchor is the **shadow surface**: an exact replica of
the renderer's surface, maintained by applying every emitted frame's
ops through the *same* :mod:`repro.remote.renderer` appliers the
client uses.  After predicting, the encoder diffs shadow vs the
window's actual settled surface and appends repair ops for anything
the op list missed — the compositor's ``OffscreenWindow.copy_to``
writes window surfaces directly without recording, so prediction alone
can't be complete.  With repairs, byte-identity is unconditional.

Frame shapes per mode:

* **keyframe** — the whole surface as one ``grid`` (ascii) or
  ``snapshot`` (raster) op; emitted on the first frame, on resize, on
  :meth:`FrameEncoder.request_keyframe` (late-joining viewer), and
  every ``keyframe_interval`` sent frames so a lossy transport
  resynchronizes without a back-channel.
* **delta on, ascii** — scroll ``copy`` ops ship verbatim (a cell diff
  would re-send every shifted row), then ``cells`` runs carry exactly
  the cells that differ from the post-scroll shadow — the terminal
  emits only changed cells.
* **delta on, raster** — :func:`delta_compress` elides runs of ops
  unchanged from the previous frame into ``("ref", start, count)``
  tuples, then ``rowbits`` spans repair prediction gaps.
* **delta off** — the literal op list plus repair ops.

Unchanged frames (surface identical to shadow, no keyframe due) encode
to nothing at all: ``encode`` returns ``None`` and the sequence number
does not advance — essential because event polling flushes constantly.

For resumable connections the encoder also keeps a bounded **frame
history** (the last ``resume_window`` encoded frames, verbatim).  A
renderer rejoining with *last applied seq N* gets exactly the frames
it missed replayed from history (:meth:`FrameEncoder.resume_frames`)
— byte-identical to having never disconnected — or ``None`` when the
gap fell out of the window, in which case the caller falls back to
:meth:`FrameEncoder.request_keyframe`.
"""

from __future__ import annotations

import collections
from typing import Deque, List, Optional, Tuple

from .. import obs
from ..graphics import batch
from . import wire
from .renderer import make_applier
from .wire import Frame

__all__ = ["ops_from_batch", "delta_compress", "diff_cells",
           "diff_rowbits", "FrameEncoder"]


def ops_from_batch(raw_ops: List[list]) -> List[tuple]:
    """Batch op lists -> immutable wire op tuples.

    Input is ``CommandBuffer.snapshot_ops()`` output; rects/fonts
    flatten to scalars and blit snapshots to ``(w, h, bytes)`` so wire
    ops are hashable (delta matching keys on the tuple).
    """
    out: List[tuple] = []
    for op in raw_ops:
        kind = op[0]
        if kind == batch.FILL:
            rect = op[1]
            out.append(("fill", rect.left, rect.top,
                        rect.width, rect.height, op[2]))
        elif kind == batch.TEXT:
            clip = op[5]
            out.append(("text", op[1], op[2], op[3], op[4].spec(),
                        clip.left, clip.top, clip.width, clip.height))
        elif kind == batch.HLINE:
            out.append(("hline", op[1], op[2], op[3], op[4]))
        elif kind == batch.VLINE:
            out.append(("vline", op[1], op[2], op[3], op[4]))
        elif kind == batch.PIXEL:
            out.append(("pixel", op[1], op[2], op[3]))
        elif kind == batch.BLIT:
            bitmap = op[1]
            out.append(("blit",
                        (bitmap.width, bitmap.height, bytes(bitmap._bits)),
                        op[2], op[3]))
        elif kind == batch.COPY:
            rect = op[1]
            out.append(("copy", rect.left, rect.top,
                        rect.width, rect.height, op[2], op[3]))
        else:
            raise ValueError(f"unknown batch op kind {kind!r}")
    return out


_MAX_CANDIDATES = 8


def delta_compress(ops: List[tuple],
                   prev_ops: List[tuple]) -> Tuple[List[tuple], int]:
    """Elide runs of ops repeated from the previous frame.

    Greedy longest-run: each op indexes its positions in ``prev_ops``
    (first ``_MAX_CANDIDATES`` occurrences) and the longest contiguous
    match wins, emitted as ``("ref", start, count)``.  Returns
    ``(compressed_ops, ops_elided)``.
    """
    if not prev_ops:
        return list(ops), 0
    index: dict = {}
    for pos, op in enumerate(prev_ops):
        slots = index.setdefault(op, [])
        if len(slots) < _MAX_CANDIDATES:
            slots.append(pos)
    out: List[tuple] = []
    elided = 0
    i = 0
    n, m = len(ops), len(prev_ops)
    while i < n:
        best_start, best_len = -1, 0
        for start in index.get(ops[i], ()):
            length = 0
            while (i + length < n and start + length < m
                   and ops[i + length] == prev_ops[start + length]):
                length += 1
            if length > best_len:
                best_start, best_len = start, length
        if best_len > 0:
            out.append(("ref", best_start, best_len))
            elided += best_len
            i += best_len
        else:
            out.append(ops[i])
            i += 1
    return out, elided


def diff_cells(old, new, max_gap: int = 4) -> Tuple[List[tuple], int]:
    """Changed-cell runs between two equally sized ``CellSurface``s.

    Per row, changed cells group into runs; gaps of up to ``max_gap``
    unchanged cells merge into the surrounding run (re-sending a few
    identical cells is cheaper than another op header).  Returns
    ``(cells_ops, changed_cell_count)``.
    """
    ops: List[tuple] = []
    changed = 0
    width = new.width
    for y in range(new.height):
        base = y * width
        row_changed = [
            x for x in range(width)
            if (old._chars[base + x] != new._chars[base + x]
                or old._inverse[base + x] != new._inverse[base + x]
                or old._bold[base + x] != new._bold[base + x])
        ]
        if not row_changed:
            continue
        changed += len(row_changed)
        run_start = prev = row_changed[0]
        runs = []
        for x in row_changed[1:]:
            if x - prev > max_gap + 1:
                runs.append((run_start, prev))
                run_start = x
            prev = x
        runs.append((run_start, prev))
        for x0, x1 in runs:
            count = x1 - x0 + 1
            chars = "".join(new._chars[base + x0:base + x1 + 1])
            inverse = wire.pack_bits(new._inverse[base + x0:base + x1 + 1])
            bold = wire.pack_bits(new._bold[base + x0:base + x1 + 1])
            ops.append(("cells", y, x0, chars, inverse, bold))
    return ops, changed


def diff_rowbits(old, new) -> List[tuple]:
    """Changed-row spans between two equally sized ``Bitmap``s.

    One ``rowbits`` op per changed row, spanning the first through last
    differing pixel.
    """
    ops: List[tuple] = []
    width = new.width
    for y in range(new.height):
        base = y * width
        old_row = old._bits[base:base + width]
        new_row = new._bits[base:base + width]
        if old_row == new_row:
            continue
        x0 = next(x for x in range(width) if old_row[x] != new_row[x])
        x1 = next(x for x in range(width - 1, -1, -1)
                  if old_row[x] != new_row[x])
        count = x1 - x0 + 1
        ops.append(("rowbits", y, x0, count,
                    wire.pack_bits(new_row[x0:x1 + 1])))
    return ops


def _new_shadow(target: str, width: int, height: int):
    if target == "ascii":
        from ..wm.ascii_ws import CellSurface
        return CellSurface(width, height)
    from ..graphics.image import Bitmap
    return Bitmap(width, height)


class FrameEncoder:
    """Per-window frame producer with shadow-diff repair.

    ``encode(wire_ops, surface)`` is called once per window flush with
    that flush's op list (already through :func:`ops_from_batch`) and
    the settled surface; it returns the encoded frame bytes, or
    ``None`` when nothing visible changed and no keyframe is due.
    """

    #: Encoded frames retained for seq-based resume.  Small on purpose:
    #: a rejoiner further behind than this gets a keyframe instead.
    DEFAULT_RESUME_WINDOW = 32

    def __init__(self, target: str, width: int, height: int, *,
                 delta: bool = True, keyframe_interval: int = 64,
                 resume_window: int = DEFAULT_RESUME_WINDOW) -> None:
        if target not in wire.TARGETS:
            raise ValueError(f"unknown target {target!r}")
        if keyframe_interval < 1:
            raise ValueError("keyframe_interval must be >= 1")
        self.target = target
        self.width = width
        self.height = height
        self.delta = delta
        self.keyframe_interval = keyframe_interval
        self.frames_sent = 0
        self.keyframes_sent = 0
        self.bytes_sent = 0
        self.ops_elided = 0
        self.cell_diff_cells = 0
        self._seq = 0
        self._since_keyframe = 0
        self._force_keyframe = True
        self._prev_ops: List[tuple] = []
        self._shadow = _new_shadow(target, width, height)
        self._applier = make_applier(target, self._shadow)
        #: (seq, encoded bytes) of the most recent frames, oldest first.
        self._history: Deque[Tuple[int, bytes]] = collections.deque(
            maxlen=max(0, resume_window))

    # -- keyframe control ------------------------------------------------

    def request_keyframe(self) -> None:
        """Force the next frame to be a keyframe (late-joining viewer)."""
        self._force_keyframe = True

    def stretch_keyframes(self, factor: int) -> None:
        """Degraded mode: multiply the keyframe interval (idempotent).

        Keyframes are the bursty bytes; a loaded server stretches them
        to shed bandwidth before any input is refused.  The base
        interval is remembered so :meth:`restore_keyframes` snaps back.
        """
        if getattr(self, "_base_keyframe_interval", None) is None:
            self._base_keyframe_interval = self.keyframe_interval
        self.keyframe_interval = max(
            1, self._base_keyframe_interval * max(1, factor))

    def restore_keyframes(self) -> None:
        """Leave degraded mode: restore the configured keyframe interval."""
        base = getattr(self, "_base_keyframe_interval", None)
        if base is not None:
            self.keyframe_interval = base
            self._base_keyframe_interval = None

    # -- seq-based resume ------------------------------------------------

    @property
    def last_seq(self) -> int:
        """Seq of the most recently sent frame (-1 before the first)."""
        return self._seq - 1

    def resume_frames(self, last_seq: int) -> Optional[List[bytes]]:
        """The verbatim frames a rejoiner missed after ``last_seq``.

        Returns ``[]`` when the renderer is already current, the missed
        frames oldest-first when they are still in the history window,
        or ``None`` when the gap is unservable (too old, or a fresh
        renderer) — the caller then falls back to a keyframe.
        """
        if last_seq >= self.last_seq:
            return []
        if last_seq < 0 or not self._history \
                or self._history[0][0] > last_seq + 1:
            return None
        return [data for seq, data in self._history if seq > last_seq]

    def resize(self, width: int, height: int) -> None:
        """The window resized: new shadow, keyframe next."""
        self.width = width
        self.height = height
        self._shadow = _new_shadow(self.target, width, height)
        self._applier = make_applier(self.target, self._shadow)
        self._force_keyframe = True

    # -- shadow plumbing -------------------------------------------------

    def _surface_matches_shadow(self, surface) -> bool:
        shadow = self._shadow
        if self.target == "ascii":
            return (shadow._chars == surface._chars
                    and shadow._inverse == surface._inverse
                    and shadow._bold == surface._bold)
        return shadow._bits == surface._bits

    def _sync_shadow(self, surface) -> None:
        shadow = self._shadow
        if self.target == "ascii":
            shadow._chars[:] = list(surface._chars)
            shadow._inverse[:] = surface._inverse
            shadow._bold[:] = surface._bold
        else:
            shadow._bits[:] = surface._bits

    def _keyframe_ops(self, surface) -> List[tuple]:
        if self.target == "ascii":
            return [("grid", "".join(surface._chars),
                     wire.pack_bits(surface._inverse),
                     wire.pack_bits(surface._bold))]
        return [("snapshot",
                 (surface.width, surface.height, bytes(surface._bits)))]

    # -- encoding --------------------------------------------------------

    def encode(self, wire_ops: List[tuple], surface) -> Optional[bytes]:
        keyframe_due = (self._force_keyframe
                        or self._since_keyframe >= self.keyframe_interval)
        if keyframe_due:
            out_ops = self._keyframe_ops(surface)
            elided = diffed = 0
            keyframe = True
        elif self.delta:
            out_ops, elided, diffed = self._delta_ops(wire_ops, surface)
            if not out_ops:
                return None  # nothing visible changed
            keyframe = False
        else:
            if not wire_ops and self._surface_matches_shadow(surface):
                return None
            out_ops, elided, diffed = self._literal_ops(wire_ops, surface)
            keyframe = False

        frame = Frame(keyframe=keyframe, seq=self._seq, target=self.target,
                      width=self.width, height=self.height, ops=out_ops)
        data = wire.encode_frame(frame)
        self._history.append((frame.seq, data))
        self._seq += 1
        self._sync_shadow(surface)
        # What the renderer will hold as "previous ops" for refs.
        self._prev_ops = (list(out_ops) if keyframe
                          else wire.expand_refs(out_ops, self._prev_ops))
        if keyframe:
            self._force_keyframe = False
            self._since_keyframe = 0
            self.keyframes_sent += 1
        else:
            self._since_keyframe += 1
        self.frames_sent += 1
        self.bytes_sent += len(data)
        self.ops_elided += elided
        self.cell_diff_cells += diffed
        if obs.metrics_on:
            obs.registry.inc("remote.frames_sent")
            if keyframe:
                obs.registry.inc("remote.keyframes_sent")
            obs.registry.inc("remote.bytes_sent", len(data))
            obs.registry.observe_ns("remote.bytes_per_frame", len(data))
            if elided:
                obs.registry.inc("remote.ops_elided", elided)
            if diffed:
                obs.registry.inc("remote.cell_diff_cells", diffed)
        return data

    def _delta_ops(self, wire_ops, surface):
        """Minimal delta frame; empty result means skip the frame."""
        if self.target == "ascii":
            # Scrolls ship verbatim (a cell diff would re-send whole
            # shifted rows); anything after them becomes a cell diff
            # against the post-scroll shadow.  A copy recorded *after*
            # a draw can't be split out safely, so that rare shape
            # falls back to a pure cell diff.
            copies: List[tuple] = []
            for op in wire_ops:
                if op[0] != "copy":
                    break
                copies.append(op)
            if any(op[0] == "copy" for op in wire_ops[len(copies):]):
                copies = []
            for op in copies:
                self._applier.apply(op)
            cells, diffed = diff_cells(self._shadow, surface)
            elided = len(wire_ops) - len(copies)
            return copies + cells, max(0, elided), diffed
        compressed, elided = delta_compress(wire_ops, self._prev_ops)
        for op in wire_ops:
            self._applier.apply(op)
        repairs = diff_rowbits(self._shadow, surface)
        return compressed + repairs, elided, 0

    def _literal_ops(self, wire_ops, surface):
        """The full op list plus shadow-diff repairs (delta off)."""
        for op in wire_ops:
            self._applier.apply(op)
        if self.target == "ascii":
            repairs, diffed = diff_cells(self._shadow, surface)
        else:
            repairs, diffed = diff_rowbits(self._shadow, surface), 0
        return list(wire_ops) + repairs, 0, diffed

    def __repr__(self) -> str:
        return (f"<FrameEncoder {self.target} {self.width}x{self.height} "
                f"delta={self.delta} sent={self.frames_sent}>")
