"""Remote display: the command buffer as a wire protocol.

PR 4 turned every frame into data (:class:`~repro.graphics.batch.
CommandBuffer`); this package serializes that op list into a
versioned, delta-encoded binary stream so the toolkit can run
server-side with dumb renderers at the edge — the thin-client split
the paper's §8 portability story promises and the ROADMAP's
control-room-scale fan-out exemplar (the DESY display-server split)
motivates.

Layers, bottom up:

* :mod:`~repro.remote.wire` — the versioned frame codec
  (:func:`~repro.remote.wire.encode_frame` /
  :func:`~repro.remote.wire.decode_frame`, typed
  :class:`~repro.remote.wire.WireError` on any malformed input);
* :mod:`~repro.remote.encoder` — batch ops -> frames, with keyframes,
  op elision against the previous frame and the ascii cell-diff pass;
* :mod:`~repro.remote.renderer` — the dumb client: decode into a
  replica cell grid or framebuffer, resynchronizing on loss;
* :mod:`~repro.remote.transport` — sinks (in-memory capture,
  in-process pipe, loopback socket, fan-out);
* :mod:`~repro.remote.reconnect` — resumable connections: the
  reconnecting sink (capped backoff over the ``remote.connect`` fault
  seam) and the hello/replay seq-resume handshake
  (``ANDREW_RECONNECT=1``);
* :mod:`~repro.remote.backend` — :class:`RemoteWindowSystem`, the
  seventh-class port selected by ``ANDREW_WM=remote``.
"""

from .backend import (
    REMOTE_ADDR_ENV,
    REMOTE_DELTA_ENV,
    REMOTE_TARGET_ENV,
    RemoteAsciiWindow,
    RemoteRasterWindow,
    RemoteWindowSystem,
)
from .encoder import FrameEncoder, delta_compress, diff_cells, ops_from_batch
from .reconnect import RECONNECT_ENV, ReconnectingSink, resume_viewer
from .renderer import RemoteRenderer
from .transport import CaptureSink, FanoutSink, RendererSink, SocketSink
from .wire import (
    Frame,
    Hello,
    Ping,
    WireError,
    decode_frame,
    encode_frame,
    encode_hello,
    encode_ping,
)

__all__ = [
    "CaptureSink",
    "FanoutSink",
    "Frame",
    "FrameEncoder",
    "Hello",
    "Ping",
    "ReconnectingSink",
    "RemoteAsciiWindow",
    "RemoteRasterWindow",
    "RemoteRenderer",
    "RemoteWindowSystem",
    "RendererSink",
    "SocketSink",
    "WireError",
    "RECONNECT_ENV",
    "REMOTE_ADDR_ENV",
    "REMOTE_DELTA_ENV",
    "REMOTE_TARGET_ENV",
    "decode_frame",
    "delta_compress",
    "diff_cells",
    "encode_frame",
    "encode_hello",
    "encode_ping",
    "ops_from_batch",
    "resume_viewer",
]
