"""Input events delivered by window systems (paper sections 3, 8).

The interaction manager "has the responsibility of translating input
events such as key strokes, mouse events, menu events and exposure
events from the window system to the rest of the view tree".  These
classes are that translation's common currency: every backend produces
them, and the view tree consumes them without knowing which window
system is underneath.

Mouse coordinates are in the *window's* coordinate space; as an event
descends the view tree each parent re-expresses it in the child's space
(see ``repro.core.view``), so a view always sees coordinates local to
itself.
"""

from __future__ import annotations

import enum
import itertools
from typing import Optional

from ..graphics.geometry import Point, Rect

__all__ = [
    "Event",
    "MouseAction",
    "MouseButton",
    "MouseEvent",
    "KeyEvent",
    "MenuEvent",
    "UpdateEvent",
    "ResizeEvent",
    "FocusEvent",
    "TimerEvent",
]

_event_serial = itertools.count(1)


class Event:
    """Base class for all events; carries a delivery serial."""

    __slots__ = ("serial",)

    def __init__(self) -> None:
        self.serial = next(_event_serial)


class MouseAction(enum.Enum):
    DOWN = "down"
    UP = "up"
    MOVE = "move"
    DRAG = "drag"          # move with a button held


class MouseButton(enum.Enum):
    LEFT = "left"
    RIGHT = "right"
    NONE = "none"          # for pure motion


class MouseEvent(Event):
    """A mouse transition at ``point`` (current coordinate space)."""

    __slots__ = ("action", "button", "point", "clicks")

    def __init__(
        self,
        action: MouseAction,
        point: Point,
        button: MouseButton = MouseButton.LEFT,
        clicks: int = 1,
    ) -> None:
        super().__init__()
        self.action = action
        self.button = button
        self.point = point
        self.clicks = clicks

    def offset(self, dx: int, dy: int) -> "MouseEvent":
        """Re-express this event in a coordinate space shifted by (dx, dy).

        Used by parents when passing the event down to a child whose
        origin is at ``(-dx, -dy)`` in the parent's space.  The serial is
        preserved so the whole descent is recognizably one user action.
        """
        clone = MouseEvent(self.action, self.point.offset(dx, dy), self.button, self.clicks)
        clone.serial = self.serial
        return clone

    def __repr__(self) -> str:
        return (
            f"MouseEvent({self.action.value}, {tuple(self.point)}, "
            f"{self.button.value}, clicks={self.clicks})"
        )


class KeyEvent(Event):
    """One keystroke.

    ``char`` is the printable character or a symbolic name for control
    keys (``"Return"``, ``"Tab"``, ``"Backspace"``, ``"Up"`` ...);
    ``ctrl``/``meta`` carry modifier state, matching the keyboard-symbol
    mapping the view tree negotiates (§3).
    """

    __slots__ = ("char", "ctrl", "meta")

    def __init__(self, char: str, ctrl: bool = False, meta: bool = False) -> None:
        super().__init__()
        self.char = char
        self.ctrl = ctrl
        self.meta = meta

    @property
    def is_printable(self) -> bool:
        return len(self.char) == 1 and not self.ctrl and not self.meta and (
            self.char.isprintable()
        )

    def keysym(self) -> str:
        """Canonical name: ``C-x``, ``M-q``, ``Return`` or the char."""
        name = self.char
        if self.meta:
            name = f"M-{name}"
        if self.ctrl:
            name = f"C-{name}"
        return name

    def __repr__(self) -> str:
        return f"KeyEvent({self.keysym()!r})"


class MenuEvent(Event):
    """A menu item was chosen: card name + item label."""

    __slots__ = ("card", "item")

    def __init__(self, card: str, item: str) -> None:
        super().__init__()
        self.card = card
        self.item = item

    def __repr__(self) -> str:
        return f"MenuEvent({self.card!r}, {self.item!r})"


class UpdateEvent(Event):
    """An exposure/update event carrying the damaged rectangle.

    ``full`` distinguishes a total redraw (window newly mapped or
    resized) from partial damage repair.
    """

    __slots__ = ("area", "full")

    def __init__(self, area: Rect, full: bool = False) -> None:
        super().__init__()
        self.area = area
        self.full = full

    def __repr__(self) -> str:
        return f"UpdateEvent({tuple(self.area)}, full={self.full})"


class ResizeEvent(Event):
    __slots__ = ("width", "height")

    def __init__(self, width: int, height: int) -> None:
        super().__init__()
        self.width = width
        self.height = height

    def __repr__(self) -> str:
        return f"ResizeEvent({self.width}x{self.height})"


class FocusEvent(Event):
    __slots__ = ("gained",)

    def __init__(self, gained: bool) -> None:
        super().__init__()
        self.gained = gained

    def __repr__(self) -> str:
        return f"FocusEvent(gained={self.gained})"


class TimerEvent(Event):
    """A timer tick, used by the animation component and the console."""

    __slots__ = ("tick", "payload")

    def __init__(self, tick: int, payload: Optional[object] = None) -> None:
        super().__init__()
        self.tick = tick
        self.payload = payload

    def __repr__(self) -> str:
        return f"TimerEvent(tick={self.tick})"
