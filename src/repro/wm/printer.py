"""Printing as a drawable swap (paper section 4, experiment E11).

"When a view receives a print request for a specific type of printer it
can temporarily shift its pointer to a drawable for that printer type
and do a redraw of its image."

:class:`PrinterJob` realizes that design: it manufactures a
:class:`PrinterGraphic` — a perfectly ordinary drawable whose device is
a print page rather than a window — and
``repro.core.view.View.print_to`` points the view at it and redraws.
The device model is a line printer (a cell grid), so output pages are
plain text with a banner, which is also how the reproduction's "ditroff
previewer" renders.
"""

from __future__ import annotations

from typing import List

from ..graphics.geometry import Rect
from .ascii_ws import AsciiGraphic, CellSurface

__all__ = ["PrinterGraphic", "PrinterJob", "PAGE_WIDTH", "PAGE_HEIGHT"]

PAGE_WIDTH = 80
PAGE_HEIGHT = 60


class PrinterGraphic(AsciiGraphic):
    """A drawable whose device is one print page.

    Identical drawing semantics to the ascii window drawable — that is
    the entire point: the view cannot tell it is printing.
    """

    def __init__(self, page: CellSurface) -> None:
        super().__init__(page)


class PrinterJob:
    """Collects printed pages for one document."""

    def __init__(self, title: str = "untitled",
                 page_width: int = PAGE_WIDTH, page_height: int = PAGE_HEIGHT):
        self.title = title
        self.page_width = page_width
        self.page_height = page_height
        self._pages: List[CellSurface] = []

    def new_page(self) -> PrinterGraphic:
        """Start a fresh page and return its drawable."""
        page = CellSurface(self.page_width, self.page_height)
        self._pages.append(page)
        return PrinterGraphic(page)

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def page_bounds(self) -> Rect:
        return Rect(0, 0, self.page_width, self.page_height)

    def page_lines(self, index: int) -> List[str]:
        """The raw cell grid of page ``index`` (0-based)."""
        return self._pages[index].lines()

    def render(self) -> str:
        """The whole job as text: banner, pages, form feeds between."""
        chunks = []
        for number, page in enumerate(self._pages, start=1):
            header = f"{self.title}  --  page {number} of {len(self._pages)}"
            body = "\n".join(line.rstrip() for line in page.lines())
            chunks.append(header + "\n" + "=" * len(header) + "\n" + body)
        return "\n\f\n".join(chunks) + ("\n" if chunks else "")

    def __repr__(self) -> str:
        return f"PrinterJob({self.title!r}, pages={self.page_count})"
