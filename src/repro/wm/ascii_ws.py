"""The ascii window system: a cell-grid backend.

Plays the role of the original ITC/Andrew window system in this
reproduction: a complete, self-contained display that renders windows
into character-cell grids.  Device units are cells; every font is one
cell high and one cell wide (a fixed-cell device, like a terminal).

Because the output is plain text, application snapshots — the paper's
Figures 2-5 — come out as printable screens, which is exactly what the
snapshot benches and examples show.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .. import obs
from ..graphics.fontdesc import FontDesc, FontMetrics
from ..graphics.geometry import Point, Rect
from ..graphics.graphic import Graphic
from ..graphics.image import Bitmap
from .base import BackendWindow, OffscreenWindow, WindowSystem

__all__ = ["CellSurface", "AsciiGraphic", "AsciiWindow", "AsciiWindowSystem"]

_H = "-"
_V = "|"
_X = "+"
_INK = "#"

#: Cell-device metrics memo, shared by the graphic (per draw_string)
#: and the window system (per layout query): every font is one cell.
_CELL_METRICS: Dict[FontDesc, FontMetrics] = {}


def _cell_metrics(desc: FontDesc) -> FontMetrics:
    cached = _CELL_METRICS.get(desc)
    if cached is None:
        cached = FontMetrics(desc, char_width=1, ascent=1, descent=0)
        _CELL_METRICS[desc] = cached
    return cached


class CellSurface:
    """A mutable grid of character cells with inverse/bold attributes."""

    __slots__ = ("width", "height", "_chars", "_inverse", "_bold")

    def __init__(self, width: int, height: int) -> None:
        self.width = int(width)
        self.height = int(height)
        size = self.width * self.height
        self._chars = [" "] * size
        self._inverse = bytearray(size)
        self._bold = bytearray(size)

    def _index(self, x: int, y: int) -> int:
        return y * self.width + x

    def in_bounds(self, x: int, y: int) -> bool:
        return 0 <= x < self.width and 0 <= y < self.height

    def put(self, x: int, y: int, char: str, inverse: int = -1, bold: int = -1):
        """Write one cell; ``-1`` leaves an attribute unchanged."""
        if not self.in_bounds(x, y):
            return
        i = self._index(x, y)
        self._chars[i] = char
        if inverse >= 0:
            self._inverse[i] = 1 if inverse else 0
        if bold >= 0:
            self._bold[i] = 1 if bold else 0

    def char_at(self, x: int, y: int) -> str:
        if not self.in_bounds(x, y):
            return " "
        return self._chars[self._index(x, y)]

    def inverse_at(self, x: int, y: int) -> bool:
        return self.in_bounds(x, y) and bool(self._inverse[self._index(x, y)])

    def bold_at(self, x: int, y: int) -> bool:
        return self.in_bounds(x, y) and bool(self._bold[self._index(x, y)])

    def toggle_inverse(self, x: int, y: int) -> None:
        if self.in_bounds(x, y):
            self._inverse[self._index(x, y)] ^= 1

    def lines(self) -> List[str]:
        """Render the grid; inverse blanks print as ``%`` so selections
        and filled regions stay visible in pure-text snapshots."""
        out = []
        for y in range(self.height):
            row = []
            for x in range(self.width):
                i = self._index(x, y)
                char = self._chars[i]
                if self._inverse[i] and char == " ":
                    char = "%"
                row.append(char)
            out.append("".join(row))
        return out


class AsciiGraphic(Graphic):
    """Drawable over a :class:`CellSurface`."""

    def __init__(self, surface: CellSurface, origin: Point = Point(0, 0),
                 clip: Rect = None):
        self._surface = surface
        super().__init__(origin, clip)

    # -- device primitives ---------------------------------------------

    @staticmethod
    def _tally(op: str) -> None:
        # The ascii backend's half of the unified request accounting:
        # same op vocabulary as the raster backend's RequestCounter.
        if obs.metrics_on:
            obs.registry.inc("wm.ascii.requests")
            obs.registry.inc("wm.ascii." + op)

    def device_size(self) -> Tuple[int, int]:
        return (self._surface.width, self._surface.height)

    def device_fill_rect(self, rect: Rect, value: int) -> None:
        self._tally("fill_rect")
        surface = self._surface
        for y in range(rect.top, rect.bottom):
            for x in range(rect.left, rect.right):
                if value < 0:
                    surface.toggle_inverse(x, y)
                elif value:
                    surface.put(x, y, _INK, inverse=0)
                else:
                    surface.put(x, y, " ", inverse=0, bold=0)

    def device_set_pixel(self, x: int, y: int, value: int) -> None:
        self._tally("set_pixel")
        if value < 0:
            self._surface.toggle_inverse(x, y)
        else:
            self._surface.put(x, y, _INK if value else " ", inverse=0)

    can_copy_area = True

    def device_copy_area(self, rect: Rect, dx: int, dy: int) -> None:
        self._tally("copy_area")
        surface = self._surface
        rect = rect.intersection(Rect(0, 0, surface.width, surface.height))
        rect = rect.intersection(
            Rect(-dx, -dy, surface.width, surface.height))
        if rect.is_empty():
            return
        chars, inverse, bold = surface._chars, surface._inverse, surface._bold
        width, span = surface.width, rect.width
        rows = range(rect.top, rect.bottom)
        if dy > 0:  # shifting down: copy bottom-up so sources stay unread
            rows = reversed(rows)
        for y in rows:
            src = y * width + rect.left
            dst = (y + dy) * width + rect.left + dx
            # RHS slices materialize copies, so horizontal overlap within
            # a row is safe in either direction.
            chars[dst:dst + span] = chars[src:src + span]
            inverse[dst:dst + span] = inverse[src:src + span]
            bold[dst:dst + span] = bold[src:src + span]

    def device_hline(self, x0: int, x1: int, y: int, value: int) -> None:
        self._tally("hline")
        if value < 0 or not value:
            Graphic.device_hline(self, x0, x1, y, value)
            return
        for x in range(x0, x1 + 1):
            # Crossing a vertical rule makes a corner/junction glyph.
            current = self._surface.char_at(x, y)
            char = _X if current in (_V, _X) else _H
            self._surface.put(x, y, char, inverse=0)

    def device_vline(self, x: int, y0: int, y1: int, value: int) -> None:
        self._tally("vline")
        if value < 0 or not value:
            Graphic.device_vline(self, x, y0, y1, value)
            return
        for y in range(y0, y1 + 1):
            current = self._surface.char_at(x, y)
            char = _X if current in (_H, _X) else _V
            self._surface.put(x, y, char, inverse=0)

    def device_draw_text(self, x: int, y: int, text: str, font: FontDesc) -> None:
        self._tally("draw_text")
        clip = self.clip
        if y < clip.top or y >= clip.bottom:
            return
        bold = 1 if font.bold else 0
        col = x
        for char in text:
            if char == "\t":
                # A tab spans four cells, so a clip edge can split it.
                for _ in range(4):
                    if clip.left <= col < clip.right:
                        self._surface.put(col, y, " ", inverse=0, bold=bold)
                    col += 1
                continue
            if clip.left <= col < clip.right:
                self._surface.put(col, y, char, inverse=0, bold=bold)
            col += 1

    def device_blit(self, bitmap: Bitmap, x: int, y: int) -> None:
        self._tally("blit")
        for by in range(bitmap.height):
            for bx in range(bitmap.width):
                if bitmap.get(bx, by):
                    self._surface.put(x + bx, y + by, _INK, inverse=0)

    def font_metrics(self, desc: FontDesc) -> FontMetrics:
        # A cell device: every font is exactly one cell.
        return _cell_metrics(desc)


class AsciiOffscreen(OffscreenWindow):
    """Off-screen cell surface for the ascii backend."""

    def __init__(self, width: int, height: int) -> None:
        super().__init__(width, height)
        self.surface = CellSurface(width, height)

    def graphic(self) -> AsciiGraphic:
        return AsciiGraphic(self.surface)

    def _resize_surface(self, width: int, height: int) -> None:
        self.surface = CellSurface(width, height)

    def surface_bytes(self) -> int:
        # One char plus the inverse and bold attribute bytes per cell.
        return self.width * self.height * 3

    def copy_to(self, target: Graphic, x: int, y: int) -> None:
        self.count_blit()
        # The blit writes the target surface directly, so any batched
        # ops recorded before it must land first (recording order).
        target.settle()
        device = target.rect_to_device(Rect(x, y, self.width, self.height))
        visible = device.intersection(target.clip)
        if visible.is_empty():
            return
        if isinstance(target, AsciiGraphic):
            # Same-device blit: copy cells verbatim (char + inverse +
            # bold), clipped to the target — true copy semantics, so a
            # cached backing store lands pixel-identical.
            target._tally("blit")
            src, dst = self.surface, target._surface
            sx0 = visible.left - device.left
            sy0 = visible.top - device.top
            for row in range(visible.height):
                sy = sy0 + row
                dy = visible.top + row
                for col in range(visible.width):
                    sx = sx0 + col
                    dst.put(
                        visible.left + col, dy, src.char_at(sx, sy),
                        inverse=1 if src.inverse_at(sx, sy) else 0,
                        bold=1 if src.bold_at(sx, sy) else 0,
                    )
        else:
            # Cross-medium fallback (e.g. a printer drawable): rows as
            # text, which the target clips at glyph granularity.
            for row, line in enumerate(self.surface.lines()):
                if line.rstrip():
                    target.draw_string(x, y + row, line)


class AsciiWindow(BackendWindow):
    """A top-level window rendered as a character grid."""

    def __init__(self, title: str, width: int, height: int) -> None:
        super().__init__(title, width, height)
        self.surface = CellSurface(width, height)

    def graphic(self) -> AsciiGraphic:
        return self._wrap(AsciiGraphic(self.surface))

    def _resize_surface(self, width: int, height: int) -> None:
        self.surface = CellSurface(width, height)

    def snapshot_lines(self) -> List[str]:
        self.flush()  # settle batched ops before observing the cells
        return self.surface.lines()

    def snapshot(self) -> str:
        """The whole window as one newline-joined string."""
        return "\n".join(self.snapshot_lines())


class AsciiWindowSystem(WindowSystem):
    """The cell-grid window system (stands in for the ITC Andrew WS)."""

    atk_name = "asciiws"
    name = "ascii"

    def _make_window(self, title: str, width: int, height: int) -> AsciiWindow:
        return AsciiWindow(title, width, height)

    def create_offscreen(self, width: int, height: int) -> AsciiOffscreen:
        return AsciiOffscreen(width, height)

    def _font_metrics(self, desc: FontDesc) -> FontMetrics:
        return _cell_metrics(desc)

    def stats(self) -> Dict[str, int]:
        return {"windows": len(self.windows)}
