"""The raster window system: a pixel-framebuffer backend.

Plays the role of X.11 in this reproduction: windows are 1-bit pixel
framebuffers, text is rendered through the built-in 5x7 bitmap font, and
every device operation is tallied in a protocol-request counter the way
an X server counts requests.  Running the identical application on this
backend and on :mod:`repro.wm.ascii_ws` without modification is the
paper's section-8 portability claim (experiment E6).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .. import obs
from ..graphics.fontdesc import FontDesc, FontMetrics
from ..graphics.geometry import Point, Rect
from ..graphics.graphic import Graphic
from ..graphics.image import Bitmap
from ..graphics.minifont import GLYPH_HEIGHT, GLYPH_WIDTH, glyph_bitmap
from .base import BackendWindow, OffscreenWindow, WindowSystem

__all__ = ["RasterGraphic", "RasterWindow", "RasterWindowSystem", "font_scale"]


def font_scale(desc: FontDesc) -> int:
    """Integer scale factor realizing a point size on this device.

    Sizes up to ~20pt render at scale 1, then one step per ~14pt, so the
    layout engine sees genuinely different metrics per size — important
    for exercising multi-font text (§2).
    """
    return max(1, round(desc.size / 14))


#: Realized-metrics memo (FontDesc is immutable/hashable); the graphic
#: asks per draw_string, the layout engine per style run.
_METRICS_MEMO: Dict[FontDesc, FontMetrics] = {}


def _metrics_for(desc: FontDesc) -> FontMetrics:
    cached = _METRICS_MEMO.get(desc)
    if cached is not None:
        return cached
    scale = font_scale(desc)
    # +1 column of tracking between glyphs; one scaled row of leading.
    metrics = FontMetrics(
        desc,
        char_width=(GLYPH_WIDTH + 1) * scale,
        ascent=GLYPH_HEIGHT * scale,
        descent=1 * scale,
    )
    _METRICS_MEMO[desc] = metrics
    return metrics


class RequestCounter:
    """Counts 'protocol requests' per operation type, like an X server.

    Unified with the toolkit telemetry registry: each tally also lands
    there as ``wm.raster.<op>`` (plus the ``wm.raster.requests`` total)
    when metrics are enabled, so backend request counts appear in the
    same snapshot as the update/dispatch metrics they explain.
    """

    metric_prefix = "wm.raster."

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}

    def tally(self, op: str) -> None:
        self.counts[op] = self.counts.get(op, 0) + 1
        if obs.metrics_on:
            obs.registry.inc(self.metric_prefix + "requests")
            obs.registry.inc(self.metric_prefix + op)

    def total(self) -> int:
        return sum(self.counts.values())


class RasterGraphic(Graphic):
    """Drawable over a :class:`Bitmap` framebuffer."""

    def __init__(self, framebuffer: Bitmap, requests: RequestCounter,
                 origin: Point = Point(0, 0), clip: Rect = None):
        self._fb = framebuffer
        self._requests = requests
        super().__init__(origin, clip)

    # -- device primitives ---------------------------------------------

    def device_size(self) -> Tuple[int, int]:
        return (self._fb.width, self._fb.height)

    def device_fill_rect(self, rect: Rect, value: int) -> None:
        self._requests.tally("fill_rect")
        if value < 0:
            self._fb.invert_rect(rect)
        else:
            self._fb.fill_rect(rect, value)

    def device_set_pixel(self, x: int, y: int, value: int) -> None:
        self._requests.tally("set_pixel")
        if value < 0:
            self._fb.set_safe(x, y, 0 if self._fb.get_safe(x, y) else 1)
        else:
            self._fb.set_safe(x, y, value)

    def device_draw_text(self, x: int, y: int, text: str, font: FontDesc) -> None:
        self._requests.tally("draw_text")
        scale = font_scale(font)
        advance = (GLYPH_WIDTH + 1) * scale
        col = x
        for char in text:
            if char == "\t":
                col += 4 * advance
                continue
            glyph = glyph_bitmap(char, scale)
            self._blit_glyph(glyph, col, y)
            if font.bold:  # classic poor-man's bold: double-strike, 1px right
                self._blit_glyph(glyph, col + 1, y)
            col += advance

    def _blit_glyph(self, glyph: Bitmap, x: int, y: int) -> None:
        """OR a glyph into the framebuffer, cropped to the clip.

        A damage rect may split a glyph row; only the intersecting
        pixels land, so partial-line repaints are exact and no draw
        escapes the clip.
        """
        rect = Rect(x, y, glyph.width, glyph.height)
        visible = rect.intersection(self.clip)
        if visible.is_empty():
            return
        if visible != rect:
            glyph = glyph.crop(visible.offset(-x, -y))
            x, y = visible.left, visible.top
        self._fb.blit(glyph, x, y, mode="or")

    def device_blit(self, bitmap: Bitmap, x: int, y: int) -> None:
        self._requests.tally("blit")
        self._fb.blit(bitmap, x, y, mode="or")

    can_copy_area = True

    def device_copy_area(self, rect: Rect, dx: int, dy: int) -> None:
        self._requests.tally("copy_area")
        fb = self._fb
        rect = rect.intersection(Rect(0, 0, fb.width, fb.height))
        rect = rect.intersection(Rect(-dx, -dy, fb.width, fb.height))
        if rect.is_empty():
            return
        bits, width, span = fb._bits, fb.width, rect.width
        rows = range(rect.top, rect.bottom)
        if dy > 0:  # shifting down: copy bottom-up so sources stay unread
            rows = reversed(rows)
        for y in rows:
            src = y * width + rect.left
            dst = (y + dy) * width + rect.left + dx
            bits[dst:dst + span] = bits[src:src + span]

    def font_metrics(self, desc: FontDesc) -> FontMetrics:
        return _metrics_for(desc)


class RasterOffscreen(OffscreenWindow):
    """Off-screen pixmap for the raster backend."""

    def __init__(self, width: int, height: int, requests: RequestCounter):
        super().__init__(width, height)
        self.bitmap = Bitmap(width, height)
        self._requests = requests

    def graphic(self) -> RasterGraphic:
        return RasterGraphic(self.bitmap, self._requests)

    def _resize_surface(self, width: int, height: int) -> None:
        self.bitmap = Bitmap(width, height)

    def copy_to(self, target: Graphic, x: int, y: int) -> None:
        self.count_blit()
        # The blit writes the framebuffer directly, so any batched ops
        # recorded before it must land first (recording order).
        target.settle()
        device = target.rect_to_device(Rect(x, y, self.width, self.height))
        visible = device.intersection(target.clip)
        if visible.is_empty():
            return
        if isinstance(target, RasterGraphic):
            # Same-device blit in copy mode (background pixels too), so
            # the transferred rectangle *is* the surface — never wider
            # than the target's clip.
            self._requests.tally("blit")
            source = self.bitmap
            if visible != device:
                source = source.crop(visible.offset(-device.left, -device.top))
            target._fb.blit(source, visible.left, visible.top, mode="copy")
        else:
            target.draw_bitmap(self.bitmap, x, y)


class RasterWindow(BackendWindow):
    """A top-level window backed by a pixel framebuffer."""

    def __init__(self, title: str, width: int, height: int,
                 requests: RequestCounter):
        super().__init__(title, width, height)
        self.framebuffer = Bitmap(width, height)
        self._requests = requests

    def graphic(self) -> RasterGraphic:
        return self._wrap(RasterGraphic(self.framebuffer, self._requests))

    def _resize_surface(self, width: int, height: int) -> None:
        self.framebuffer = Bitmap(width, height)

    def snapshot_lines(self, cell_width: int = 6, cell_height: int = 8) -> List[str]:
        """Downsample the framebuffer to a text grid.

        Each ``cell_width x cell_height`` pixel block becomes one
        character by ink density, so raster snapshots remain printable
        and comparable to ascii snapshots at the block level.
        """
        self.flush()  # settle batched ops before observing the pixels
        lines = []
        for cy in range(0, self.height, cell_height):
            row = []
            for cx in range(0, self.width, cell_width):
                ink = 0
                total = 0
                for y in range(cy, min(cy + cell_height, self.height)):
                    for x in range(cx, min(cx + cell_width, self.width)):
                        ink += self.framebuffer.get(x, y)
                        total += 1
                density = ink / total if total else 0
                if density == 0:
                    row.append(" ")
                elif density < 0.2:
                    row.append(".")
                elif density < 0.5:
                    row.append("+")
                else:
                    row.append("#")
            lines.append("".join(row))
        return lines


class RasterWindowSystem(WindowSystem):
    """The pixel window system (stands in for X.11)."""

    atk_name = "rasterws"
    name = "raster"

    def __init__(self) -> None:
        super().__init__()
        self.requests = RequestCounter()

    def _make_window(self, title: str, width: int, height: int) -> RasterWindow:
        return RasterWindow(title, width, height, self.requests)

    def create_offscreen(self, width: int, height: int) -> RasterOffscreen:
        return RasterOffscreen(width, height, self.requests)

    def _font_metrics(self, desc: FontDesc) -> FontMetrics:
        return _metrics_for(desc)

    def stats(self) -> Dict[str, int]:
        stats = dict(self.requests.counts)
        stats["windows"] = len(self.windows)
        stats["requests_total"] = self.requests.total()
        return stats
