"""Window systems (paper section 8).

Two complete backends — :class:`~repro.wm.ascii_ws.AsciiWindowSystem`
(cell grid, standing in for the original Andrew window system) and
:class:`~repro.wm.raster_ws.RasterWindowSystem` (pixel framebuffer,
standing in for X.11) — behind the six-class porting interface of
:mod:`repro.wm.base`, selected at run time by the ``ANDREW_WM``
environment variable via :mod:`repro.wm.switch`.
"""

from .base import (
    BackendWindow,
    Cursor,
    OffscreenWindow,
    PORTING_CLASSES,
    WindowSystem,
    porting_surface,
)
from .events import (
    Event,
    FocusEvent,
    KeyEvent,
    MenuEvent,
    MouseAction,
    MouseButton,
    MouseEvent,
    ResizeEvent,
    TimerEvent,
    UpdateEvent,
)
from .ascii_ws import AsciiGraphic, AsciiWindow, AsciiWindowSystem, CellSurface
from .raster_ws import RasterGraphic, RasterWindow, RasterWindowSystem
from .printer import PrinterGraphic, PrinterJob
from .switch import (
    WM_ENV_VAR,
    available_window_systems,
    get_window_system,
    register_window_system,
)

__all__ = [
    "WindowSystem",
    "BackendWindow",
    "OffscreenWindow",
    "Cursor",
    "PORTING_CLASSES",
    "porting_surface",
    "Event",
    "MouseEvent",
    "MouseAction",
    "MouseButton",
    "KeyEvent",
    "MenuEvent",
    "UpdateEvent",
    "ResizeEvent",
    "FocusEvent",
    "TimerEvent",
    "AsciiWindowSystem",
    "AsciiWindow",
    "AsciiGraphic",
    "CellSurface",
    "RasterWindowSystem",
    "RasterWindow",
    "RasterGraphic",
    "PrinterJob",
    "PrinterGraphic",
    "WM_ENV_VAR",
    "get_window_system",
    "register_window_system",
    "available_window_systems",
]
