"""The window-system porting interface (paper section 8).

"To port the toolkit to another window system, six classes must be
written, encompassing approximately 70 routines":

=====================  ===============================================
Paper class            Here
=====================  ===============================================
Window System          :class:`WindowSystem`
Interaction Manager    :class:`BackendWindow` (the window-system half;
                       the view-tree half lives in ``repro.core.im``)
Cursor                 :class:`Cursor`
Graphic                a :class:`~repro.graphics.graphic.Graphic`
                       subclass per backend
FontDesc               the backend's ``font_metrics`` realization
Off Screen Window      :class:`OffscreenWindow`
=====================  ===============================================

Backends register themselves by name with :func:`register_window_system`
and are selected at run time by the ``ANDREW_WM`` environment variable
(see :mod:`repro.wm.switch`), reproducing the paper's env-var-selected,
dynamically loaded backend modules.  :func:`porting_surface` reports the
routine inventory a backend actually implements, which experiment E6
prints next to the paper's "six classes / ~70 routines" claim.
"""

from __future__ import annotations

import collections
import inspect
import os
from typing import Deque, Dict, List, Optional, Type

from .. import obs
from ..class_system.registry import ATKObject
from ..graphics import batch
from ..graphics.fontdesc import FontDesc, FontMetrics
from ..graphics.geometry import Point, Rect
from ..graphics.graphic import Graphic
from .events import (
    Event,
    KeyEvent,
    MenuEvent,
    MouseAction,
    MouseButton,
    MouseEvent,
    ResizeEvent,
    UpdateEvent,
)

__all__ = [
    "Cursor",
    "CursorShape",
    "OffscreenWindow",
    "SurfacePool",
    "BackendWindow",
    "WindowSystem",
    "porting_surface",
    "PORTING_CLASSES",
    "BUDGET_ENV",
    "DEFAULT_SURFACE_BUDGET",
]

PORTING_CLASSES = (
    "WindowSystem",
    "InteractionManager",
    "Cursor",
    "Graphic",
    "FontDesc",
    "OffScreenWindow",
)

#: Cursor shapes after the original cursor font.
CursorShape = str
ARROW: CursorShape = "arrow"
IBEAM: CursorShape = "ibeam"
CROSSHAIR: CursorShape = "crosshair"
WAIT: CursorShape = "wait"
HORIZONTAL_BARS: CursorShape = "horizontal-bars"  # the frame's divider cursor


class Cursor:
    """A mouse-cursor definition (the Cursor porting class).

    The toolkit side only names a shape; the backend realizes it.  The
    view tree's cursor arbitration (§3) decides *which* view's cursor is
    showing; this class is just the definition being shown.
    """

    __slots__ = ("shape",)

    def __init__(self, shape: CursorShape = ARROW) -> None:
        self.shape = shape

    def __eq__(self, other) -> bool:
        return isinstance(other, Cursor) and self.shape == other.shape

    def __hash__(self) -> int:
        return hash(("cursor", self.shape))

    def __repr__(self) -> str:
        return f"Cursor({self.shape!r})"


class OffscreenWindow:
    """An off-screen drawing surface (the OffScreenWindow porting class).

    Provides a :class:`Graphic` onto a hidden surface plus
    :meth:`copy_to`, which transfers the pixels into another graphic —
    how components pre-compose images (the animation component uses it
    for flicker-free frames, and the per-view backing-store compositor
    uses one per opted-in view).  ``copy_to`` has *copy* semantics —
    the surface's pixels replace the target's, background included —
    and must never write outside the target's clip.
    """

    def __init__(self, width: int, height: int) -> None:
        self.width = width
        self.height = height

    def graphic(self) -> Graphic:
        raise NotImplementedError

    def copy_to(self, target: Graphic, x: int, y: int) -> None:
        """Blit this surface's contents into ``target`` at (x, y)."""
        raise NotImplementedError

    def resize(self, width: int, height: int) -> None:
        """Reallocate the hidden surface (contents are discarded)."""
        if (width, height) == (self.width, self.height):
            return
        self.width = width
        self.height = height
        self._resize_surface(width, height)

    def _resize_surface(self, width: int, height: int) -> None:
        raise NotImplementedError

    def surface_bytes(self) -> int:
        """Approximate footprint, for the pool's byte budget."""
        return self.width * self.height

    @staticmethod
    def count_blit() -> None:
        """Tally one surface-to-drawable transfer (``wm.blits``)."""
        if obs.metrics_on:
            obs.registry.inc("wm.blits")


#: Environment override for the compositor pool budget, in bytes.
BUDGET_ENV = "ANDREW_COMPOSITOR_BUDGET"
DEFAULT_SURFACE_BUDGET = 8 << 20


def _env_budget() -> int:
    raw = os.environ.get(BUDGET_ENV, "").strip()
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_SURFACE_BUDGET


class SurfacePool:
    """A byte-budgeted LRU of per-view backing stores.

    One pool per :class:`WindowSystem`.  Each owner (a view) holds at
    most one surface; acquiring again with a new size resizes the
    existing surface in place rather than reallocating.  When the
    summed ``surface_bytes`` exceed the budget, least-recently-used
    surfaces are evicted and their owners told via ``_backing_evicted``
    — so a 1000-view tree cannot pin 1000 full-size surfaces.
    """

    def __init__(self, window_system: "WindowSystem",
                 budget: Optional[int] = None) -> None:
        self._ws = window_system
        self.budget = _env_budget() if budget is None else budget
        # id(owner) -> (owner, surface); insertion order is LRU order.
        self._entries: "collections.OrderedDict[int, tuple]" = (
            collections.OrderedDict()
        )
        self.bytes_used = 0

    def __len__(self) -> int:
        return len(self._entries)

    def acquire(self, owner, width: int, height: int) -> Optional[OffscreenWindow]:
        """A surface of exactly ``width`` x ``height`` for ``owner``.

        Reuses/resizes the owner's existing surface when present.
        Returns ``None`` when a single surface of this size would bust
        the whole budget — the caller must fall back to live drawing.
        """
        key = id(owner)
        entry = self._entries.pop(key, None)
        if entry is not None:
            surface = entry[1]
            self.bytes_used -= surface.surface_bytes()
            surface.resize(width, height)
        else:
            surface = self._ws.create_offscreen(width, height)
        cost = surface.surface_bytes()
        if cost > self.budget:
            self._notify_evicted(owner)
            return None
        self._entries[key] = (owner, surface)
        self.bytes_used += cost
        self._evict_over_budget(keep=key)
        return surface

    def touch(self, owner) -> None:
        """Mark ``owner``'s surface most-recently-used."""
        key = id(owner)
        if key in self._entries:
            self._entries.move_to_end(key)

    def get(self, owner) -> Optional[OffscreenWindow]:
        entry = self._entries.get(id(owner))
        return entry[1] if entry is not None else None

    def release(self, owner) -> None:
        """Drop ``owner``'s surface (view destroyed/unlinked); silent."""
        entry = self._entries.pop(id(owner), None)
        if entry is not None:
            self.bytes_used -= entry[1].surface_bytes()

    def flush(self) -> None:
        """Evict every surface (e.g. the backend window was resized)."""
        while self._entries:
            self._evict_one()

    def _evict_over_budget(self, keep: int) -> None:
        while self.bytes_used > self.budget and len(self._entries) > 1:
            oldest = next(iter(self._entries))
            if oldest == keep:
                # Never evict the surface being acquired; try the next.
                self._entries.move_to_end(oldest)
                oldest = next(iter(self._entries))
                if oldest == keep:
                    break
            self._evict_one(oldest)

    def _evict_one(self, key: Optional[int] = None) -> None:
        if key is None:
            key = next(iter(self._entries))
        owner, surface = self._entries.pop(key)
        self.bytes_used -= surface.surface_bytes()
        self._notify_evicted(owner)
        if obs.metrics_on:
            obs.registry.inc("view.cache_evictions")

    @staticmethod
    def _notify_evicted(owner) -> None:
        callback = getattr(owner, "_backing_evicted", None)
        if callback is not None:
            callback()


class BackendWindow:
    """One top-level window (the window-system half of the IM).

    Owns the event queue.  Applications/tests *inject* synthetic input
    with the ``inject_*`` methods — the reproduction's substitute for a
    human at a 1988 workstation — and the toolkit's interaction manager
    drains the queue with :meth:`next_event`.
    """

    def __init__(self, title: str, width: int, height: int) -> None:
        self.title = title
        self.width = width
        self.height = height
        self.mapped = True
        self.cursor = Cursor(ARROW)
        self._queue: Deque[Event] = collections.deque()
        self._button_down: Optional[MouseButton] = None
        self._window_system: Optional["WindowSystem"] = None
        #: Recorded device ops awaiting replay (the ``ANDREW_BATCH``
        #: command buffer); empty and inert while batching is off.
        self.commands = batch.CommandBuffer(self)

    # -- porting points ---------------------------------------------------

    def graphic(self) -> Graphic:
        """The root drawable covering the whole window."""
        raise NotImplementedError

    def _wrap(self, graphic: Graphic) -> Graphic:
        """Attach the command buffer to a freshly built drawable.

        Backends route every ``graphic()`` result through here so the
        whole frame records into one per-window op stream.  Child
        drawables inherit the buffer via ``Graphic.child``.
        """
        if batch.enabled:
            graphic._buffer = self.commands
        return graphic

    def _raw_graphic(self) -> Graphic:
        """A full-window drawable that always hits the device.

        The command buffer replays through this, so replay can never
        re-record into the buffer it is draining.
        """
        graphic = self.graphic()
        graphic._buffer = None
        return graphic

    def flush(self) -> None:
        """Push buffered output to the 'display'.

        Drains the command buffer: after ``flush`` the surface holds
        every recorded op's pixels.  Anything that *observes* the
        surface (``snapshot_lines``, ``pending_events``, a blit into
        the window) must flush first — mid-frame observers would
        otherwise see a half-settled display.
        """
        self.commands.flush()

    def set_cursor(self, cursor: Cursor) -> None:
        self.cursor = cursor

    def set_title(self, title: str) -> None:
        self.title = title

    def resize(self, width: int, height: int) -> None:
        """Resize the window surface and queue the resize + full expose.

        The old surface is gone, so every cached backing store rendered
        for it is suspect: the owning window system's offscreen pool is
        flushed, forcing the next repaint to come from live draw code.
        Pending command-buffer ops targeted the old surface and are
        discarded — the queued full expose re-records everything.
        """
        self.commands.discard()
        self.width = width
        self.height = height
        self._resize_surface(width, height)
        if self._window_system is not None:
            self._window_system.surfaces.flush()
        self.post_event(ResizeEvent(width, height))
        self.post_event(UpdateEvent(self.bounds, full=True))

    def _resize_surface(self, width: int, height: int) -> None:
        raise NotImplementedError

    def close(self) -> None:
        self.mapped = False

    # -- shared machinery ---------------------------------------------------

    @property
    def bounds(self) -> Rect:
        return Rect(0, 0, self.width, self.height)

    def post_event(self, event: Event) -> None:
        self._queue.append(event)

    def next_event(self) -> Optional[Event]:
        """Pop the oldest queued event, or None if the queue is empty."""
        return self._queue.popleft() if self._queue else None

    def pending_events(self) -> int:
        # An observation point: callers poll this between frames, so
        # settle the display before they act on what they see.
        self.flush()
        return len(self._queue)

    def queued_events(self) -> int:
        """Queue depth *without* flushing — the scheduler's readiness
        probe.  A server loop polling thousands of idle windows must
        not force a command-buffer replay on each; anything that acts
        on the display itself still goes through ``pending_events``."""
        return len(self._queue)

    # -- synthetic input ------------------------------------------------------

    def inject_mouse(
        self,
        action: MouseAction,
        x: int,
        y: int,
        button: MouseButton = MouseButton.LEFT,
        clicks: int = 1,
    ) -> None:
        if action == MouseAction.DOWN:
            self._button_down = button
        elif action == MouseAction.UP:
            self._button_down = None
        self.post_event(MouseEvent(action, Point(x, y), button, clicks))

    def inject_click(self, x: int, y: int, button: MouseButton = MouseButton.LEFT):
        """A down+up pair at the same spot — one user click."""
        self.inject_mouse(MouseAction.DOWN, x, y, button)
        self.inject_mouse(MouseAction.UP, x, y, button)

    def inject_drag(self, x0: int, y0: int, x1: int, y1: int,
                    button: MouseButton = MouseButton.LEFT) -> None:
        """Press at (x0, y0), drag to (x1, y1), release."""
        self.inject_mouse(MouseAction.DOWN, x0, y0, button)
        self.inject_mouse(MouseAction.DRAG, x1, y1, button)
        self.inject_mouse(MouseAction.UP, x1, y1, button)

    def inject_key(self, char: str, ctrl: bool = False, meta: bool = False) -> None:
        self.post_event(KeyEvent(char, ctrl=ctrl, meta=meta))

    def inject_keys(self, text: str) -> None:
        """Type each character of ``text`` as a separate keystroke."""
        for char in text:
            self.inject_key("Return" if char == "\n" else char)

    def inject_menu(self, card: str, item: str) -> None:
        self.post_event(MenuEvent(card, item))

    def inject_expose(self, area: Optional[Rect] = None) -> None:
        area = self.bounds if area is None else area
        self.post_event(UpdateEvent(area, full=(area == self.bounds)))

    # -- inspection -------------------------------------------------------------

    def snapshot_lines(self) -> List[str]:
        """A human-readable rendering of the window contents.

        Ascii backend: the literal cell grid.  Raster backend: a coarse
        downsampling.  Used by examples and snapshot benches.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.title!r} "
            f"{self.width}x{self.height}>"
        )


class WindowSystem(ATKObject):
    """Abstract window system (the WindowSystem porting class).

    "This class exists to allow the toolkit to get a handle on the other
    window system classes" — it is the factory for windows, offscreen
    surfaces, cursors and font metrics.
    """

    atk_register = False

    #: Backend name used by the ``ANDREW_WM`` switch.
    name = "abstract"

    def __init__(self) -> None:
        super().__init__()
        self.windows: List[BackendWindow] = []
        # FontDesc is immutable/hashable and FontMetrics carries no
        # mutable state, so realized metrics are memoized per desc —
        # text layout asks for metrics once per style run, per line.
        self._metrics_cache: Dict[FontDesc, FontMetrics] = {}
        #: Byte-budgeted LRU of per-view backing stores (the compositor).
        self.surfaces = SurfacePool(self)

    def create_window(self, title: str, width: int, height: int) -> BackendWindow:
        window = self._make_window(title, width, height)
        window._window_system = self
        self.windows.append(window)
        if obs.metrics_on:
            obs.registry.inc("wm.windows_created")
            obs.registry.inc(f"wm.windows_created.{self.name}")
        return window

    def _make_window(self, title: str, width: int, height: int) -> BackendWindow:
        raise NotImplementedError

    def create_offscreen(self, width: int, height: int) -> OffscreenWindow:
        raise NotImplementedError

    def create_cursor(self, shape: CursorShape) -> Cursor:
        return Cursor(shape)

    def font_metrics(self, desc: FontDesc) -> FontMetrics:
        """Realized metrics for ``desc``, memoized per window system.

        Backends implement :meth:`_font_metrics`; every caller goes
        through this cache (hit/miss counters: ``font.metrics_hits`` /
        ``font.metrics_misses``).
        """
        cached = self._metrics_cache.get(desc)
        if cached is not None:
            if obs.metrics_on:
                obs.registry.inc("font.metrics_hits")
            return cached
        metrics = self._font_metrics(desc)
        self._metrics_cache[desc] = metrics
        if obs.metrics_on:
            obs.registry.inc("font.metrics_misses")
        return metrics

    def _font_metrics(self, desc: FontDesc) -> FontMetrics:
        """Backend hook: realize metrics for one font description."""
        raise NotImplementedError

    def stats(self) -> Dict[str, int]:
        """Backend-specific counters (e.g. raster protocol requests)."""
        return {}


def _overridden_methods(cls: type, base: type) -> List[str]:
    """Names of public methods ``cls`` (re)defines relative to ``base``."""
    names = []
    for klass in cls.__mro__:
        if klass in (base, object) or not issubclass(klass, base):
            continue
        for name, member in vars(klass).items():
            if name.startswith("_"):
                continue
            if inspect.isfunction(member) and name not in names:
                names.append(name)
    return sorted(names)


def porting_surface(
    window_system_cls: Type[WindowSystem],
    window_cls: Type[BackendWindow],
    graphic_cls: Type[Graphic],
    offscreen_cls: Type[OffscreenWindow],
) -> Dict[str, List[str]]:
    """Inventory the routines a backend implements, per porting class.

    This is the measured counterpart of the paper's "six classes,
    approximately 70 routines" port cost: the Graphic entry also counts
    the ~50 "simple transformations to the graphics layer" the shared
    base class provides once the device primitives exist.
    """
    graphic_ops = _overridden_methods(graphic_cls, object)
    return {
        "WindowSystem": _overridden_methods(window_system_cls, ATKObject),
        "InteractionManager": _overridden_methods(window_cls, object),
        "Cursor": _overridden_methods(Cursor, object) or ["shape"],
        "Graphic": graphic_ops,
        "FontDesc": ["font_metrics", "string_width", "chars_that_fit", "height"],
        "OffScreenWindow": _overridden_methods(offscreen_cls, object),
    }
