"""Run-time window system selection (paper section 8).

"The choice of window system to use is currently controlled by the
setting of an environment variable."  This module reproduces that
switch: :func:`get_window_system` reads ``ANDREW_WM`` (default
``ascii``), resolves the backend through a registry, and instantiates
it.  Unknown names fall through to the dynamic class loader, so a
*third* window system can be added as a plugin without touching this
package — the same extension story as every other toolkit component.

"Applications are normally configured for one system.  However, using
the dynamic loading facility, the modules for the other system can be
loaded at run time."
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional

from ..class_system.dynamic import default_loader
from ..class_system.errors import DynamicLoadError
from .ascii_ws import AsciiWindowSystem
from .base import WindowSystem
from .raster_ws import RasterWindowSystem

__all__ = [
    "WM_ENV_VAR",
    "register_window_system",
    "available_window_systems",
    "get_window_system",
]

WM_ENV_VAR = "ANDREW_WM"

def _remote_from_env() -> WindowSystem:
    # Imported lazily: repro.remote imports the wm package back.
    from ..remote.backend import RemoteWindowSystem

    return RemoteWindowSystem.from_env()


_FACTORIES: Dict[str, Callable[[], WindowSystem]] = {
    "ascii": AsciiWindowSystem,
    "raster": RasterWindowSystem,
    "remote": _remote_from_env,
}


def register_window_system(name: str, factory: Callable[[], WindowSystem]) -> None:
    """Make ``factory`` selectable as ``ANDREW_WM=name``."""
    _FACTORIES[name] = factory


def available_window_systems() -> list:
    """Names of the registered backends, sorted."""
    return sorted(_FACTORIES)


def get_window_system(name: Optional[str] = None) -> WindowSystem:
    """Instantiate the selected window system.

    Resolution order: explicit ``name`` argument, then the ``ANDREW_WM``
    environment variable, then ``ascii``.  A name with no registered
    factory is tried as ``<name>ws`` through the dynamic class loader
    (plugins register a WindowSystem subclass under that name).
    """
    if name is None:
        name = os.environ.get(WM_ENV_VAR, "ascii")
    factory = _FACTORIES.get(name)
    if factory is not None:
        return factory()
    try:
        cls = default_loader().load(f"{name}ws")
    except DynamicLoadError as exc:
        known = ", ".join(available_window_systems())
        raise DynamicLoadError(
            f"unknown window system {name!r} (registered: {known}) "
            f"and no loadable plugin: {exc}"
        ) from exc
    if not (isinstance(cls, type) and issubclass(cls, WindowSystem)):
        raise DynamicLoadError(
            f"plugin {name}ws resolved to {cls!r}, not a WindowSystem"
        )
    instance = cls()
    register_window_system(name, cls)
    return instance
