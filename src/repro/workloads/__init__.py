"""Workload generators: figure documents and synthetic user sessions."""

from .documents import (
    big_cat_raster,
    build_expense_letter,
    build_fig3_message_body,
    build_fig4_message_body,
    build_fig5_document,
)
from .sessions import (
    EditAction,
    TASK_MIX,
    actions_to_keys,
    generate_session,
    replay_on_textview,
    score_editor_capabilities,
)

__all__ = [
    "build_fig5_document",
    "build_expense_letter",
    "build_fig3_message_body",
    "build_fig4_message_body",
    "big_cat_raster",
    "EditAction",
    "TASK_MIX",
    "actions_to_keys",
    "generate_session",
    "replay_on_textview",
    "score_editor_capabilities",
]
