"""Synthetic editing sessions (experiments E3 and E12).

Generates deterministic user-input streams — typing, cursor motion,
selections, style application, component insertion — and replays them
against an editor, standing in for the §9 campus user population.  The
E12 adoption comparison replays the same task list against EZ and
against a plain-text-only editor model and scores what each can
accomplish.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sim.paging import Lcg

__all__ = [
    "EditAction",
    "actions_to_keys",
    "generate_session",
    "replay_on_textview",
    "TASK_MIX",
    "score_editor_capabilities",
]

# One campus task mix: what fraction of edit actions are of each kind.
TASK_MIX: List[Tuple[str, int]] = [
    ("type", 55),          # plain typing
    ("move", 20),          # cursor motion
    ("delete", 10),        # corrections
    ("style", 6),          # make something bold/italic/centered
    ("embed", 5),          # insert a table/drawing/equation/raster
    ("newline", 4),
]

_WORDS = (
    "the toolkit provides a general framework for building and combining "
    "components across a diverse set of machines and window systems"
).split()

_STYLES = ("bold", "italic", "center", "bigger")
_COMPONENTS = ("table", "drawing", "equation", "raster", "animation")


class EditAction:
    """One synthetic user action."""

    __slots__ = ("kind", "payload")

    def __init__(self, kind: str, payload: Optional[str] = None) -> None:
        self.kind = kind
        self.payload = payload

    def __repr__(self) -> str:
        return f"EditAction({self.kind!r}, {self.payload!r})"


def generate_session(length: int, seed: int = 42) -> List[EditAction]:
    """A deterministic action stream of ``length`` actions."""
    rng = Lcg(seed)
    total = sum(weight for _, weight in TASK_MIX)
    actions: List[EditAction] = []
    for _ in range(length):
        pick = rng.randint(0, total - 1)
        kind = TASK_MIX[-1][0]
        for candidate, weight in TASK_MIX:
            if pick < weight:
                kind = candidate
                break
            pick -= weight
        if kind == "type":
            word = _WORDS[rng.randint(0, len(_WORDS) - 1)]
            actions.append(EditAction("type", word + " "))
        elif kind == "move":
            actions.append(
                EditAction("move", ("Left", "Right", "Up", "Down")[
                    rng.randint(0, 3)])
            )
        elif kind == "delete":
            actions.append(EditAction("delete"))
        elif kind == "style":
            actions.append(
                EditAction("style", _STYLES[rng.randint(0, len(_STYLES) - 1)])
            )
        elif kind == "embed":
            actions.append(
                EditAction(
                    "embed",
                    _COMPONENTS[rng.randint(0, len(_COMPONENTS) - 1)],
                )
            )
        else:
            actions.append(EditAction("newline"))
    return actions


def actions_to_keys(actions: List[EditAction]) -> List[str]:
    """Lower an action stream to the key names a session's window takes.

    This is the adapter between the E3/E12 replay corpus and the
    multi-session server soak: the same deterministic streams, but
    expressed as keystrokes (:meth:`repro.server.session.Session.submit_key`
    names) so they travel the full input path — queue, scheduler slice,
    keymap — instead of calling mutators directly.  Styles and embeds
    have no single-key form and are skipped, exactly as they are in the
    plain-editor arm of E12.
    """
    keys: List[str] = []
    for action in actions:
        if action.kind == "type":
            keys.extend(action.payload)
        elif action.kind == "move":
            keys.append(action.payload)
        elif action.kind == "delete":
            keys.append("Backspace")
        elif action.kind == "newline":
            keys.append("Return")
    return keys


def replay_on_textview(textview, actions: List[EditAction],
                       allow_styles: bool = True,
                       allow_embeds: bool = True) -> Dict[str, int]:
    """Replay a session against a live text view.

    ``allow_styles``/``allow_embeds`` model a plain-text editor's
    limitations: disallowed actions are counted as ``unsupported`` and
    skipped — the user would have had to leave the editor to do them.
    """
    from ..class_system.dynamic import load_class

    counts: Dict[str, int] = {
        "performed": 0, "unsupported": 0, "chars": 0, "embeds": 0
    }
    for action in actions:
        if action.kind == "type":
            textview.insert_text(action.payload)
            counts["chars"] += len(action.payload)
        elif action.kind == "newline":
            textview.insert_text("\n")
            counts["chars"] += 1
        elif action.kind == "move":
            delta = -1 if action.payload in ("Left", "Up") else 1
            textview.set_dot(textview.dot + delta)
        elif action.kind == "delete":
            if textview.dot > 0:
                textview.data.delete(textview.dot - 1, 1)
        elif action.kind == "style":
            if not allow_styles:
                counts["unsupported"] += 1
                continue
            start = max(0, textview.dot - 6)
            if textview.dot > start:
                textview.data.add_style(start, textview.dot, action.payload)
        elif action.kind == "embed":
            if not allow_embeds:
                counts["unsupported"] += 1
                continue
            cls = load_class(action.payload)
            textview.insert_object(cls())
            counts["embeds"] += 1
        counts["performed"] += 1
    return counts


def score_editor_capabilities(counts: Dict[str, int]) -> float:
    """Fraction of the user's intended work the editor could do."""
    total = counts["performed"] + counts["unsupported"]
    return counts["performed"] / total if total else 1.0
