"""Document builders for the paper's figures.

Programmatic constructions of the compound documents the paper's
snapshots show, used by examples, snapshot benches and integration
tests.  The centerpiece is :func:`build_fig5_document` — "an example
text component that contains a table.  The table contains a number of
other components including another text component, an equation and an
animation.  It also shows off the spreadsheet capabilities of the
table."
"""

from __future__ import annotations

from ..components.animation import AnimationData, pascal_triangle_frames
from ..components.drawing import DrawingData, EllipseShape, LineShape
from ..components.equation import EquationData
from ..components.raster import RasterData
from ..components.table import TableData
from ..components.text import TextData
from ..graphics.geometry import Rect

__all__ = [
    "build_fig5_document",
    "build_fig3_message_body",
    "build_fig4_message_body",
    "build_expense_letter",
    "big_cat_raster",
]


def build_fig5_document() -> TextData:
    """The Figure-5 EZ document: text ⊃ table ⊃ {text, equation,
    animation, spreadsheet}."""
    doc = TextData(
        "This is an example text component that contains a table. "
        "The table contains a number of\n"
        "other components including another text component, an equation "
        "and an animation. It also\n"
        "shows off the spreadsheet capabilities of the table.\n\n"
        "Pascal's Triangle\n\n"
    )
    heading = doc.search("Pascal's Triangle")
    doc.add_style(heading, heading + len("Pascal's Triangle"), "heading")

    table = TableData(3, 2)

    inner_text = TextData(
        "This table contains several descriptions of Pascal's Triangle. "
        "It contains a set of equations which defines the values of the "
        "triangle. It also contains an animation showing the building of "
        "the triangle. Finally there is an implementation of Pascal's "
        "Triangle using the spreadsheet facilities of the table object.\n"
        "In order to run the animation, click into the cell and choose "
        "the animate item from the menus.\n"
    )
    table.embed_object(0, 0, inner_text, "textview")

    equations = EquationData(
        "v_{0,0} = v_{i,0} = 0",
        "v_{1,1} = 1",
        "v_{i,j} = v_{i-1,j} + v_{i,j-1}",
    )
    table.embed_object(0, 1, equations, "equationview")

    animation = AnimationData(pascal_triangle_frames(5), period=1)
    table.embed_object(1, 1, animation, "animationview")

    # The spreadsheet Pascal's triangle: column A is the edge of ones,
    # every other cell sums its neighbours above and to the left.
    spreadsheet = TableData(5, 5)
    for row in range(5):
        spreadsheet.set_cell(row, 0, 1)
    for row in range(1, 5):
        for col in range(1, row + 1):
            from ..components.table.formula import ref_name

            above = ref_name(row - 1, col - 1)
            left = ref_name(row - 1, col)
            spreadsheet.set_cell(row, col, f"={above}+{left}")
    table.embed_object(2, 1, spreadsheet, "tableview")

    doc.append_object(table, "spread")
    doc.append("\nThe End\n")
    return doc


def build_expense_letter() -> TextData:
    """The Figure-1 letter: text with an embedded expense table."""
    doc = TextData("February 11, 1988\n\nDear David,\n"
                   "Enclosed is a list of our expenses ...\n\n")
    doc.add_style(0, len("February 11, 1988"), "bold")
    table = TableData(4, 2)
    for row, (item, amount) in enumerate(
        [("Rent", 450), ("Food", 220), ("Travel", 130)]
    ):
        table.set_cell(row, 0, item)
        table.set_cell(row, 1, amount)
    table.set_cell(3, 0, "Total")
    table.set_cell(3, 1, "=SUM(B1:B3)")
    doc.append_object(table, "spread")
    doc.append("\nHope you have a nice ...\n")
    return doc


def build_fig3_message_body() -> TextData:
    """The Figure-3 message: text explaining the mail system, with an
    embedded hierarchical drawing."""
    body = TextData(
        "The Andrew message system is, not surprisingly, internally "
        "complicated. The\n"
        "drawing below depicts these complications hierarchically. "
        "At the top\n"
        "level, it simply shows the five major types of components of "
        "the system,\n"
        "which run on five different categories of machines.\n\n"
    )
    drawing = DrawingData(60, 12)
    drawing.add_text(Rect(18, 0, 26, 1), TextData("Internetwork connections"))
    drawing.add_shape(EllipseShape(Rect(20, 1, 22, 3)))
    # Each machine category is a grouped cluster (the message was drawn
    # with "the zip hierarchical drawing editor", per the caption).
    for x in (8, 24, 40):
        link = drawing.add_shape(LineShape(30, 4, x + 6, 7))
        bubble = drawing.add_shape(EllipseShape(Rect(x, 7, 13, 3)))
        drawing.group_shapes([link, bubble])
    drawing.add_text(Rect(4, 11, 50, 1),
                     TextData("Delivery System   (queue-try-switch mail)"))
    body.append_object(drawing, "drawingview")
    body.append("\n")
    return body


def big_cat_raster(width: int = 24, height: int = 10) -> RasterData:
    """A stand-in for Figure 4's scanned cat picture: a generated
    raster with enough structure to survive scaling tests."""
    raster = RasterData(width, height)
    for x in range(width):
        raster.bitmap.set(x, 0, 1)
        raster.bitmap.set(x, height - 1, 1)
    for y in range(height):
        raster.bitmap.set(0, y, 1)
        raster.bitmap.set(width - 1, y, 1)
    # Ears, eyes, whiskers — schematic cat.
    for x, y in [(4, 2), (5, 1), (6, 2), (17, 2), (18, 1), (19, 2),
                 (7, 4), (16, 4), (11, 6), (12, 6)]:
        if x < width and y < height:
            raster.bitmap.set(x, y, 1)
    for x in range(3, min(9, width)):
        raster.bitmap.set(x, 7, 1)
    for x in range(max(0, width - 9), width - 3):
        raster.bitmap.set(x, 7, 1)
    raster.changed("pixels")
    return raster


def build_fig4_message_body() -> TextData:
    """The Figure-4 composition body: text plus an embedded raster."""
    body = TextData(
        "Knowing your fondness for big cats, here's a picture I "
        "recently found.\n\n"
    )
    body.append_object(big_cat_raster(), "rasterview")
    body.append("\n")
    return body
