"""A miniature Class preprocessor (paper section 6).

The original toolkit described classes in ``.ch`` header files; a simple
preprocessor turned each into an export header (``.eh``, used by the
class's implementation) and an import header (``.ih``, used by clients).
The ``.ch`` grammar distinguished *class procedures*, *methods*,
*overrides* of superclass methods, and *data* (instance fields).

This module parses the same surface syntax (trimmed of C type noise) and
realizes descriptions as live Python classes registered with the class
system.  It exists for fidelity — the reproduction's components are
ordinary Python classes — but it is fully functional: the test suite
defines working components from ``.ch`` text, and
:func:`emit_export_header` / :func:`emit_import_header` regenerate
``.eh``/``.ih``-style artifacts.

Accepted grammar (one class per source)::

    class <Name>[<registryname>] : <SuperName> {
      classprocedures:
        <name>(<params>) [returns <type>];
      methods:
        <name>(<params>) [returns <type>];
      overrides:
        <name>(<params>) [returns <type>];
      data:
        <type> <name>;
    };

Comments run from ``/*`` to ``*/`` or from ``//`` to end of line.  The
``[registryname]`` part is optional and defaults to the lowercased class
name, as with the metaclass.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional, Type

from .errors import PreprocessorError
from .registry import ATKObject, classprocedure, lookup

__all__ = [
    "MethodDescription",
    "FieldDescription",
    "ClassDescription",
    "parse_ch",
    "realize_class",
    "emit_export_header",
    "emit_import_header",
]

_COMMENT_RE = re.compile(r"/\*.*?\*/|//[^\n]*", re.DOTALL)
_CLASS_RE = re.compile(
    r"class\s+(?P<name>\w+)\s*(?:\[\s*(?P<reg>\w+)\s*\])?\s*"
    r"(?::\s*(?P<super>\w+)\s*(?:\[\s*\w+\s*\])?)?\s*\{(?P<body>.*)\}\s*;?\s*$",
    re.DOTALL,
)
_SECTION_NAMES = ("classprocedures", "methods", "overrides", "data")
_METHOD_RE = re.compile(
    r"^(?P<name>[A-Za-z_]\w*)\s*\((?P<params>[^)]*)\)\s*"
    r"(?:returns\s+(?P<ret>[\w\s*]+?))?\s*$"
)
_FIELD_RE = re.compile(r"^(?P<type>[\w\s*]+?)\s*[\s*](?P<name>\w+)\s*$")


class MethodDescription:
    """One method/classprocedure/override declaration from a ``.ch``."""

    __slots__ = ("name", "params", "returns", "kind")

    def __init__(self, name: str, params: List[str], returns: Optional[str], kind: str):
        self.name = name
        self.params = params
        self.returns = returns
        self.kind = kind  # "classprocedure" | "method" | "override"

    def signature(self) -> str:
        ret = f" returns {self.returns}" if self.returns else ""
        return f"{self.name}({', '.join(self.params)}){ret}"

    def __repr__(self) -> str:
        return f"MethodDescription({self.signature()!r}, kind={self.kind!r})"


class FieldDescription:
    """One ``data:`` field declaration from a ``.ch``."""

    __slots__ = ("ctype", "name")

    def __init__(self, ctype: str, name: str):
        self.ctype = ctype
        self.name = name

    def __repr__(self) -> str:
        return f"FieldDescription({self.ctype!r}, {self.name!r})"


class ClassDescription:
    """Parsed form of one ``.ch`` class description."""

    def __init__(
        self,
        name: str,
        registry_name: str,
        superclass: Optional[str],
        methods: List[MethodDescription],
        fields: List[FieldDescription],
    ) -> None:
        self.name = name
        self.registry_name = registry_name
        self.superclass = superclass
        self.methods = methods
        self.fields = fields

    def methods_of_kind(self, kind: str) -> List[MethodDescription]:
        return [m for m in self.methods if m.kind == kind]

    def __repr__(self) -> str:
        return (
            f"ClassDescription(name={self.name!r}, super={self.superclass!r}, "
            f"methods={len(self.methods)}, fields={len(self.fields)})"
        )


def _strip_comments(source: str) -> str:
    return _COMMENT_RE.sub("", source)


def _split_params(raw: str) -> List[str]:
    raw = raw.strip()
    if not raw or raw == "void":
        return []
    return [p.strip() for p in raw.split(",") if p.strip()]


def parse_ch(source: str) -> ClassDescription:
    """Parse ``.ch`` text into a :class:`ClassDescription`.

    Raises :class:`PreprocessorError` with a line number on malformed
    input.
    """
    cleaned = _strip_comments(source).strip()
    match = _CLASS_RE.match(cleaned)
    if match is None:
        raise PreprocessorError(
            "source does not match 'class Name[reg] : Super { ... };'"
        )
    name = match.group("name")
    registry_name = match.group("reg") or name.lower()
    superclass = match.group("super")
    body = match.group("body")

    methods: List[MethodDescription] = []
    fields: List[FieldDescription] = []
    section: Optional[str] = None
    section_re = re.compile(
        r"^(?P<name>" + "|".join(_SECTION_NAMES) + r")\s*:\s*(?P<rest>.*)$",
        re.IGNORECASE,
    )
    for lineno, raw_line in enumerate(body.splitlines(), start=1):
        line = raw_line.strip()
        if not line:
            continue
        for decl in filter(None, (d.strip() for d in line.split(";"))):
            header = section_re.match(decl)
            if header is not None:
                section = header.group("name").lower()
                decl = header.group("rest").strip()
                if not decl:
                    continue
            if section is None:
                raise PreprocessorError(
                    f"declaration {decl!r} outside any section", lineno
                )
            if section == "data":
                fmatch = _FIELD_RE.match(decl)
                if fmatch is None:
                    raise PreprocessorError(f"bad field {decl!r}", lineno)
                fields.append(
                    FieldDescription(fmatch.group("type").strip(), fmatch.group("name"))
                )
            else:
                mmatch = _METHOD_RE.match(decl)
                if mmatch is None:
                    raise PreprocessorError(f"bad method {decl!r}", lineno)
                kind = "classprocedure" if section == "classprocedures" else (
                    "override" if section == "overrides" else "method"
                )
                methods.append(
                    MethodDescription(
                        mmatch.group("name"),
                        _split_params(mmatch.group("params")),
                        (mmatch.group("ret") or "").strip() or None,
                        kind,
                    )
                )
    return ClassDescription(name, registry_name, superclass, methods, fields)


def _make_stub(desc: ClassDescription, method: MethodDescription) -> Callable:
    def stub(self, *args, **kwargs):
        raise NotImplementedError(
            f"{desc.name}.{method.name} declared in .ch but not implemented"
        )

    stub.__name__ = method.name
    stub.__doc__ = f"Declared in .ch as ``{method.signature()}``."
    return stub


def realize_class(
    desc: ClassDescription,
    implementations: Optional[Dict[str, Callable]] = None,
    base: Optional[Type[ATKObject]] = None,
) -> Type[ATKObject]:
    """Turn a parsed description into a live, registered toolkit class.

    ``implementations`` maps method names to callables; declared methods
    without an implementation become :exc:`NotImplementedError` stubs.
    ``base`` overrides superclass resolution (otherwise the declared
    superclass is looked up in the registry; no superclass means
    :class:`ATKObject`).  Declared ``data:`` fields are initialized to
    ``None`` by a generated ``__init__`` that first calls the base.
    """
    implementations = dict(implementations or {})
    if base is None:
        base = lookup(desc.superclass) if desc.superclass else ATKObject

    field_names = [f.name for f in desc.fields]

    def generated_init(self, *args, **kwargs):
        base.__init__(self, *args, **kwargs)
        for fname in field_names:
            if not hasattr(self, fname):
                setattr(self, fname, None)

    namespace: Dict[str, object] = {
        "atk_name": desc.registry_name,
        "__doc__": f"Generated from .ch description of {desc.name}.",
        "__ch_description__": desc,
        "__init__": implementations.pop("__init__", generated_init),
    }
    for method in desc.methods:
        impl = implementations.pop(method.name, None) or _make_stub(desc, method)
        if method.kind == "classprocedure":
            namespace[method.name] = classprocedure(impl)
        else:
            namespace[method.name] = impl
    if implementations:
        extra = ", ".join(sorted(implementations))
        raise PreprocessorError(
            f"implementations provided for undeclared methods: {extra}"
        )
    return type(desc.name, (base,), namespace)


def emit_export_header(desc: ClassDescription) -> str:
    """Regenerate an ``.eh``-style export header from a description."""
    lines = [f"/* {desc.name}.eh -- generated export header */"]
    lines.append(f"#define {desc.registry_name}_VERSION 1")
    for field in desc.fields:
        lines.append(f"    {field.ctype} {field.name};")
    for method in desc.methods:
        macro = f"{desc.registry_name}_{method.name}"
        lines.append(f"#define {macro}(self) /* {method.signature()} */")
    return "\n".join(lines) + "\n"


def emit_import_header(desc: ClassDescription) -> str:
    """Regenerate an ``.ih``-style import header from a description."""
    lines = [f"/* {desc.name}.ih -- generated import header */"]
    sup = desc.superclass or "base"
    lines.append(f"/* class {desc.registry_name} : {sup} */")
    for method in desc.methods:
        if method.kind == "classprocedure":
            lines.append(f"extern {desc.registry_name}__{method.name}();")
        else:
            lines.append(f"/* method {method.signature()} */")
    return "\n".join(lines) + "\n"
