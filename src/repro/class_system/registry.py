"""The Andrew Class System: registry, single inheritance, class procedures.

The Andrew Toolkit was written in C with a small preprocessor ("Class")
that provided an object-oriented environment with:

* **single inheritance** — each class has at most one superclass;
* **object methods** — overridable in subclasses (like C++ virtuals);
* **class procedures** — like Smalltalk class methods, but *not*
  overridable in subclasses;
* a **run-time registry** mapping class names to implementations, which
  is what made dynamic loading by name possible.

This module reproduces those semantics on top of Python's class
machinery.  Toolkit classes derive from :class:`ATKObject`, whose
metaclass registers every subclass by name, rejects multiple toolkit
inheritance, and rejects overrides of members marked with
:func:`classprocedure`.

Example
-------
>>> class Fruit(ATKObject):
...     @classprocedure
...     def kingdom(cls):
...         return "plantae"
...     def name(self):
...         return "fruit"
>>> class Apple(Fruit):
...     def name(self):          # object methods may be overridden
...         return "apple"
>>> lookup("apple") is Apple
True
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterator, List, Optional, Type

from .errors import (
    ClassLookupError,
    ClassProcedureOverrideError,
    ClassRegistrationError,
    MultipleInheritanceError,
)

__all__ = [
    "ATKObject",
    "ATKMeta",
    "classprocedure",
    "ClassInfo",
    "register",
    "lookup",
    "is_registered",
    "registered_names",
    "unregister",
    "subclasses_of",
    "class_info",
]


class classprocedure:
    """Mark a callable as an Andrew *class procedure*.

    Class procedures behave like Python ``classmethod``s when called, but
    the metaclass forbids subclasses from overriding them — mirroring the
    paper's distinction between overridable object methods and
    non-overridable class procedures (section 6).
    """

    def __init__(self, func: Callable) -> None:
        self.__func__ = func
        self.__doc__ = func.__doc__
        self.__name__ = func.__name__

    def __set_name__(self, owner: type, name: str) -> None:
        self.__name__ = name

    def __get__(self, instance, owner=None):
        owner = owner if owner is not None else type(instance)
        return self.__func__.__get__(owner, type(owner))


class ClassInfo:
    """Metadata the registry keeps for each toolkit class.

    Stores the class name (the key used for by-name lookup and for
    datastream type tags), its superclass, where it was loaded from, and
    the set of class-procedure names — information the original Class
    runtime kept in its ``classinfo`` structures.
    """

    __slots__ = ("name", "cls", "superclass", "origin", "class_procedures", "versions")

    def __init__(
        self,
        name: str,
        cls: type,
        superclass: Optional[type],
        origin: str,
        class_procedures: frozenset,
    ) -> None:
        self.name = name
        self.cls = cls
        self.superclass = superclass
        self.origin = origin
        self.class_procedures = class_procedures
        self.versions = 1

    def __repr__(self) -> str:
        sup = self.superclass.__name__ if self.superclass else None
        return (
            f"ClassInfo(name={self.name!r}, cls={self.cls.__name__}, "
            f"superclass={sup}, origin={self.origin!r})"
        )


_registry_lock = threading.RLock()
_registry: Dict[str, ClassInfo] = {}


def _atk_bases(bases) -> List[type]:
    """Return the toolkit (ATKObject-derived) bases among ``bases``."""
    return [b for b in bases if isinstance(b, ATKMeta)]


def _collect_class_procedures(cls: type) -> frozenset:
    names = set()
    for klass in cls.__mro__:
        for attr, value in vars(klass).items():
            if isinstance(value, classprocedure):
                names.add(attr)
    return frozenset(names)


class ATKMeta(type):
    """Metaclass enforcing Andrew Class System semantics.

    Responsibilities, in class-creation order:

    1. reject multiple toolkit inheritance (single inheritance only);
    2. reject overrides of inherited class procedures;
    3. register the new class by its Andrew name (``atk_name`` attribute
       if present, else the lowercased class name), unless the class sets
       ``atk_register = False`` (used for abstract bases).
    """

    def __new__(mcls, name, bases, namespace, **kwargs):
        toolkit_bases = _atk_bases(bases)
        if len(toolkit_bases) > 1:
            raise MultipleInheritanceError(
                f"class {name!r} declares {len(toolkit_bases)} toolkit base "
                "classes; the Andrew Class System permits single "
                "inheritance only"
            )

        # Forbid overriding inherited class procedures.
        inherited_procs = set()
        for base in toolkit_bases:
            info = getattr(base, "__atk_info__", None)
            if info is not None:
                inherited_procs.update(info.class_procedures)
            else:
                inherited_procs.update(_collect_class_procedures(base))
        for attr in namespace:
            if attr in inherited_procs:
                raise ClassProcedureOverrideError(
                    f"class {name!r} overrides class procedure {attr!r}; "
                    "class procedures may not be overridden"
                )

        cls = super().__new__(mcls, name, bases, namespace, **kwargs)

        should_register = namespace.get("atk_register", True)
        atk_name = namespace.get("atk_name") or name.lower()
        superclass = toolkit_bases[0] if toolkit_bases else None
        info = ClassInfo(
            name=atk_name,
            cls=cls,
            superclass=superclass,
            origin=namespace.get("__module__", "<unknown>"),
            class_procedures=_collect_class_procedures(cls),
        )
        cls.__atk_info__ = info
        if should_register and toolkit_bases:
            register(info, replace=namespace.get("atk_replace", False))
        return cls


class ATKObject(metaclass=ATKMeta):
    """Root of the toolkit class hierarchy.

    Provides the lifecycle protocol the Class runtime generated for every
    class: allocation + ``InitializeObject`` (our ``__init__``) and
    ``FinalizeObject`` (our :meth:`destroy`).  ``destroy`` is idempotent
    and walks no references afterwards; views and data objects extend it
    to detach observers.
    """

    atk_register = False  # the root itself is not a loadable component

    def __init__(self) -> None:
        self._destroyed = False

    @property
    def destroyed(self) -> bool:
        """True once :meth:`destroy` has run."""
        return getattr(self, "_destroyed", False)

    def destroy(self) -> None:
        """Finalize the object.  Safe to call more than once."""
        self._destroyed = True

    @classprocedure
    def atk_class_name(cls) -> str:
        """Return the registry name of this class."""
        return cls.__atk_info__.name

    def __repr__(self) -> str:
        return f"<{type(self).__atk_info__.name} at {id(self):#x}>"


def register(info: ClassInfo, replace: bool = False) -> None:
    """Register ``info`` in the global class registry.

    ``replace=True`` allows re-registration under an existing name, which
    the dynamic loader uses when a plugin is reloaded; the version counter
    on the surviving :class:`ClassInfo` is bumped so callers can detect
    reloads.
    """
    with _registry_lock:
        existing = _registry.get(info.name)
        if existing is not None and not replace:
            if existing.cls is info.cls:
                return  # re-registering the identical class is harmless
            raise ClassRegistrationError(
                f"class name {info.name!r} already registered by "
                f"{existing.origin}; pass atk_replace=True to supersede it"
            )
        if existing is not None:
            info.versions = existing.versions + 1
        _registry[info.name] = info


def lookup(name: str) -> Type[ATKObject]:
    """Return the class registered under ``name``.

    Raises :class:`ClassLookupError` if the name is unknown; dynamic
    loading (``repro.class_system.dynamic``) catches this to decide when
    a plugin search is needed.
    """
    with _registry_lock:
        info = _registry.get(name)
    if info is None:
        raise ClassLookupError(f"no toolkit class registered under {name!r}")
    return info.cls


def class_info(name: str) -> ClassInfo:
    """Return the :class:`ClassInfo` registered under ``name``."""
    with _registry_lock:
        info = _registry.get(name)
    if info is None:
        raise ClassLookupError(f"no toolkit class registered under {name!r}")
    return info


def is_registered(name: str) -> bool:
    """True if ``name`` resolves in the registry."""
    with _registry_lock:
        return name in _registry


def registered_names() -> List[str]:
    """Return a sorted snapshot of all registered class names."""
    with _registry_lock:
        return sorted(_registry)


def unregister(name: str) -> None:
    """Remove ``name`` from the registry (no-op if absent).

    Exists mainly for test isolation; the original runtime had no
    unloading, and production code never needs this.
    """
    with _registry_lock:
        _registry.pop(name, None)


def register_alias(name: str, cls: Type[ATKObject]) -> None:
    """Register ``cls`` under an additional name.

    Components use this where the paper's vocabulary has two names for
    one implementation — e.g. the table's standard view is requested in
    datastreams as ``spread`` (the paper's §5 example) but the class
    itself is named ``tableview``.
    """
    info = ClassInfo(
        name=name,
        cls=cls,
        superclass=cls.__atk_info__.superclass,
        origin=cls.__atk_info__.origin,
        class_procedures=cls.__atk_info__.class_procedures,
    )
    register(info)


def subclasses_of(name: str) -> Iterator[ClassInfo]:
    """Yield registry entries whose class derives from the named class."""
    base = lookup(name)
    with _registry_lock:
        entries = list(_registry.values())
    for info in entries:
        if info.cls is not base and issubclass(info.cls, base):
            yield info
