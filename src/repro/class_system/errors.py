"""Exception hierarchy for the Andrew Class System reproduction.

The original Class runtime signalled failures through NULL returns and
``fprintf`` diagnostics; a Python reproduction gets to use a proper
exception hierarchy instead.  Every error raised by ``repro.class_system``
derives from :class:`ClassSystemError` so callers can catch the whole
family with a single clause.
"""

from __future__ import annotations

__all__ = [
    "ClassSystemError",
    "ClassRegistrationError",
    "ClassLookupError",
    "ClassProcedureOverrideError",
    "MultipleInheritanceError",
    "DynamicLoadError",
    "PluginNotFoundError",
    "PluginSyntaxError",
    "PreprocessorError",
]


class ClassSystemError(Exception):
    """Base class for every error raised by the class system."""


class ClassRegistrationError(ClassSystemError):
    """A class could not be registered (e.g. duplicate name)."""


class ClassLookupError(ClassSystemError, KeyError):
    """A class name could not be resolved in the registry.

    Also a :class:`KeyError` because lookup failure is fundamentally a
    missing-key condition; code that treats the registry as a mapping can
    catch ``KeyError`` and still work.
    """

    def __str__(self) -> str:  # KeyError quotes its argument; we want prose.
        return Exception.__str__(self)


class ClassProcedureOverrideError(ClassSystemError, TypeError):
    """A subclass attempted to override a class procedure.

    In the Andrew Class System, *class procedures* (analogous to
    Smalltalk class methods) may not be overridden, unlike ordinary
    object methods.  The registry enforces this at class-creation time.
    """


class MultipleInheritanceError(ClassSystemError, TypeError):
    """A toolkit class declared more than one toolkit base class.

    The Andrew Class System provides *single* inheritance only (paper
    section 6); we enforce the same restriction for fidelity.
    """


class DynamicLoadError(ClassSystemError):
    """Dynamic loading of a component failed."""


class PluginNotFoundError(DynamicLoadError):
    """No plugin file for the requested component exists on the load path."""

    def __init__(self, name: str, searched: list) -> None:
        self.name = name
        self.searched = list(searched)
        paths = ", ".join(str(p) for p in self.searched) or "<empty path>"
        super().__init__(
            f"no dynamically loadable component named {name!r} "
            f"(searched: {paths})"
        )


class PluginSyntaxError(DynamicLoadError):
    """A plugin file was found but could not be compiled or executed."""


class PreprocessorError(ClassSystemError):
    """A ``.ch`` class description could not be parsed."""

    def __init__(self, message: str, line: int = 0) -> None:
        self.line = line
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)
