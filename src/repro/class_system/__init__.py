"""The Andrew Class System reproduction (paper section 6).

Provides the object-oriented substrate the toolkit is built on:

* :mod:`~repro.class_system.registry` — single-inheritance class
  registry with class procedures (:class:`ATKObject`, :func:`lookup`);
* :mod:`~repro.class_system.observable` — the observer/delayed-update
  protocol (:class:`Observable`, :class:`ChangeRecord`);
* :mod:`~repro.class_system.dynamic` — dynamic loading of component
  code by name (:class:`ClassLoader`, :func:`load_class`);
* :mod:`~repro.class_system.preprocessor` — the miniature ``.ch``
  class-description preprocessor.
"""

from .errors import (
    ClassLookupError,
    ClassProcedureOverrideError,
    ClassRegistrationError,
    ClassSystemError,
    DynamicLoadError,
    MultipleInheritanceError,
    PluginNotFoundError,
    PluginSyntaxError,
    PreprocessorError,
)
from .registry import (
    ATKMeta,
    ATKObject,
    ClassInfo,
    class_info,
    classprocedure,
    is_registered,
    lookup,
    register,
    register_alias,
    registered_names,
    subclasses_of,
    unregister,
)
from .observable import ChangeRecord, FunctionObserver, Observable, Observer
from .dynamic import ClassLoader, LoadRecord, default_loader, load_class
from .preprocessor import (
    ClassDescription,
    FieldDescription,
    MethodDescription,
    emit_export_header,
    emit_import_header,
    parse_ch,
    realize_class,
)

__all__ = [
    # errors
    "ClassSystemError",
    "ClassRegistrationError",
    "ClassLookupError",
    "ClassProcedureOverrideError",
    "MultipleInheritanceError",
    "DynamicLoadError",
    "PluginNotFoundError",
    "PluginSyntaxError",
    "PreprocessorError",
    # registry
    "ATKObject",
    "ATKMeta",
    "classprocedure",
    "ClassInfo",
    "register",
    "register_alias",
    "lookup",
    "class_info",
    "is_registered",
    "registered_names",
    "unregister",
    "subclasses_of",
    # observable
    "Observable",
    "Observer",
    "FunctionObserver",
    "ChangeRecord",
    # dynamic
    "ClassLoader",
    "LoadRecord",
    "default_loader",
    "load_class",
    # preprocessor
    "parse_ch",
    "realize_class",
    "ClassDescription",
    "MethodDescription",
    "FieldDescription",
    "emit_export_header",
    "emit_import_header",
]
