"""The observer mechanism (paper section 2).

The Andrew Toolkit's update system is built on *observers*: a data
object may be observed by any number of other data objects and views.
When the data object changes, every observer is notified and repairs its
own state.  The paper's chart example — a chart data object observing a
table data object, with the chart view observing the chart data object —
is reproduced verbatim in ``repro/components/table/chart.py`` on top of
this module.

Two deliberate fidelity points:

* Notification is **explicit**: mutating a data object does not notify
  anyone until ``notify_observers`` is called.  This mirrors the paper's
  delayed-update design, where a view "first requests that the data
  object modify itself and then requests the data object to inform all
  of its views that it has changed".
* Observers receive a *change record* describing what changed, because
  "the developer must develop some mechanism with which the view can
  determine which portion of the data object has changed"; the base
  record carries an opaque ``what``/``where``/``extent`` triple that
  concrete data objects refine.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterator, List, Optional

from .. import obs
from ..testing import faultinject

__all__ = [
    "ChangeRecord",
    "Observable",
    "Observer",
    "FunctionObserver",
    "OBSERVER_DROP_LIMIT",
]

#: Consecutive delivery failures after which an observer is detached.
OBSERVER_DROP_LIMIT = 3

_change_counter = itertools.count(1)


class ChangeRecord:
    """Describes one modification of an :class:`Observable`.

    Attributes
    ----------
    source:
        The observable that changed.
    what:
        A short string naming the kind of change (``"insert"``,
        ``"delete"``, ``"cell"``, ``"style"`` ...).  Concrete data
        objects document their vocabulary.
    where:
        A component-specific position (character offset, (row, col), ...).
    extent:
        A component-specific size of the affected region.
    serial:
        A globally increasing serial number; views compare it with the
        serial of their last repaint to decide whether work is needed —
        the reproduction of the toolkit's "modified timestamp" scheme.
    """

    __slots__ = ("source", "what", "where", "extent", "serial", "detail")

    def __init__(
        self,
        source: "Observable",
        what: str = "changed",
        where: Any = None,
        extent: Any = None,
        detail: Any = None,
    ) -> None:
        self.source = source
        self.what = what
        self.where = where
        self.extent = extent
        self.detail = detail
        self.serial = next(_change_counter)

    def __repr__(self) -> str:
        return (
            f"ChangeRecord(what={self.what!r}, where={self.where!r}, "
            f"extent={self.extent!r}, serial={self.serial})"
        )


class Observer:
    """Interface for things that observe an :class:`Observable`.

    Subclasses override :meth:`observed_changed`.  Views and auxiliary
    data objects both implement this interface — the paper stresses that
    *data objects* can observe other data objects, not just views.
    """

    def observed_changed(self, change: ChangeRecord) -> None:
        """Called after an observed object announces a change."""
        raise NotImplementedError

    def observed_destroyed(self, source: "Observable") -> None:
        """Called when an observed object is destroyed.  Optional."""


class FunctionObserver(Observer):
    """Adapter wrapping a plain callable as an :class:`Observer`."""

    def __init__(self, func: Callable[[ChangeRecord], None]) -> None:
        self._func = func

    def observed_changed(self, change: ChangeRecord) -> None:
        self._func(change)


class Observable:
    """Mixin giving a class the Andrew observer protocol.

    Maintains an ordered observer list (notification order is the order
    of attachment, matching the original's linked-list behaviour), a
    modification serial, and re-entrancy-safe notification: observers
    attached or detached *during* a notification take effect for the next
    notification, not the current one.
    """

    def __init__(self) -> None:
        self._observers: List[Observer] = []
        self._modified_serial = 0
        self._notifying = 0
        self._pending_change: Optional[ChangeRecord] = None
        # id(observer) -> consecutive delivery failures; an observer that
        # fails OBSERVER_DROP_LIMIT times in a row is auto-detached so a
        # permanently broken observer cannot poison every notification.
        self._observer_failures: dict = {}

    # -- attachment ----------------------------------------------------

    def add_observer(self, observer: Observer) -> None:
        """Attach ``observer``; duplicate attachments are ignored."""
        if observer not in self._observers:
            if self._notifying:
                # Copy-on-write under notification so iteration stays safe.
                self._observers = self._observers + [observer]
            else:
                self._observers.append(observer)

    def remove_observer(self, observer: Observer) -> None:
        """Detach ``observer`` (no-op if not attached)."""
        if observer in self._observers:
            if self._notifying:
                observers = list(self._observers)
                observers.remove(observer)
                self._observers = observers
            else:
                self._observers.remove(observer)
            # Forget its failure streak: ids recycle, and a re-attached
            # observer starts with a clean record.
            self._observer_failures.pop(id(observer), None)

    def observers(self) -> Iterator[Observer]:
        """Iterate over the currently attached observers."""
        return iter(self._observers)

    @property
    def observer_count(self) -> int:
        return len(self._observers)

    # -- notification --------------------------------------------------

    @property
    def modified_serial(self) -> int:
        """Serial of the most recent announced change (0 = never)."""
        return self._modified_serial

    def set_modified(
        self,
        what: str = "changed",
        where: Any = None,
        extent: Any = None,
        detail: Any = None,
    ) -> ChangeRecord:
        """Record a modification *without* notifying observers.

        Data objects call this from their mutators; the caller decides
        when to flush with :meth:`notify_observers`.  Returns the change
        record so callers may batch or coalesce records themselves.
        """
        change = ChangeRecord(self, what, where, extent, detail)
        self._modified_serial = change.serial
        self._pending_change = change
        return change

    def notify_observers(self, change: Optional[ChangeRecord] = None) -> int:
        """Deliver ``change`` (or the pending record) to every observer.

        Returns the number of observers notified.  If there is neither an
        explicit nor a pending change record, a generic one is created so
        "something changed, look for yourself" notifications still work.

        Delivery is exhaustive: an observer that raises does not starve
        the observers after it.  Every observer sees the change, raised
        exceptions are collected, and the first one is re-raised once the
        loop completes — errors never pass silently, but one buggy view
        cannot leave its siblings showing stale state.

        An observer that fails :data:`OBSERVER_DROP_LIMIT` consecutive
        deliveries is detached (counter ``notify.observers_dropped``):
        its exception is still reported this one last time, but a
        permanently wedged observer cannot turn every future mutation
        into a raise.  A successful delivery resets its failure count.
        """
        if change is None:
            change = self._pending_change
            if change is None:
                change = ChangeRecord(self)
                self._modified_serial = change.serial
        self._pending_change = None
        snapshot = self._observers
        errors: List[BaseException] = []
        dropped: List[Observer] = []
        failures = self._observer_failures
        self._notifying += 1
        try:
            for observer in snapshot:
                try:
                    if faultinject.enabled:
                        faultinject.maybe_raise("observer.notify")
                    observer.observed_changed(change)
                except Exception as exc:
                    errors.append(exc)
                    key = id(observer)
                    count = failures.get(key, 0) + 1
                    failures[key] = count
                    if count >= OBSERVER_DROP_LIMIT:
                        dropped.append(observer)
                else:
                    failures.pop(id(observer), None)
        finally:
            self._notifying -= 1
        for observer in dropped:
            self.remove_observer(observer)
            self._observer_failures.pop(id(observer), None)
        if obs.metrics_on:
            obs.registry.inc("notify.notifications")
            obs.registry.inc("notify.observers", len(snapshot))
            if errors:
                obs.registry.inc("notify.exceptions", len(errors))
            if dropped:
                obs.registry.inc("notify.observers_dropped", len(dropped))
        if errors:
            raise errors[0]
        return len(snapshot)

    def changed(
        self,
        what: str = "changed",
        where: Any = None,
        extent: Any = None,
        detail: Any = None,
    ) -> int:
        """Convenience: :meth:`set_modified` then :meth:`notify_observers`."""
        change = self.set_modified(what, where, extent, detail)
        return self.notify_observers(change)

    def destroy_observable(self) -> None:
        """Tell observers this object is going away, then detach them."""
        snapshot = self._observers
        self._observers = []
        for observer in snapshot:
            observer.observed_destroyed(self)
