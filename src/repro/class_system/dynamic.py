"""Dynamic loading/linking of component code (paper sections 1, 6, 7).

The Andrew Class System could load object code for a never-linked
component into a running application: "If a member of the music
department creates a music component and embeds that component into a
text component ... the code for the music component will be dynamically
loaded into the application.  Except for a slight delay to load the
code, the user of the editor is unaware that the music component was not
statically loaded."

This module reproduces that code path for Python.  A :class:`ClassLoader`
resolves a component name in three steps:

1. the in-process class registry (the "statically linked" case);
2. a cache of already-loaded plugins (the "warm" case);
3. a search along the *class path* — an ordered list of plugin
   directories — for ``<name>.py``, which is compiled and executed in a
   fresh module namespace (the "cold load", the paper's "slight delay").

Plugins register their classes simply by defining ``ATKObject``
subclasses; the metaclass registers them by name as a side effect of
execution, exactly as loading a ``.do`` file registered classes with the
original runtime.

The class path is seeded from the ``ANDREW_CLASS_PATH`` environment
variable (``os.pathsep``-separated), mirroring how the original system
found dynamically loadable objects via a search path.
"""

from __future__ import annotations

import os
import sys
import time
import threading
import types
from pathlib import Path
from typing import Dict, List, Optional, Type

from .. import obs
from .errors import DynamicLoadError, PluginNotFoundError, PluginSyntaxError
from .registry import ATKObject, is_registered, lookup

__all__ = ["LoadRecord", "ClassLoader", "default_loader", "load_class"]

CLASS_PATH_ENV = "ANDREW_CLASS_PATH"


class LoadRecord:
    """Statistics for one resolution through the loader.

    ``kind`` is one of ``"static"`` (already in the registry),
    ``"warm"`` (plugin previously loaded) or ``"cold"`` (plugin read,
    compiled and executed on this call).  ``duration`` is wall-clock
    seconds spent inside the loader — the measurable version of the
    paper's "slight delay to load the code".
    """

    __slots__ = ("name", "kind", "path", "duration", "timestamp")

    def __init__(
        self, name: str, kind: str, path: Optional[Path], duration: float
    ) -> None:
        self.name = name
        self.kind = kind
        self.path = path
        self.duration = duration
        self.timestamp = time.time()

    def __repr__(self) -> str:
        return (
            f"LoadRecord(name={self.name!r}, kind={self.kind!r}, "
            f"duration={self.duration * 1e6:.1f}us)"
        )


class ClassLoader:
    """Resolve toolkit classes by name, loading plugin code on demand."""

    def __init__(self, path: Optional[List[os.PathLike]] = None) -> None:
        self._lock = threading.RLock()
        self._path: List[Path] = []
        self._loaded_modules: Dict[str, types.ModuleType] = {}
        self._history: List[LoadRecord] = []
        if path is None:
            path = self._path_from_environment()
        for entry in path:
            self.append_path(entry)

    @staticmethod
    def _path_from_environment() -> List[Path]:
        raw = os.environ.get(CLASS_PATH_ENV, "")
        return [Path(p) for p in raw.split(os.pathsep) if p]

    # -- path management -------------------------------------------------

    @property
    def path(self) -> List[Path]:
        """The current plugin search path (a copy)."""
        with self._lock:
            return list(self._path)

    def append_path(self, directory: os.PathLike) -> None:
        """Add ``directory`` to the end of the search path."""
        directory = Path(directory)
        with self._lock:
            if directory not in self._path:
                self._path.append(directory)

    def prepend_path(self, directory: os.PathLike) -> None:
        """Add ``directory`` to the front of the search path."""
        directory = Path(directory)
        with self._lock:
            if directory in self._path:
                self._path.remove(directory)
            self._path.insert(0, directory)

    def remove_path(self, directory: os.PathLike) -> None:
        directory = Path(directory)
        with self._lock:
            if directory in self._path:
                self._path.remove(directory)

    # -- loading ----------------------------------------------------------

    def load(self, name: str) -> Type[ATKObject]:
        """Resolve ``name`` to a toolkit class, loading code if needed.

        Raises :class:`PluginNotFoundError` if the name is neither
        registered nor resolvable on the class path, and
        :class:`PluginSyntaxError` if a plugin file exists but fails to
        compile/execute or fails to register the requested name.
        """
        start = time.perf_counter()
        if is_registered(name):
            cls = lookup(name)
            self._record(name, "static", None, start)
            return cls

        with self._lock:
            if name in self._loaded_modules:
                # Module ran before but the class got unregistered (test
                # isolation); re-run the search so behaviour is consistent.
                if is_registered(name):
                    cls = lookup(name)
                    self._record(name, "warm", None, start)
                    return cls
                del self._loaded_modules[name]

            plugin = self._find_plugin(name)
            if plugin is None:
                raise PluginNotFoundError(name, self._path)
            with obs.span("loader.cold_load", plugin=name):
                module = self._execute_plugin(name, plugin)
            self._loaded_modules[name] = module

        if not is_registered(name):
            raise PluginSyntaxError(
                f"plugin {plugin} executed but did not register a class "
                f"named {name!r}"
            )
        cls = lookup(name)
        self._record(name, "cold", plugin, start)
        return cls

    def _find_plugin(self, name: str) -> Optional[Path]:
        for directory in self._path:
            candidate = directory / f"{name}.py"
            if candidate.is_file():
                return candidate
        return None

    def _execute_plugin(self, name: str, plugin: Path) -> types.ModuleType:
        try:
            source = plugin.read_text(encoding="utf-8")
        except OSError as exc:
            raise DynamicLoadError(f"cannot read plugin {plugin}: {exc}") from exc
        module_name = f"repro._dynamic.{name}"
        module = types.ModuleType(module_name)
        module.__file__ = str(plugin)
        try:
            code = compile(source, str(plugin), "exec")
            # Visible in sys.modules while executing so plugin-internal
            # imports of the module work, then kept for debuggability.
            sys.modules[module_name] = module
            exec(code, module.__dict__)
        except Exception as exc:
            sys.modules.pop(module_name, None)
            raise PluginSyntaxError(
                f"plugin {plugin} failed to load: {exc!r}"
            ) from exc
        return module

    def _record(self, name: str, kind: str, path: Optional[Path], start: float) -> None:
        record = LoadRecord(name, kind, path, time.perf_counter() - start)
        with self._lock:
            self._history.append(record)
        if obs.metrics_on:
            # LoadRecord absorbed into the registry: one counter per
            # resolution kind plus a shared latency histogram.
            obs.registry.inc("loader.loads")
            obs.registry.inc(f"loader.{kind}")
            obs.registry.observe_ns(
                "loader.load_ns", int(record.duration * 1e9)
            )

    # -- introspection ------------------------------------------------------

    @property
    def history(self) -> List[LoadRecord]:
        """All load records, oldest first (a copy)."""
        with self._lock:
            return list(self._history)

    def cold_loads(self) -> List[LoadRecord]:
        """Records for plugins actually read from disk."""
        return [r for r in self.history if r.kind == "cold"]

    def loaded_plugin_names(self) -> List[str]:
        with self._lock:
            return sorted(self._loaded_modules)

    def forget(self, name: str) -> None:
        """Drop the warm-cache entry for ``name`` (test isolation)."""
        with self._lock:
            self._loaded_modules.pop(name, None)


_default_loader: Optional[ClassLoader] = None
_default_lock = threading.Lock()


def default_loader() -> ClassLoader:
    """Return the process-wide loader, creating it on first use."""
    global _default_loader
    with _default_lock:
        if _default_loader is None:
            _default_loader = ClassLoader()
        return _default_loader


def load_class(name: str) -> Type[ATKObject]:
    """Resolve ``name`` through the process-wide loader."""
    return default_loader().load(name)
