"""Snapshot reporters: render telemetry as text or JSON.

The text form is what ``ANDREW_METRICS=1 python examples/quickstart.py``
prints; the JSON form is for tooling (the benchmark harness greps it).
Both render a *snapshot* dict — reporters never reach into live
registries, so rendering cannot race recording.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

__all__ = ["render_text", "render_json"]


def _fmt_ns(ns: float) -> str:
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f}us"
    return f"{ns:.0f}ns"


def render_text(snapshot: Dict[str, Any],
                trace: Optional[List[Dict[str, Any]]] = None) -> str:
    """Human-readable snapshot block, one metric per line."""
    lines: List[str] = ["== andrew toolkit telemetry =="]
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("-- counters --")
        width = max(len(name) for name in counters)
        for name, value in counters.items():
            lines.append(f"  {name:<{width}}  {value}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("-- gauges --")
        width = max(len(name) for name in gauges)
        for name, value in gauges.items():
            lines.append(f"  {name:<{width}}  {value:g}")
    timers = snapshot.get("timers", {})
    if timers:
        lines.append("-- timers --")
        width = max(len(name) for name in timers)
        for name, stat in timers.items():
            lines.append(
                f"  {name:<{width}}  n={stat['count']}"
                f" mean={_fmt_ns(stat['mean_ns'])}"
                f" p50={_fmt_ns(stat['p50_ns'])}"
                f" p95={_fmt_ns(stat['p95_ns'])}"
                f" max={_fmt_ns(stat['max_ns'])}"
            )
    if trace:
        lines.append(f"-- trace ({len(trace)} spans, newest last) --")
        # The ring records spans in *finish* order, so a parent lands
        # after its children; sort the display window by span id (ids
        # are assigned at start) so indentation nests under the right
        # parent.
        for record in sorted(trace[-40:], key=lambda r: r.get("id", 0)):
            indent = "  " * record["depth"]
            meta = record.get("meta")
            suffix = f"  {meta}" if meta else ""
            lines.append(
                f"  {indent}{record['name']}"
                f" {_fmt_ns(record['duration_ns'])}{suffix}"
            )
    if len(lines) == 1:
        lines.append("  (no metrics recorded)")
    return "\n".join(lines)


def render_json(snapshot: Dict[str, Any],
                trace: Optional[List[Dict[str, Any]]] = None) -> str:
    """Machine-readable snapshot (stable key order)."""
    document: Dict[str, Any] = {"metrics": snapshot}
    if trace is not None:
        document["trace"] = trace
    return json.dumps(document, indent=2, sort_keys=True)
